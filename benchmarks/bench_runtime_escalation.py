"""[RUNTIME] Escalation overhead vs a single oversized budget.

The escalation loop promises that retrying with geometrically grown
budgets — resuming each attempt from the previous frontier — costs
about the same as one run at the final budget, while never wasting a
large budget on a protocol that finishes small.

The benchmark pits the two strategies against each other on the
multisession specification (infinite-state, so exploration is bounded
by depth): ``explore_escalating`` climbing a depth ladder to the
ceiling, versus ``explore`` launched directly at the ceiling budget.
Both must visit exactly the same states; pytest-benchmark reports the
ladder's overhead.
"""

from __future__ import annotations

from repro.equivalence.testing import compose
from repro.runtime.escalation import EscalationPolicy, explore_escalating
from repro.semantics.lts import Budget, explore

from benchmarks.conftest import spec_multi

#: Depth is the only binding axis: the state allowance is never hit, so
#: the escalated and direct runs truncate at the same BFS horizon and
#: the visited sets are comparable.
START = Budget(max_states=100_000, max_depth=3)
OVERSIZED = Budget(max_states=100_000, max_depth=12)
POLICY = EscalationPolicy(
    state_factor=1.0,
    depth_factor=2.0,
    max_attempts=8,
    state_ceiling=OVERSIZED.max_states,
    depth_ceiling=OVERSIZED.max_depth,
)


def run_escalating():
    graph, report = explore_escalating(compose(spec_multi()), START, POLICY)
    return graph, report


def run_oversized():
    return explore(compose(spec_multi()), OVERSIZED)


def test_escalating_ladder_matches_oversized(benchmark):
    graph, report = benchmark(run_escalating)
    # The ladder climbed 3 -> 6 -> 12 before the depth ceiling stopped it.
    assert len(report.attempts) == 3
    assert not report.exact  # multisession is infinite-state
    assert set(graph.states) == set(run_oversized().states)


def test_single_oversized_budget(benchmark):
    graph = benchmark(run_oversized)
    assert graph.truncated  # infinite-state: the horizon is the verdict
    assert graph.state_count() > 100
