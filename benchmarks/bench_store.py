"""[BENCH-STORE] The persistent verdict store: warm vs cold suites.

Runs the full protocol zoo (secrecy + freshness per protocol) through
:func:`repro.runtime.supervisor.run_suite` twice against one
``--verdict-store`` directory:

* **cold** — an empty store; every verdict is computed by the worker
  pool and written through;
* **warm** — the same batch resubmitted; every verdict is served from
  the store with zero worker attempts.

The measurement is end-to-end suite wall-clock, which is what a user
re-running a verification campaign actually experiences — it includes
worker-pool spawn/teardown on the cold side and store tailing on the
warm side.

Parity is asserted before speed: the warm verdicts must be
byte-identical to the cold ones (the store replays records verbatim,
per-run stat blocks included), and every warm outcome must report
``attempts == 0``.  The warm side is then asserted to clear the **10x**
bar that justifies the store.  Results go to ``BENCH_store.json`` at
the repository root so future changes can track the trajectory.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.protocols.zoo import ZOO
from repro.runtime.supervisor import run_suite
from repro.runtime.worker import Job

RESULTS = Path(__file__).resolve().parent.parent / "BENCH_store.json"

KINDS = ("secrecy", "freshness")


def _jobs() -> list[Job]:
    return [
        Job(
            id=f"{kind}:{name}", kind=kind, target={"zoo": name},
            max_states=1500, max_depth=36,
        )
        for kind in KINDS
        for name in sorted(ZOO)
    ]


def _run(store: str) -> tuple[float, dict[str, dict], list[int]]:
    started = time.perf_counter()
    report = run_suite(_jobs(), workers=2, verdict_store=store)
    elapsed = time.perf_counter() - started
    assert all(outcome.status == "ok" for outcome in report.outcomes)
    verdicts = {
        outcome.job.id: outcome.result for outcome in report.outcomes
    }
    attempts = [outcome.attempts for outcome in report.outcomes]
    return elapsed, verdicts, attempts


def test_store_warm_suite_speedup():
    scratch = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        store = str(Path(scratch) / "store")
        cold_s, cold_verdicts, cold_attempts = _run(store)
        warm_s, warm_verdicts, warm_attempts = _run(store)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    # Parity first: byte-identical verdicts, zero warm attempts.
    assert set(warm_verdicts) == set(cold_verdicts)
    for job_id, cold in cold_verdicts.items():
        assert json.dumps(warm_verdicts[job_id], sort_keys=True) == json.dumps(
            cold, sort_keys=True
        ), job_id
    assert all(n >= 1 for n in cold_attempts)
    assert all(n == 0 for n in warm_attempts)

    speedup = round(cold_s / warm_s, 2) if warm_s else float("inf")
    RESULTS.write_text(
        json.dumps(
            {
                "benchmark": "verdict-store",
                "jobs": len(cold_verdicts),
                "cold_seconds": round(cold_s, 4),
                "warm_seconds": round(warm_s, 4),
                "speedup": speedup,
                "parity": "byte-identical",
                "warm_attempts": 0,
            },
            indent=2,
        )
        + "\n"
    )

    # The bar that justifies a persistent store: a warm campaign is at
    # least an order of magnitude faster than a cold one.
    assert speedup >= 10.0, speedup
