"""[ABL-MGA] Ablation: most-general-attacker synthesis depth.

The MGA's power and cost both scale with its message-synthesis bound.
This sweep quantifies the trade: state count and runtime of the
environment graph at increasing synthesis depth, plus the check that
depth 0 (forward-only attacker) already finds the plaintext flaw while
deeper synthesis leaves the verdicts on the crypto protocol unchanged.
"""

from __future__ import annotations

import pytest

from repro.analysis.environment import env_authentication, env_explore
from repro.semantics.lts import Budget

from benchmarks.conftest import impl_crypto, impl_plaintext

BUDGET = Budget(max_states=4000, max_depth=16)


@pytest.mark.parametrize("depth", [0, 1, 2])
def test_ablation_mga_synthesis_depth(benchmark, depth):
    graph = benchmark(
        env_explore, impl_crypto(), synth_depth=depth, budget=BUDGET
    )
    assert graph.state_count() >= 2
    benchmark.extra_info["states"] = graph.state_count()


def test_ablation_depth0_already_breaks_plaintext():
    verdict = env_authentication(
        impl_plaintext(), "A", synth_depth=0, budget=BUDGET
    )
    assert not verdict.holds


def test_ablation_depth2_keeps_crypto_safe():
    verdict = env_authentication(impl_crypto(), "A", synth_depth=2, budget=BUDGET)
    assert verdict.holds and verdict.exhaustive
