"""[PROP2] Proposition 2: P2 securely implements P (single session).

Paper claim: ``(nu c)(P2 | X)`` is barbed-weakly simulated by
``(nu c)(P | X)`` for all X, hence no test distinguishes them.

The benchmark runs both halves of the evidence over the standard
attacker suite: the Definition-4 tester search (must find nothing) and
the weak-simulation check per attacker (must all hold, untruncated).
"""

from __future__ import annotations

from repro.analysis.attacks import securely_implements
from repro.analysis.intruder import standard_attackers

from benchmarks.conftest import C, SINGLE, impl_crypto, spec_single


def verify_p2():
    return securely_implements(
        impl_crypto(),
        spec_single(),
        standard_attackers([C]),
        budget=SINGLE,
        check_simulation=True,
    )


def test_prop2_p2_securely_implements_p(benchmark):
    verdict = benchmark(verify_p2)
    assert verdict.secure
    assert verdict.exhaustive  # single session: finite, fully explored
    assert verdict.simulations, "simulation cross-check must have run"
    assert all(sim.holds and not sim.truncated for sim in verdict.simulations)
