"""[ABL-DY] Ablation: Dolev-Yao closure and synthesis scaling.

The attacker substrate closes heard messages under analysis and
synthesizes outputs bounded by depth.  This measures both directions as
the vocabulary grows — the knob behind
:class:`repro.analysis.intruder.AttackerBudget`.
"""

from __future__ import annotations

import pytest

from repro.analysis.knowledge import Knowledge, synthesizable
from repro.core.terms import Name, Pair, SharedEnc


def layered_vocabulary(width: int) -> list:
    """``width`` keys, ``width`` nested ciphertexts, chained key release."""
    keys = [Name(f"k{i}") for i in range(width)]
    terms = []
    for i in range(width):
        body = Pair(Name(f"m{i}"), Name(f"n{i}"))
        terms.append(SharedEnc((body,), keys[i]))
        # each key arrives under the previous one; k0 is known outright
        if i > 0:
            terms.append(SharedEnc((keys[i],), keys[i - 1]))
    terms.append(keys[0])
    return terms


@pytest.mark.parametrize("width", [4, 8, 16])
def test_ablation_analysis_closure(benchmark, width):
    terms = layered_vocabulary(width)
    knowledge = benchmark(Knowledge.from_terms, terms)
    # the chained keys fully cascade: everything decrypts
    assert knowledge.can_derive(Name(f"m{width - 1}"))
    benchmark.extra_info["atoms"] = len(knowledge)


@pytest.mark.parametrize("depth", [1, 2])
def test_ablation_synthesis_enumeration(benchmark, depth):
    knowledge = Knowledge.from_terms([Name("a"), Name("b"), Name("k")])
    out = benchmark(lambda: list(synthesizable(knowledge, depth)))
    assert len(out) == len(set(out))
    benchmark.extra_info["messages"] = len(out)


def test_ablation_derivability_is_cheap_even_when_enumeration_is_not():
    knowledge = Knowledge.from_terms([Name("a"), Name("b"), Name("k")])
    goal = SharedEnc((Pair(Name("a"), Pair(Name("b"), Name("a"))),), Name("k"))
    # deep goal: decided structurally without enumerating level 3
    assert knowledge.can_derive(goal)
