"""[PROP1] Proposition 1: startup pins the location variables.

Paper claim: in ``startup(***, A, lamB, B) | E``, for every process E,
``lamB`` can only be assigned the relative address ``||1 * ||0`` of A
with respect to B — so B only ever receives from A.

The benchmark explores the full state space of P | E for the whole
standard attacker suite and checks every c-communication accepted by B.
"""

from __future__ import annotations

from repro.analysis.intruder import standard_attackers
from repro.core.addresses import RelativeAddress
from repro.equivalence.testing import compose
from repro.semantics.lts import explore

from benchmarks.conftest import C, SINGLE, spec_single


def check_all_attackers() -> int:
    transitions_checked = 0
    for name, attacker in standard_attackers([C]):
        cfg = spec_single().with_part("E", attacker)
        system = compose(cfg)
        a_loc = system.location_of("A")
        b_loc = system.location_of("B")
        graph = explore(system, SINGLE)
        assert not graph.truncated, name
        for key in graph.states:
            for transition, _ in graph.successors_of(key):
                action = transition.action
                if action.channel.base == "c" and action.receiver[: len(b_loc)] == b_loc:
                    # the partner B hooked must be A — Proposition 1
                    assert action.sender[: len(a_loc)] == a_loc, name
                    observed = RelativeAddress.between(
                        observer=b_loc, target=a_loc
                    )
                    assert observed == RelativeAddress.parse("||1*||0")
                    transitions_checked += 1
    return transitions_checked


def test_prop1_startup_location_binding(benchmark):
    checked = benchmark(check_all_attackers)
    assert checked >= 1  # the honest delivery occurs for some attacker
