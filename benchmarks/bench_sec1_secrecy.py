"""[SEC1] Section 5.1 remark: localizing the output gives secrecy.

Paper claim: "locating the output of M in A (as in
A' = (nu M) c@||0*||1<M>) would give a secrecy guarantee on the message,
because A would be sure that B is the only possible receiver of M".

The benchmark runs the Dolev-Yao secrecy analysis over the standard
attacker suite for both the plain abstract protocol (whose output anyone
may consume: the eavesdropper learns M) and the doubly-localized variant
(no attacker ever hears anything).
"""

from __future__ import annotations

from repro.analysis.intruder import eavesdropper, standard_attackers
from repro.analysis.secrecy import keeps_secret, secrecy_protocol
from repro.equivalence.testing import Configuration
from repro.protocols.paper import abstract_protocol
from repro.semantics.lts import Budget

from benchmarks.conftest import C

BUDGET = Budget(max_states=1500, max_depth=20)


def cfg_for(protocol, attacker) -> Configuration:
    return Configuration(
        parts=(("P", protocol), ("E", attacker)),
        private=(C,),
        subroles=(("P", (0,), "A"), ("P", (1,), "B")),
    )


def sweep():
    localized_safe = 0
    for _, attacker in standard_attackers([C]):
        verdict = keeps_secret(cfg_for(secrecy_protocol(), attacker), "M", budget=BUDGET)
        assert verdict.holds and verdict.exhaustive
        localized_safe += 1
    plain = keeps_secret(
        cfg_for(abstract_protocol(), eavesdropper(C)), "M", budget=BUDGET
    )
    return localized_safe, plain


def test_sec1_localized_output_keeps_the_secret(benchmark):
    localized_safe, plain = benchmark(sweep)
    assert localized_safe == len(standard_attackers([C]))
    # the unlocalized output leaks M to a simple eavesdropper
    assert not plain.holds
    assert plain.leak is not None and plain.leak.base == "M"
