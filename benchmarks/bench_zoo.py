"""[ZOO] Classic-protocol workload for the whole toolchain.

Not a paper experiment — a scaling workload: the Needham-Schroeder-SK /
Otway-Rees / Yahalom narrations are compiled, explored exhaustively with
an eavesdropper, and checked for key secrecy and payload authentication.
This is the "downstream user" scenario the library targets: a realistic
multi-role protocol pushed through compile -> explore -> analyze.
"""

from __future__ import annotations

import pytest

from repro.analysis.intruder import eavesdropper, impersonator
from repro.analysis.properties import authentication
from repro.analysis.secrecy import keeps_secret
from repro.core.terms import Name
from repro.protocols.library import narration_configuration
from repro.protocols.zoo import ZOO
from repro.semantics.lts import Budget

C = Name("c")
BUDGET = Budget(max_states=6000, max_depth=40)


def analyze(name: str):
    spec = ZOO[name]()
    base = narration_configuration(spec, observed_role="B", observed_datum="PAYLOAD")
    secret = keeps_secret(
        base.with_part("E", eavesdropper(C, messages=6)), "KAB", budget=BUDGET
    )
    authentic = authentication(
        base.with_part("E", impersonator(C)), sender_role="A", budget=BUDGET
    )
    return secret, authentic


@pytest.mark.parametrize("name", sorted(ZOO))
def test_zoo_protocol_analysis(benchmark, name):
    secret, authentic = benchmark(analyze, name)
    assert secret.holds and secret.exhaustive
    assert authentic.holds and authentic.exhaustive
    benchmark.extra_info["heard"] = secret.heard
