"""[SUITE] Supervised parallel suite runner at 1/2/4 workers.

Not a paper experiment — an infrastructure scaling benchmark: the same
protocol-zoo batch (secrecy + authentication for every zoo protocol)
run through :func:`repro.runtime.supervisor.run_suite` at increasing
pool sizes.  Measures the end-to-end cost of process supervision
(spawn-context workers, heartbeats, watchdog, journal-less dispatch)
and how the batch scales with parallelism.
"""

from __future__ import annotations

import pytest

from repro.runtime.supervisor import run_suite, zoo_jobs

JOBS = zoo_jobs(max_states=1500, max_depth=30)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_suite_parallel_scaling(benchmark, workers):
    report = benchmark(run_suite, JOBS, workers=workers, retries=0)
    assert report.completed
    assert all(outcome.status == "ok" for outcome in report.outcomes)
    assert not report.violations
    stats = report.stats()
    benchmark.extra_info["jobs"] = len(report.outcomes)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["states"] = stats.states
    benchmark.extra_info["transitions"] = stats.transitions
    benchmark.extra_info["states_per_s"] = stats.states_per_s
    benchmark.extra_info["retries"] = stats.retries
    if stats.peak_rss_mb is not None:
        benchmark.extra_info["peak_rss_mb"] = round(stats.peak_rss_mb, 1)
