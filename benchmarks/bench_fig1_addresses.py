"""[FIG1] Figure 1: relative addresses in (P0|P1)|(P2|(P3|P4)).

Paper claim: the address of P3 relative to P1 is ``||0||1 * ||1||1||0``,
and addresses of exchanged roles are mutually compatible (Def. 2).
The benchmark measures the full address algebra (between / inverse /
resolve / compose) over every ordered pair of the figure's five leaves.
"""

from __future__ import annotations

from repro.core.addresses import RelativeAddress

LEAVES = [(0, 0), (0, 1), (1, 0), (1, 1, 0), (1, 1, 1)]
P1, P3 = (0, 1), (1, 1, 0)


def full_algebra_pass() -> int:
    checked = 0
    for a in LEAVES:
        for b in LEAVES:
            fwd = RelativeAddress.between(observer=a, target=b)
            assert fwd.inverse() == RelativeAddress.between(observer=b, target=a)
            assert fwd.resolve(a) == b
            for c in LEAVES:
                carrier = RelativeAddress.between(observer=c, target=a)
                assert fwd.compose(carrier) == RelativeAddress.between(
                    observer=c, target=b
                )
                checked += 1
    return checked


def test_fig1_address_algebra(benchmark):
    checked = benchmark(full_algebra_pass)
    assert checked == 125
    # the paper's headline value
    assert RelativeAddress.between(observer=P1, target=P3) == RelativeAddress.parse(
        "||0||1*||1||1||0"
    )
