"""[BENCH-CANON-CACHE] The hash-consed state cache vs the uncached path.

Measures states/second for exploration with the cache of
:mod:`repro.semantics.canonical` enabled and disabled, on three zoo
workloads:

* **cold** — a single bounded exploration of a replicated protocol.
  Each distinct state still renders its key once (keys must stay
  byte-identical to the uncached path), so this mostly gauges the
  overhead of interning; the contract is "about parity".
* **escalation** — the resilient runtime's budget-escalation ladder
  re-explores the same system at growing budgets.  The rungs below the
  last are served from the successor cache, so the ladder costs little
  more than its final rung.
* **replay** — re-exploring an already-explored system (what
  checkpoint/resume, the differential parity suite, and any repeated
  analysis over one system do).  The cached run returns the recorded
  transitions — uids included — and the per-object key caches make
  deduplication free; this is the workload the cache exists for.

Results are written to ``BENCH_canonical.json`` at the repository root
so future changes can track the trajectory; the replay workload is
asserted to reach the 2x bar that justifies the cache.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.equivalence.testing import compose
from repro.protocols.library import narration_configuration
from repro.protocols.zoo import ZOO
from repro.semantics import canonical
from repro.semantics.lts import Budget, explore

RESULTS = Path(__file__).resolve().parent.parent / "BENCH_canonical.json"

#: The escalation ladder: the same system explored at growing budgets,
#: as the resilient verification runtime does after an exhaustion.
LADDER = [Budget(60, 8), Budget(120, 10), Budget(240, 12), Budget(480, 14)]

COLD_BUDGET = Budget(480, 14)


def zoo_system(name: str):
    spec = ZOO[name](replicate=True)
    return compose(
        narration_configuration(spec, observed_role="B", observed_datum="PAYLOAD")
    )


def _measure(run) -> dict:
    """states/s of ``run()`` (which returns a total state count)."""
    started = time.perf_counter()
    states = run()
    elapsed = time.perf_counter() - started
    return {
        "states": states,
        "seconds": round(elapsed, 4),
        "states_per_second": round(states / elapsed, 1) if elapsed else float("inf"),
    }


def _cold(name: str, enabled: bool) -> dict:
    canonical.set_cache_enabled(enabled)
    canonical.clear_caches()
    system = zoo_system(name)
    return _measure(lambda: explore(system, COLD_BUDGET).state_count())


def _escalation(name: str, enabled: bool) -> dict:
    canonical.set_cache_enabled(enabled)
    canonical.clear_caches()
    system = zoo_system(name)

    def ladder() -> int:
        return sum(explore(system, budget).state_count() for budget in LADDER)

    return _measure(ladder)


def _replay(name: str, enabled: bool) -> dict:
    canonical.set_cache_enabled(enabled)
    canonical.clear_caches()
    system = zoo_system(name)
    explore(system, COLD_BUDGET)  # warm-up: the first full exploration
    return _measure(lambda: explore(system, COLD_BUDGET).state_count())


def _speedup(cached: dict, uncached: dict) -> float:
    base = uncached["states_per_second"]
    return round(cached["states_per_second"] / base, 2) if base else float("inf")


def test_canonical_cache_states_per_second():
    results: dict[str, dict] = {}
    try:
        for name in sorted(ZOO):
            cold_uncached = _cold(name, enabled=False)
            cold_cached = _cold(name, enabled=True)
            esc_uncached = _escalation(name, enabled=False)
            esc_cached = _escalation(name, enabled=True)
            replay_uncached = _replay(name, enabled=False)
            replay_cached = _replay(name, enabled=True)
            results[name] = {
                "cold": {
                    "cached": cold_cached,
                    "uncached": cold_uncached,
                    "speedup": _speedup(cold_cached, cold_uncached),
                },
                "escalation": {
                    "cached": esc_cached,
                    "uncached": esc_uncached,
                    "speedup": _speedup(esc_cached, esc_uncached),
                },
                "replay": {
                    "cached": replay_cached,
                    "uncached": replay_uncached,
                    "speedup": _speedup(replay_cached, replay_uncached),
                },
            }
    finally:
        canonical.set_cache_enabled(True)
        canonical.clear_caches()

    # Parity first: identical state counts with and without the cache.
    for name, row in results.items():
        for workload in ("cold", "escalation", "replay"):
            assert (
                row[workload]["cached"]["states"]
                == row[workload]["uncached"]["states"]
            ), (name, workload)

    best = max(row["replay"]["speedup"] for row in results.values())
    RESULTS.write_text(
        json.dumps(
            {
                "benchmark": "canonical-cache",
                "workloads": {
                    "cold": "single bounded exploration, replicated zoo",
                    "escalation": f"budget ladder {[b.max_states for b in LADDER]}",
                    "replay": "re-exploration of an already-explored system",
                },
                "best_replay_speedup": best,
                "protocols": results,
            },
            indent=2,
        )
        + "\n"
    )
    # The cache must pay for itself: at least one zoo workload doubles
    # its throughput.  Replay is the designed showcase — resume after a
    # checkpoint, escalation rungs, and differential re-runs all
    # re-expand states the cache has already seen.
    assert best >= 2.0, f"best replay speedup {best} < 2.0 (see {RESULTS})"
