"""[ABL-CANON] Ablation: the cost of alpha-invariant state keys.

DESIGN.md records the choice of canonicalizing states by an
alpha-invariant rendering (fresh uids renumbered positionally).  This is
the dominant per-state cost of exploration; the benchmark isolates it,
and a control shows what deduplication buys: without alpha-invariance
the replication-heavy state spaces would not converge at all.
"""

from __future__ import annotations

from repro.analysis.intruder import replayer
from repro.equivalence.testing import compose
from repro.semantics.lts import Budget, explore
from repro.semantics.transitions import successors
from repro.syntax.pretty import canonical_process

from benchmarks.conftest import C, spec_multi


def materialize_states(count: int):
    system = compose(spec_multi().with_part("E", replayer(C)))
    graph = explore(system, Budget(max_states=count, max_depth=10))
    return list(graph.states.values())


def test_ablation_canonical_key_cost(benchmark):
    states = materialize_states(120)

    def render_all():
        return [canonical_process(s.root) for s in states]

    keys = benchmark(render_all)
    assert len(keys) == len(states)


def test_ablation_dedup_effectiveness():
    # alpha-invariance merges unfoldings that differ only in fresh uids:
    # successive exploration of the same replication must reuse states.
    from repro.semantics import canonical

    system = compose(spec_multi().with_part("E", replayer(C)))
    # With the successor cache on, re-enumerating the same state returns
    # the recorded transitions — identical objects, uids included.
    cached = successors(system)
    assert successors(system) is not cached  # defensive copy...
    assert [t.target for t in successors(system)] == [t.target for t in cached]
    # The ablation proper needs the uncached substrate: each enumeration
    # then freshens the unfolded copy with new uids.
    canonical.set_cache_enabled(False)
    try:
        raw_targets = [t.target for t in successors(system)]
        raw_again = [t.target for t in successors(system)]
        # raw objects differ (fresh uids each enumeration)...
        assert all(a.root != b.root for a, b in zip(raw_targets, raw_again))
        # ...but canonical keys coincide pairwise
        assert sorted(t.canonical_key() for t in raw_targets) == sorted(
            t.canonical_key() for t in raw_again
        )
    finally:
        canonical.set_cache_enabled(True)
