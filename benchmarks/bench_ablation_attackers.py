"""[ABL-ENUM] Ablation: bounded most-general-attacker enumeration.

Definition 4 quantifies over all of ``E_C``; the library substitutes a
bounded enumeration (DESIGN.md).  This measures how the attacker count
grows with the budget, and verifies that the enumerated family is strong
enough to rediscover the paper's ATT1 attack without the canned suite.
"""

from __future__ import annotations

import pytest

from repro.analysis.attacks import securely_implements
from repro.analysis.intruder import AttackerBudget, enumerate_attackers

from benchmarks.conftest import C, SINGLE, impl_plaintext, spec_single


@pytest.mark.parametrize(
    "actions,synth", [(2, 0), (2, 1), (3, 0)], ids=["a2s0", "a2s1", "a3s0"]
)
def test_ablation_enumeration_size(benchmark, actions, synth):
    budget = AttackerBudget(max_actions=actions, synth_depth=synth, fresh_names=1)
    attackers = benchmark(lambda: list(enumerate_attackers([C], budget)))
    assert attackers
    benchmark.extra_info["attackers"] = len(attackers)


def test_ablation_enumerated_family_finds_att1(benchmark):
    # no canned attackers: the generic enumeration alone must break P1.
    attackers = list(
        enumerate_attackers([C], AttackerBudget(max_actions=1, synth_depth=0, fresh_names=1))
    )

    def search():
        return securely_implements(
            impl_plaintext(), spec_single(), attackers, budget=SINGLE
        )

    verdict = benchmark(search)
    assert not verdict.secure
    assert verdict.attack is not None
    assert verdict.attack.test.name == "origin-is-E"
