"""[ATT1] Section 5.1: the plaintext P1 does NOT implement P.

Paper claim: with attacker ``E = (nu ME) c<ME>`` and tester
``observe(z). [z =~ l_E] omega``, ``(nu c)(P1 | E)`` passes the test
while ``(nu c)(P | E)`` cannot — the attack ``Message 1 E(A) -> B : ME``.

The benchmark measures the full Definition-4 search over the standard
attacker suite, which must rediscover exactly this attack.
"""

from __future__ import annotations

from repro.analysis.attacks import securely_implements
from repro.analysis.intruder import standard_attackers

from benchmarks.conftest import C, SINGLE, impl_plaintext, spec_single


def find_the_attack():
    return securely_implements(
        impl_plaintext(), spec_single(), standard_attackers([C]), budget=SINGLE
    )


def test_att1_impersonation_attack_found(benchmark):
    verdict = benchmark(find_the_attack)
    assert not verdict.secure
    assert verdict.attack is not None
    assert verdict.attack.attacker_name == "impersonate(c)"
    assert verdict.attack.test.name == "origin-is-E"
    narration = "\n".join(verdict.attack.narration)
    assert "E -> B on c : ME" in narration  # Message 1  E(A) -> B : ME
