"""[PROP3] Proposition 3: m_startup hooks instances pairwise.

Paper claim: each replication of the startup establishes an independent
session — a location variable instance only ever points at a single
partner instance, so "no messages of one run may be received in a
different run" (freshness).

The benchmark explores the multisession specification and verifies that
no responder instance ever accepts payloads from two different creator
instances.
"""

from __future__ import annotations

from repro.core.terms import origin
from repro.equivalence.testing import compose
from repro.semantics.lts import Budget, explore

from benchmarks.conftest import spec_multi

BUDGET = Budget(max_states=500, max_depth=14)


def check_pairwise_hooking():
    system = compose(spec_multi())
    graph = explore(system, BUDGET)
    by_receiver: dict[tuple, set] = {}
    sessions = set()
    for key in graph.states:
        for transition, _ in graph.successors_of(key):
            action = transition.action
            if action.channel.base == "c":
                by_receiver.setdefault(action.receiver, set()).add(
                    origin(action.value)
                )
            if action.channel.base == "s":
                sessions.add((action.sender, action.receiver))
    return by_receiver, sessions


def test_prop3_sessions_are_independent(benchmark):
    by_receiver, sessions = benchmark(check_pairwise_hooking)
    # several distinct sessions hooked within the horizon
    assert len(sessions) >= 2
    # freshness: every responder instance accepts from exactly one origin
    assert by_receiver, "some payload must have been delivered"
    assert all(len(origins) == 1 for origins in by_receiver.values())
