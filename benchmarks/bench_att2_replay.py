"""[ATT2] Section 5.2: the replay attack on Pm2.

Paper claim: with ``E = c(x). c<x>. c<x>`` and the tester
``observe(x). observe(y). [x =~ y] omega``, ``(nu c)(Pm2 | E)`` passes
(B accepts the same message twice) while ``(nu c)(Pm | E)`` never does:

    Message 1:a  A -> E(B) : {M}KAB
    Message 2:a  E(A) -> B : {M}KAB
    Message 2:b  E(A) -> B : {M}KAB

The benchmark measures the Definition-4 search that rediscovers it.
"""

from __future__ import annotations

from repro.analysis.attacks import securely_implements
from repro.analysis.intruder import replayer

from benchmarks.conftest import C, MULTI, impl_crypto_multi, spec_multi


def find_the_replay():
    return securely_implements(
        impl_crypto_multi(),
        spec_multi(),
        [("replay(c)", replayer(C))],
        roles=("!A", "!B", "E"),
        budget=MULTI,
    )


def test_att2_replay_attack_found(benchmark):
    verdict = benchmark(find_the_replay)
    assert not verdict.secure
    assert verdict.attack is not None
    assert verdict.attack.test.name == "same-origin-twice"
    narration = "\n".join(verdict.attack.narration)
    # the same ciphertext is delivered to two responder instances
    assert narration.count("E -> !B") == 2
    assert narration.count("-> T on observe") == 2
