"""[AUTH/FRESH] The displayed properties after Proposition 3.

Paper claims (for Pm and similarly-shaped protocols):

* **Authentication** — every activated continuation accepted a datum
  whose origin is an instance of A;
* **Freshness** — no two activations of one run share a creator.

The benchmark checks both over the abstract multisession protocol under
the replay attacker (they must hold), and confirms the contrapositives:
Pm2 fails freshness under replay, plaintext P1 fails authentication
under impersonation.
"""

from __future__ import annotations

from repro.analysis.intruder import impersonator, replayer
from repro.analysis.properties import authentication, freshness
from repro.semantics.lts import Budget

from benchmarks.conftest import (
    C,
    impl_crypto_multi,
    impl_plaintext,
    spec_multi,
)

BUDGET = Budget(max_states=1200, max_depth=14)


def check_all():
    pm = spec_multi().with_part("E", replayer(C))
    auth = authentication(pm, sender_role="!A", budget=BUDGET)
    fresh = freshness(pm, budget=BUDGET)
    pm2 = impl_crypto_multi().with_part("E", replayer(C))
    fresh_pm2 = freshness(pm2, budget=BUDGET)
    p1 = impl_plaintext().with_part("E", impersonator(C))
    auth_p1 = authentication(p1, sender_role="A", budget=BUDGET)
    return auth, fresh, fresh_pm2, auth_p1


def test_auth_and_freshness_properties(benchmark):
    auth, fresh, fresh_pm2, auth_p1 = benchmark(check_all)
    assert auth.holds and auth.activations >= 1
    assert fresh.holds
    assert not fresh_pm2.holds  # the replay breaks freshness on Pm2
    assert not auth_p1.holds  # impersonation breaks authentication on P1
