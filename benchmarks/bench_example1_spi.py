"""[EX1] Example 1 (Section 2): the computation of S = !P | Q.

Paper claim: ``S`` does exactly two silent steps — Q receives ``{M}k``
from a replica of P, decrypts it, and re-encrypts M under its private
key h.  The benchmark measures parsing + instantiation + the two-step
execution.
"""

from __future__ import annotations

from repro.core.terms import SharedEnc, payload
from repro.semantics.system import instantiate
from repro.semantics.transitions import successors
from repro.syntax.parser import parse_process

SOURCE = """
!(a<{M}k>.0)
| a(x). case x of {y}k in (nu h)( b<{y}h>.0 | b(r).0 )
"""


def run_example() -> tuple:
    system = instantiate(parse_process(SOURCE))
    step1 = successors(system)
    assert len(step1) == 1
    step2 = successors(step1[0].target)
    assert len(step2) == 1
    final = successors(step2[0].target)
    return step1[0], step2[0], final


def test_example1_two_step_computation(benchmark):
    step1, step2, final = benchmark(run_example)
    # step 1 delivers {M}k, step 2 delivers {M}h (re-encrypted)
    first = payload(step1.action.value)
    assert isinstance(first, SharedEnc) and first.key.base == "k"
    second = payload(step2.action.value)
    assert isinstance(second, SharedEnc) and second.key.base == "h"
    # only further (useless) !P unfoldings remain: no enabled transition
    assert final == []
