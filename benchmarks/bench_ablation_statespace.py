"""[ABL-STATE] Ablation: state-space growth of the multisession protocols.

DESIGN.md calls out the bounded-exploration substitution for
Definition 4's universal quantifier.  This benchmark quantifies the
cost: reachable-state counts of ``(nu c)(Pm | replay)`` and
``(nu c)(Pm3 | replay)`` as the depth horizon grows, which is what the
budgets of every multisession verdict trade against.
"""

from __future__ import annotations

import pytest

from repro.analysis.intruder import replayer
from repro.equivalence.testing import compose
from repro.semantics.lts import Budget, explore

from benchmarks.conftest import C, impl_challenge_response, spec_multi


def explore_at_depth(config, depth: int):
    system = compose(config.with_part("E", replayer(C)))
    return explore(system, Budget(max_states=4000, max_depth=depth))


@pytest.mark.parametrize("depth", [4, 6, 8, 10])
def test_ablation_statespace_abstract_multisession(benchmark, depth):
    graph = benchmark(explore_at_depth, spec_multi(), depth)
    assert graph.state_count() > 1
    benchmark.extra_info["states"] = graph.state_count()
    benchmark.extra_info["transitions"] = graph.transition_count()


@pytest.mark.parametrize("depth", [4, 6, 8])
def test_ablation_statespace_challenge_response(benchmark, depth):
    graph = benchmark(explore_at_depth, impl_challenge_response(), depth)
    assert graph.state_count() > 1
    benchmark.extra_info["states"] = graph.state_count()
    benchmark.extra_info["transitions"] = graph.transition_count()


def test_ablation_statespace_growth_is_monotone():
    sizes = [
        explore_at_depth(spec_multi(), depth).state_count() for depth in (4, 6, 8)
    ]
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0]
