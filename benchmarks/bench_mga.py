"""[MGA] The knowledge-indexed most-general attacker vs. the paper's results.

One exploration of the environment-sensitive semantics covers every
attacker within the synthesis bound.  The benchmark re-derives the
paper's Section 5 verdicts from the MGA alone — no enumerated attacker
processes, no testers:

* P1 fails authentication (ATT1's impersonation, generalized);
* P2 passes authentication and payload secrecy (Proposition 2);
* Pm2 fails freshness (ATT2's replay, generalized);
* Pm3 passes freshness within the horizon (Proposition 4);
* abstract P passes authentication but *fails secrecy* — exactly the
  Section 5.1 remark that motivates localizing the output.
"""

from __future__ import annotations

from repro.analysis.environment import (
    env_authentication,
    env_freshness,
    env_secrecy,
)
from repro.semantics.lts import Budget

from benchmarks.conftest import (
    impl_challenge_response,
    impl_crypto,
    impl_crypto_multi,
    impl_plaintext,
    spec_single,
)

SINGLE = Budget(max_states=4000, max_depth=18)
MULTI = Budget(max_states=2500, max_depth=11)


def run_all():
    return {
        "p1_auth": env_authentication(impl_plaintext(), "A", budget=SINGLE),
        "p2_auth": env_authentication(impl_crypto(), "A", budget=SINGLE),
        "p2_secret": env_secrecy(impl_crypto(), "M", budget=SINGLE),
        "p_auth": env_authentication(spec_single(), "A", budget=SINGLE),
        "p_secret": env_secrecy(spec_single(), "M", budget=SINGLE),
        "pm2_fresh": env_freshness(impl_crypto_multi(), budget=Budget(3000, 12)),
        "pm3_fresh": env_freshness(impl_challenge_response(), budget=MULTI),
    }


def test_mga_rederives_section_5(benchmark):
    verdicts = benchmark(run_all)
    assert not verdicts["p1_auth"].holds  # ATT1, generalized
    assert verdicts["p2_auth"].holds and verdicts["p2_auth"].exhaustive  # PROP2
    assert verdicts["p2_secret"].holds
    assert verdicts["p_auth"].holds  # PROP1: partner authentication
    assert not verdicts["p_secret"].holds  # the SEC1 motivation
    assert not verdicts["pm2_fresh"].holds  # ATT2, generalized
    assert verdicts["pm3_fresh"].holds  # PROP4 (within budget)
