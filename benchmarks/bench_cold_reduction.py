"""[BENCH-REDUCTION] Cold-path state-space reduction vs full expansion.

Measures *effective* cold throughput of the reducer of
:mod:`repro.semantics.reduction` on replicated (multi-session) zoo
protocols: every run explores the same depth-bounded slice of the
state space to exhaustion, once with reduction off (``none``) and once
with partial-order + symmetry pruning (``full``).  Symmetry merging
means the reduced exploration materializes *fewer* states while
covering the same behaviour, so the honest throughput figure is

    effective states/s  =  baseline states / reduced seconds

— how fast the reduced run covers the space the baseline had to
enumerate state by state.  The ``speedup`` recorded per protocol is
that figure over the baseline's own states/s, i.e. the wall-clock
ratio for identical coverage.

Depths are chosen so the baseline exhausts the horizon (``depth`` is
the only exhaustion reason) in tens of seconds: replicated zoo spaces
grow by roughly an order of magnitude per level.  Results are written
to ``BENCH_reduction.json`` at the repository root so future changes
can track the trajectory; at least two protocols must clear the 3x
bar that justifies the reducer.  ``--quick`` (CI smoke) runs one
shallow horizon per protocol and checks only the state-count
contraction, not the timing bar.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.equivalence.testing import compose
from repro.protocols.library import narration_configuration
from repro.protocols.zoo import ZOO
from repro.semantics import canonical, reduction
from repro.semantics.lts import Budget, explore

RESULTS = Path(__file__).resolve().parent.parent / "BENCH_reduction.json"

#: Protocol -> depth horizon the baseline can exhaust in reasonable
#: time.  All are replicated (multi-session) configurations sharing
#: one public wire, so the contraction comes from symmetry merging of
#: permuted sessions plus batched successor generation.
HORIZONS = {
    "woo-lam": 6,
    "otway-rees": 6,
    "needham-schroeder-sk": 7,
}

QUICK_DEPTH = 5
TARGET_SPEEDUP = 3.0
MAX_STATES = 50_000


def _zoo_system(name: str):
    spec = ZOO[name](replicate=True)
    return compose(
        narration_configuration(spec, observed_role="B", observed_datum="PAYLOAD")
    )


def _cold_explore(name: str, mode: str, depth: int) -> dict:
    """One cold exploration: fresh caches, fresh system, one pass."""
    previous = reduction.set_reduction_mode(mode)
    canonical.clear_caches()
    try:
        system = _zoo_system(name)
        merges_before = canonical.sym_reorder_count()
        started = time.perf_counter()
        graph = explore(system, Budget(MAX_STATES, depth))
        elapsed = time.perf_counter() - started
        reasons = graph.exhaustion.reasons if graph.exhaustion else ()
        return {
            "states": graph.state_count(),
            "transitions": graph.transition_count(),
            "seconds": round(elapsed, 3),
            "states_per_second": round(graph.state_count() / elapsed, 1),
            "sym_merges": canonical.sym_reorder_count() - merges_before,
            "exhaustion": list(reasons),
        }
    finally:
        reduction.set_reduction_mode(previous)
        canonical.clear_caches()


def _row(name: str, depth: int) -> dict:
    baseline = _cold_explore(name, "none", depth)
    reduced = _cold_explore(name, "full", depth)
    # Same horizon on both sides, or the coverage comparison is void.
    assert baseline["exhaustion"] == ["depth"], (name, baseline["exhaustion"])
    assert reduced["exhaustion"] == ["depth"], (name, reduced["exhaustion"])
    effective = baseline["states"] / reduced["seconds"] if reduced["seconds"] else 0.0
    speedup = (
        round(effective / baseline["states_per_second"], 2)
        if baseline["states_per_second"]
        else float("inf")
    )
    return {
        "depth": depth,
        "baseline": baseline,
        "reduced": reduced,
        "state_contraction": round(baseline["states"] / reduced["states"], 2),
        "effective_states_per_second": round(effective, 1),
        "speedup": speedup,
    }


def test_cold_reduction_states_per_second(request):
    quick = request.config.getoption("--quick")
    results: dict[str, dict] = {}
    for name, depth in sorted(HORIZONS.items()):
        results[name] = _row(name, QUICK_DEPTH if quick else depth)

    # Soundness floor in every mode: the reduced run explores strictly
    # fewer states over the same horizon on these replicated systems.
    for name, row in results.items():
        assert row["reduced"]["states"] < row["baseline"]["states"], (
            name,
            row["reduced"]["states"],
            row["baseline"]["states"],
        )
        assert row["reduced"]["sym_merges"] > 0, name

    if quick:
        return

    at_target = [n for n, row in results.items() if row["speedup"] >= TARGET_SPEEDUP]
    RESULTS.write_text(
        json.dumps(
            {
                "benchmark": "cold-reduction",
                "modes": {"baseline": "none", "reduced": "full"},
                "measure": (
                    "effective states/s = baseline states / reduced seconds "
                    "over the same depth-exhausted horizon"
                ),
                "target_speedup": TARGET_SPEEDUP,
                "protocols_at_target": sorted(at_target),
                "protocols": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert len(at_target) >= 2, (
        f"only {at_target} reached {TARGET_SPEEDUP}x (see {RESULTS})"
    )
