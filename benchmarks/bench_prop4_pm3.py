"""[PROP4] Proposition 4: Pm3 securely implements Pm.

Paper claim: the challenge-response protocol

    Message 1  B -> A : N
    Message 2  A -> B : {M, N}KAB

resists the attackers that break Pm2; in particular the replay detector
``observe(x). observe(y). [x =~ y] omega`` never fires.

Replication makes the space infinite, so the verdict is relative to the
exploration horizon (recorded in EXPERIMENTS.md).  The benchmark runs
the Definition-4 search with the paper's two attackers.
"""

from __future__ import annotations

from repro.analysis.attacks import securely_implements
from repro.analysis.intruder import impersonator, replayer
from repro.semantics.lts import Budget

from benchmarks.conftest import C, impl_challenge_response, spec_multi

BUDGET = Budget(max_states=900, max_depth=12)


def verify_pm3():
    return securely_implements(
        impl_challenge_response(),
        spec_multi(),
        [("replay(c)", replayer(C)), ("impersonate(c)", impersonator(C))],
        roles=("!A", "!B", "E"),
        budget=BUDGET,
    )


def test_prop4_pm3_securely_implements_pm(benchmark):
    verdict = benchmark(verify_pm3)
    assert verdict.secure
    assert verdict.attack is None
