"""Shared helpers for the benchmark harness.

Every benchmark corresponds to one row of the experiment index in
DESIGN.md and asserts the *shape* of the paper's claim (who wins, what
attack exists) while pytest-benchmark measures how long the experiment
takes on this substrate.  EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations

from repro.core.terms import Name
from repro.equivalence.testing import Configuration
from repro.protocols.paper import (
    abstract_multisession,
    abstract_protocol,
    challenge_response_multisession,
    crypto_multisession,
    crypto_protocol,
    plaintext_protocol,
)
from repro.semantics.lts import Budget

C = Name("c")

#: Budgets used by the experiment benchmarks.  Multisession systems are
#: infinite-state; their negative answers are relative to this horizon.
SINGLE = Budget(max_states=2000, max_depth=40)
MULTI = Budget(max_states=1200, max_depth=14)


def spec_single() -> Configuration:
    return Configuration(
        parts=(("P", abstract_protocol()),),
        private=(C,),
        subroles=(("P", (0,), "A"), ("P", (1,), "B")),
    )


def impl_plaintext() -> Configuration:
    pair = plaintext_protocol()
    return Configuration(
        parts=(("A", pair.initiator), ("B", pair.responder)), private=(C,)
    )


def impl_crypto() -> Configuration:
    return Configuration(
        parts=(("P2", crypto_protocol()),),
        private=(C,),
        subroles=(("P2", (0,), "A"), ("P2", (1,), "B")),
    )


def spec_multi() -> Configuration:
    return Configuration(
        parts=(("Pm", abstract_multisession()),),
        private=(C,),
        subroles=(("Pm", (0,), "!A"), ("Pm", (1,), "!B")),
    )


def impl_crypto_multi() -> Configuration:
    return Configuration(
        parts=(("Pm2", crypto_multisession()),),
        private=(C,),
        subroles=(("Pm2", (0,), "!A"), ("Pm2", (1,), "!B")),
    )


def impl_challenge_response() -> Configuration:
    return Configuration(
        parts=(("Pm3", challenge_response_multisession()),),
        private=(C,),
        subroles=(("Pm3", (0,), "!A"), ("Pm3", (1,), "!B")),
    )
