"""Shared helpers for the benchmark harness.

Every benchmark corresponds to one row of the experiment index in
DESIGN.md and asserts the *shape* of the paper's claim (who wins, what
attack exists) while pytest-benchmark measures how long the experiment
takes on this substrate.  EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations

import pytest

from repro.core.terms import Name
from repro.equivalence.testing import Configuration
from repro.protocols.paper import (
    abstract_multisession,
    abstract_protocol,
    challenge_response_multisession,
    crypto_multisession,
    crypto_protocol,
    plaintext_protocol,
)
from repro.semantics.lts import Budget

def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: run each benchmark once, skip timing collection",
    )


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--quick") and hasattr(config.option, "benchmark_disable"):
        # pytest-benchmark then calls each benchmarked function exactly
        # once, which turns the suite into a fast correctness smoke (CI
        # runs it this way).
        config.option.benchmark_disable = True


C = Name("c")

#: Budgets used by the experiment benchmarks.  Multisession systems are
#: infinite-state; their negative answers are relative to this horizon.
SINGLE = Budget(max_states=2000, max_depth=40)
MULTI = Budget(max_states=1200, max_depth=14)


def spec_single() -> Configuration:
    return Configuration(
        parts=(("P", abstract_protocol()),),
        private=(C,),
        subroles=(("P", (0,), "A"), ("P", (1,), "B")),
    )


def impl_plaintext() -> Configuration:
    pair = plaintext_protocol()
    return Configuration(
        parts=(("A", pair.initiator), ("B", pair.responder)), private=(C,)
    )


def impl_crypto() -> Configuration:
    return Configuration(
        parts=(("P2", crypto_protocol()),),
        private=(C,),
        subroles=(("P2", (0,), "A"), ("P2", (1,), "B")),
    )


def spec_multi() -> Configuration:
    return Configuration(
        parts=(("Pm", abstract_multisession()),),
        private=(C,),
        subroles=(("Pm", (0,), "!A"), ("Pm", (1,), "!B")),
    )


def impl_crypto_multi() -> Configuration:
    return Configuration(
        parts=(("Pm2", crypto_multisession()),),
        private=(C,),
        subroles=(("Pm2", (0,), "!A"), ("Pm2", (1,), "!B")),
    )


def impl_challenge_response() -> Configuration:
    return Configuration(
        parts=(("Pm3", challenge_response_multisession()),),
        private=(C,),
        subroles=(("Pm3", (0,), "!A"), ("Pm3", (1,), "!B")),
    )
