"""Barbs, exhibition and convergence (Section 4.1 of the paper).

A process *exhibits* a barb ``beta`` (written ``P # beta`` in the paper)
when it can immediately perform a visible input or output on the barb's
channel; it *converges* on ``beta`` (``P \\\\ beta``) when some sequence
of silent steps leads to a state that exhibits it.  Channels restricted
at system construction are internal and never give rise to barbs — this
is what makes Definition 4's protocol channels unobservable.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.terms import Name
from repro.runtime.deadline import RunControl
from repro.semantics.actions import Barb
from repro.semantics.lts import Budget, DEFAULT_BUDGET, ReachResult, reachable, search
from repro.semantics.system import System
from repro.semantics.transitions import pending_actions


def barbs(system: System) -> frozenset[Barb]:
    """All barbs the system exhibits right now."""
    result: set[Barb] = set()
    for action in pending_actions(system):
        if action.channel_subject not in system.private:
            result.add(action.barb())
    return frozenset(result)


#: A barb enriched with the origin of the offered output payload (None
#: for inputs, origin-less data, and unsendable literals).
RichBarb = tuple[Barb, Optional[tuple[int, ...]]]


def rich_barbs(system: System) -> frozenset[RichBarb]:
    """Barbs together with the origin of the datum on offer.

    The paper's testers can observe *where a received message was
    created* (address matching), so a proof technique sound for its
    testing preorder must distinguish an output of an attacker-created
    datum from an output of an honest one even on the same channel.
    This is the barb notion :mod:`repro.equivalence.simulation` uses.
    """
    from repro.core.errors import TermError
    from repro.core.terms import localize, origin

    result: set[RichBarb] = set()
    for action in pending_actions(system):
        if action.channel_subject in system.private:
            continue
        if not action.is_output:
            result.add((action.barb(), None))
            continue
        try:
            value = localize(action.payload, action.act_loc)
        except TermError:
            result.add((action.barb(), None))
            continue
        result.add((action.barb(), origin(value)))
    return frozenset(result)


def exhibits(system: System, barb: Barb) -> bool:
    """``system # barb`` — an immediate visible commitment exists."""
    return barb in barbs(system)


def converges(
    system: System, barb: Barb, budget: Budget = DEFAULT_BUDGET
) -> tuple[bool, bool]:
    """``system \\\\ barb`` — some tau-run reaches a state exhibiting it.

    Returns ``(converges, exhaustive)``; a ``(False, False)`` result
    means the exploration budget ran out first.
    """
    return reachable(system, lambda s: exhibits(s, barb), budget)


def converges_result(
    system: System,
    barb: Barb,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> ReachResult:
    """Structured twin of :func:`converges`: the result carries *which*
    limit stopped an inconclusive search, not just that one did."""
    return search(system, lambda s: exhibits(s, barb), budget, control)


def converges_any(
    system: System, candidates: Iterable[Barb], budget: Budget = DEFAULT_BUDGET
) -> tuple[Optional[Barb], bool]:
    """First barb among ``candidates`` the system converges on."""
    wanted = frozenset(candidates)

    hit: list[Barb] = []

    def check(state: System) -> bool:
        found = barbs(state) & wanted
        if found:
            hit.append(next(iter(found)))
            return True
        return False

    found, exhaustive = reachable(system, check, budget)
    return (hit[0] if found else None), exhaustive


def observable_channels(system: System) -> frozenset[Name]:
    """The channels on which the system can currently be observed."""
    return frozenset(b.channel for b in barbs(system))
