"""Barbed weak simulation — the proof technique of Propositions 2 and 4.

The paper proves ``P2`` securely implements ``P`` by exhibiting a
*barbed weak simulation*: a relation ``S`` such that for ``(P, Q) in S``

* ``P # beta`` implies ``Q \\\\ beta`` (every immediate barb of the left
  state is weakly reachable on the right), and
* if ``P -tau-> P'`` then ``Q (=tau=>)* Q'`` with ``(P', Q') in S``.

On the (bounded) finite fragments explored by
:mod:`repro.semantics.lts`, the largest such relation is computable by
the standard refinement fixpoint, which is what :func:`largest_simulation`
does.  :func:`weakly_simulated` packages the check between two systems,
propagating a ``truncated`` qualifier whenever a budget was hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.equivalence.barbs import RichBarb, rich_barbs
from repro.runtime.deadline import RunControl, resolve_control
from repro.runtime.exhaustion import Exhaustion
from repro.semantics.lts import Budget, DEFAULT_BUDGET, Graph, explore
from repro.semantics.system import System


def _sweep_interrupted(control: RunControl, noted: list[str]) -> bool:
    """Poll the control between fixpoint sweeps, recording the reason.

    Fixpoint refinements stopped early leave an over-approximate
    relation, so callers must surface the noted reason as a qualifier on
    any verdict built from the partial result.
    """
    stop = control.interruption()
    if stop is not None and stop not in noted:
        noted.append(stop)
    return stop is not None


def weak_barb_table(
    graph: Graph,
    control: Optional[RunControl] = None,
    _noted: Optional[list[str]] = None,
) -> dict[str, frozenset[RichBarb]]:
    """For each state, the rich barbs reachable by any tau-run (within
    the graph).

    Computed as a backward fixpoint: a state weakly has every barb it
    exhibits plus every barb some successor weakly has.  Barbs are
    *rich*: they carry the origin of the offered datum, matching the
    address-observing power of the paper's testers.
    """
    ctl = resolve_control(control)
    noted = _noted if _noted is not None else []
    table: dict[str, set[RichBarb]] = {
        key: set(rich_barbs(state)) for key, state in graph.states.items()
    }
    changed = True
    while changed and not _sweep_interrupted(ctl, noted):
        changed = False
        for key in graph.states:
            mine = table[key]
            before = len(mine)
            for _, target in graph.successors_of(key):
                mine |= table[target]
            if len(mine) != before:
                changed = True
    return {key: frozenset(v) for key, v in table.items()}


def tau_closure(
    graph: Graph,
    control: Optional[RunControl] = None,
    _noted: Optional[list[str]] = None,
) -> dict[str, frozenset[str]]:
    """Reflexive-transitive closure of the explored transitions."""
    ctl = resolve_control(control)
    noted = _noted if _noted is not None else []
    closure: dict[str, set[str]] = {key: {key} for key in graph.states}
    changed = True
    while changed and not _sweep_interrupted(ctl, noted):
        changed = False
        for key in graph.states:
            mine = closure[key]
            before = len(mine)
            additions: set[str] = set()
            for reached in tuple(mine):
                for _, target in graph.successors_of(reached):
                    additions.add(target)
            mine |= additions
            if len(mine) != before:
                changed = True
    return {key: frozenset(v) for key, v in closure.items()}


def largest_simulation(
    left: Graph,
    right: Graph,
    control: Optional[RunControl] = None,
    _noted: Optional[list[str]] = None,
) -> set[tuple[str, str]]:
    """The largest barbed weak simulation between two explored graphs.

    Cooperative: a deadline/cancellation stops the refinement between
    sweeps, leaving an over-approximation (the interruption reason is
    appended to ``_noted`` for the caller to surface).
    """
    ctl = resolve_control(control)
    noted = _noted if _noted is not None else []
    left_barbs = {key: rich_barbs(state) for key, state in left.states.items()}
    right_weak_barbs = weak_barb_table(right, ctl, noted)
    right_closure = tau_closure(right, ctl, noted)

    relation: set[tuple[str, str]] = {
        (p, q)
        for p in left.states
        for q in right.states
        if left_barbs[p] <= right_weak_barbs[q]
    }

    changed = True
    while changed and not _sweep_interrupted(ctl, noted):
        changed = False
        for pair in tuple(relation):
            p, q = pair
            if pair not in relation:
                continue
            ok = True
            for _, p_next in left.successors_of(p):
                # q must weakly reach some q' related to p_next.
                if not any(
                    (p_next, q_prime) in relation for q_prime in right_closure[q]
                ):
                    ok = False
                    break
            if not ok:
                relation.discard(pair)
                changed = True
    return relation


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of a barbed-weak-simulation check.

    ``holds`` means the initial states are related by the largest
    simulation of the *explored* graphs.  When ``exhaustion`` is set the
    graphs are under-approximations (or the refinement was interrupted)
    and the verdict is qualified: a True result says no violation was
    found within the budget.
    """

    holds: bool
    left_states: int
    right_states: int
    relation_size: int
    exhaustion: Optional[Exhaustion] = None

    @property
    def truncated(self) -> bool:
        return self.exhaustion is not None

    def describe(self) -> str:
        verdict = "simulated" if self.holds else "NOT simulated"
        qualifier = (
            f" (budget-truncated exploration: {'+'.join(self.exhaustion.reasons)})"
            if self.exhaustion is not None
            else ""
        )
        return (
            f"left ({self.left_states} states) is {verdict} by right "
            f"({self.right_states} states); |S| = {self.relation_size}{qualifier}"
        )


def weakly_simulated(
    left: System,
    right: System,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> SimulationResult:
    """Is ``left`` barbed-weakly simulated by ``right``?

    This is the formal content of "every computation of the concrete
    protocol is simulated by the abstract one": run it with
    ``left = (nu C)(P_concrete | X)`` and ``right = (nu C)(P_abstract | X)``.
    """
    ctl = resolve_control(control)
    # Branching-time equivalences are not preserved by partial-order
    # reduction (pruned interleavings change the simulation game), so
    # both sides are explored with full branching.
    left_graph = explore(left, budget, ctl, use_por=False)
    right_graph = explore(right, budget, ctl, use_por=False)
    noted: list[str] = []
    relation = largest_simulation(left_graph, right_graph, ctl, noted)
    return SimulationResult(
        holds=(left_graph.initial, right_graph.initial) in relation,
        left_states=left_graph.state_count(),
        right_states=right_graph.state_count(),
        relation_size=len(relation),
        exhaustion=Exhaustion.merge(
            left_graph.exhaustion,
            right_graph.exhaustion,
            *(Exhaustion.single(reason) for reason in noted),
        ),
    )


def find_unsimulated_state(
    left: System,
    right: System,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> Optional[System]:
    """A reachable left-state not related to any reachable right-state.

    Diagnostic helper: when :func:`weakly_simulated` fails this pinpoints
    a concrete behaviour of the left system with no abstract counterpart.
    """
    ctl = resolve_control(control)
    left_graph = explore(left, budget, ctl, use_por=False)
    right_graph = explore(right, budget, ctl, use_por=False)
    relation = largest_simulation(left_graph, right_graph, ctl)
    related_left = {p for p, _ in relation}
    for key, state in left_graph.states.items():
        if key not in related_left:
            return state
    return None
