"""Must-testing — the stronger twin of the paper's may-testing.

Footnote 4 of the paper notes its testing equivalence "technically is a
*may*-testing equivalence": ``P`` may-passes ``(T, beta)`` when *some*
computation of ``P | T`` reaches the barb.  The classical must variant
(De Nicola & Hennessy) demands that *every* maximal computation does.

On an explored finite fragment the must judgement is exact and computed
by a backward greatest fixpoint: a state can *avoid* the barb when it
does not exhibit it and either deadlocks or has a successor that can
avoid it; ``P`` must-passes iff the initial state cannot avoid the barb.
Truncated fragments yield a qualified verdict like everything else in
the library.

Divergence note: an infinite tau-loop that never exhibits the barb
counts as avoidance (the classical catastrophic reading of divergence),
which the fixpoint gives for free — a cycle of non-exhibiting states is
its own witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.equivalence.barbs import barbs
from repro.equivalence.simulation import _sweep_interrupted
from repro.equivalence.testing import Configuration, Test, compose
from repro.runtime.deadline import RunControl, resolve_control
from repro.runtime.exhaustion import Exhaustion
from repro.semantics.actions import Barb
from repro.semantics.lts import Budget, DEFAULT_BUDGET, Graph, explore
from repro.semantics.system import System


def avoiding_states(
    graph: Graph,
    barb: Barb,
    control: Optional[RunControl] = None,
    _noted: Optional[list[str]] = None,
) -> frozenset[str]:
    """States from which some maximal run never exhibits ``barb``.

    Greatest fixpoint of: ``s`` avoids iff ``s`` does not exhibit the
    barb and (``s`` has no successors or some successor avoids).
    """
    ctl = resolve_control(control)
    noted = _noted if _noted is not None else []
    exhibiting = {
        key for key, state in graph.states.items() if barb in barbs(state)
    }
    avoiding = set(graph.states) - exhibiting
    changed = True
    while changed and not _sweep_interrupted(ctl, noted):
        changed = False
        for key in tuple(avoiding):
            out = graph.successors_of(key)
            if not out:
                continue  # deadlock: avoidance stands
            if not any(target in avoiding for _, target in out):
                avoiding.discard(key)
                changed = True
    return frozenset(avoiding)


@dataclass(frozen=True, slots=True)
class MustVerdict:
    """Outcome of a must-pass check (budget-qualified)."""

    passes: bool
    exhaustive: bool
    states: int
    exhaustion: Optional[Exhaustion] = None

    def describe(self) -> str:
        verdict = "must-passes" if self.passes else "may fail"
        if self.exhaustive:
            qualifier = ""
        elif self.exhaustion is not None:
            qualifier = f" (within budget: {'+'.join(self.exhaustion.reasons)})"
        else:
            qualifier = " (within budget)"
        return f"{verdict} over {self.states} states{qualifier}"


def must_pass_system(
    system: System,
    barb: Barb,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> MustVerdict:
    """Does every maximal run of ``system`` reach a state exhibiting
    ``barb``?"""
    ctl = resolve_control(control)
    # Must-testing is branching/divergence-sensitive: POR collapses
    # interleavings and could hide a divergence, so explore fully.
    graph = explore(system, budget, ctl, use_por=False)
    noted: list[str] = []
    avoiding = avoiding_states(graph, barb, ctl, noted)
    exhaustion = Exhaustion.merge(
        graph.exhaustion, *(Exhaustion.single(reason) for reason in noted)
    )
    return MustVerdict(
        passes=graph.initial not in avoiding,
        exhaustive=exhaustion is None,
        states=graph.state_count(),
        exhaustion=exhaustion,
    )


def must_passes(
    config: Configuration,
    test: Test,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> MustVerdict:
    """Must-testing of a configuration against ``(T, beta)``."""
    return must_pass_system(compose(config, test.tester), test.barb, budget, control)


def must_preorder(
    left: Configuration,
    right: Configuration,
    tests: list[Test],
    budget: Budget = DEFAULT_BUDGET,
) -> tuple[bool, Test | None]:
    """``left <=must right`` over a finite test suite.

    Returns ``(holds, distinguishing test)``; the preorder requires
    every test must-passed by ``left`` to be must-passed by ``right``.
    """
    for test in tests:
        if must_passes(left, test, budget).passes and not must_passes(
            right, test, budget
        ).passes:
            return False, test
    return True, None
