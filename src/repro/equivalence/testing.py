"""May-testing (Definition 3) and its protocol-composition harness.

A *test* is a pair ``(T, beta)`` of a closed tester process and a barb.
A process ``P`` passes the test iff ``(P | T)`` converges on ``beta``.
The may-testing preorder ``P <= Q`` holds when every test ``P`` passes
is also passed by ``Q``.

The paper applies the preorder to *protocol configurations*
``(nu C)(P | X)`` — a protocol with its channels restricted, composed
with an attacker ``X`` that can only use those channels — and testers
whose distinguishing power includes *address matching*, so they can
observe where a message in a continuation originated.

Because locations (and hence name identities and address literals)
depend on the shape of the final composition, composition happens on raw
processes here, and instantiation is the last step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.processes import Parallel, Process, parallel, restrict
from repro.core.terms import Name
from repro.equivalence.barbs import converges_result
from repro.runtime.deadline import RunControl
from repro.runtime.exhaustion import Exhaustion
from repro.semantics.actions import Barb
from repro.semantics.lts import Budget, DEFAULT_BUDGET, ReachResult
from repro.semantics.system import System, instantiate, left_associated_locations


@dataclass(frozen=True, slots=True)
class Test:
    """A may-test ``(T, beta)`` with a human-readable name."""

    # Tell pytest this dataclass is not a test-case class.
    __test__ = False

    name: str
    tester: Process
    barb: Barb


@dataclass(frozen=True, slots=True)
class Configuration:
    """A protocol ready to be tested: principals plus hidden channels.

    Attributes:
        parts: labelled raw principals, composed left-associatively.
            Include the attacker here (Definition 4 restricts the
            attacker together with the protocol).
        private: the protocol channels ``C`` — restricted around the
            parts, so neither testers nor any outside observer can see
            or use them.
        subroles: extra role labels for principals nested *inside* a
            part — e.g. ``("P", (0,), "A")`` names the left component of
            part ``P``.  Needed when a protocol's key or session-channel
            restriction spans both principals, forcing them into one
            part.
        hidden: additional names restricted around the parts that are
            *not* protocol channels: long-term keys and other shared
            secrets.  Unlike ``private``, hidden names are never handed
            to attacker models as initial knowledge.
    """

    parts: tuple[tuple[str, Process], ...]
    private: tuple[Name, ...] = ()
    subroles: tuple[tuple[str, tuple[int, ...], str], ...] = ()
    hidden: tuple[Name, ...] = ()

    def with_part(self, label: str, proc: Process) -> "Configuration":
        return Configuration(
            self.parts + ((label, proc),), self.private, self.subroles, self.hidden
        )

    def labels(self) -> tuple[str, ...]:
        return tuple(label for label, _ in self.parts)


def compose(config: Configuration, tester: Optional[Process] = None) -> System:
    """Instantiate ``((nu C)(parts...)) | T`` with roles registered.

    Without a tester the system is just the restricted composition.  The
    tester, when present, sits *outside* the restriction: it interacts
    with continuations only, never with the protocol channels.
    """
    inner_locs = left_associated_locations(len(config.parts))
    inner = restrict(
        config.hidden + config.private, parallel(*(p for _, p in config.parts))
    )
    prefix: tuple[int, ...] = () if tester is None else (0,)
    part_locs = {
        label: prefix + loc for loc, (label, _) in zip(inner_locs, config.parts)
    }
    roles = [(loc, label) for label, loc in part_locs.items()]
    for parent, rel, sublabel in config.subroles:
        roles.append((part_locs[parent] + rel, sublabel))
    if tester is None:
        return instantiate(inner, roles=roles)
    root = Parallel(inner, tester)
    roles.append(((1,), "T"))
    return instantiate(root, roles=roles)


def part_locations(config: Configuration, with_tester: bool) -> dict[str, tuple[int, ...]]:
    """Where each role will sit once composed (before instantiating).

    Lets callers build testers and attackers whose address literals
    refer to the final tree shape.  Subroles are included.
    """
    inner_locs = left_associated_locations(len(config.parts))
    prefix: tuple[int, ...] = (0,) if with_tester else ()
    table = {label: prefix + loc for loc, (label, _) in zip(inner_locs, config.parts)}
    for parent, rel, sublabel in config.subroles:
        table[sublabel] = table[parent] + rel
    if with_tester:
        table["T"] = (1,)
    return table


def passes_result(
    config: Configuration,
    test: Test,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> ReachResult:
    """Does the configuration pass ``(T, beta)``? — structured form.

    The result's :class:`~repro.runtime.exhaustion.Exhaustion` says
    which limit (states/depth/deadline/cancellation/fault) made a
    negative answer inconclusive.
    """
    from repro.obs.metrics import current_metrics
    from repro.obs.trace import trace_span

    metrics = current_metrics()
    if metrics is not None:
        metrics.inc("equivalence.tests")
    system = compose(config, test.tester)
    with trace_span("equivalence.test", test=test.name):
        return converges_result(system, test.barb, budget, control)


def passes(
    config: Configuration, test: Test, budget: Budget = DEFAULT_BUDGET
) -> tuple[bool, bool]:
    """Does the configuration pass ``(T, beta)``?

    Returns ``(passed, exhaustive)`` — a negative verdict is only
    conclusive when ``exhaustive`` is True.
    """
    result = passes_result(config, test, budget)
    return result.found, result.exhaustive


@dataclass(frozen=True, slots=True)
class Distinction:
    """Witness that the may-testing preorder fails: ``left`` passes a
    test that ``right`` does not pass."""

    test: Test
    exhaustive: bool

    def describe(self) -> str:
        qualifier = "" if self.exhaustive else " (within the exploration budget)"
        return (
            f"test {self.test.name!r} with barb {self.test.barb.render()} is "
            f"passed by the left configuration but not the right{qualifier}"
        )


@dataclass(frozen=True, slots=True)
class PreorderVerdict:
    """Result of checking ``left <= right`` over a finite test suite.

    ``holds`` is True when no distinguishing test was found.  The check
    is exact for the supplied tests only; ``exhaustive`` is False when
    some exploration hit its budget, in which case a True verdict is
    "no counterexample found" rather than a proof.
    """

    holds: bool
    tests_run: int
    distinction: Optional[Distinction] = None
    exhaustive: bool = True
    exhaustion: Optional[Exhaustion] = None


def may_preorder(
    left: Configuration,
    right: Configuration,
    tests: Sequence[Test],
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> PreorderVerdict:
    """Check ``left <= right`` (Definition 3) over the given tests."""
    exhaustions: list[Optional[Exhaustion]] = []
    for test in tests:
        left_result = passes_result(left, test, budget, control)
        if not left_result.found:
            exhaustions.append(left_result.exhaustion)
            continue
        right_result = passes_result(right, test, budget, control)
        exhaustions.append(right_result.exhaustion)
        if not right_result.found:
            return PreorderVerdict(
                holds=False,
                tests_run=len(tests),
                distinction=Distinction(test, right_result.exhaustive),
                exhaustive=right_result.exhaustive,
                exhaustion=right_result.exhaustion,
            )
    merged = Exhaustion.merge(*exhaustions)
    return PreorderVerdict(
        holds=True,
        tests_run=len(tests),
        exhaustive=merged is None,
        exhaustion=merged,
    )
