"""Barbed weak bisimulation.

Sangiorgi's barbed bisimulation [26] is the symmetric strengthening of
the simulation used in the paper's proofs: both systems must weakly
match each other's steps and (rich) barbs.  Where the simulation of
:mod:`repro.equivalence.simulation` answers "is every behaviour of the
implementation also a spec behaviour?", bisimilarity answers "do the
two systems offer exactly the same behaviours?" — a convenient way to
show two *formulations* of the same protocol equivalent (e.g. a
hand-written process vs. the narration compiler's output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.equivalence.simulation import _sweep_interrupted, tau_closure, weak_barb_table
from repro.equivalence.barbs import rich_barbs
from repro.runtime.deadline import RunControl, resolve_control
from repro.runtime.exhaustion import Exhaustion
from repro.semantics.lts import Budget, DEFAULT_BUDGET, Graph, explore
from repro.semantics.system import System


def largest_bisimulation(
    left: Graph,
    right: Graph,
    control: Optional[RunControl] = None,
    _noted: Optional[list[str]] = None,
) -> set[tuple[str, str]]:
    """The largest barbed weak bisimulation between two explored graphs."""
    ctl = resolve_control(control)
    noted = _noted if _noted is not None else []
    left_barbs = {key: rich_barbs(state) for key, state in left.states.items()}
    right_barbs = {key: rich_barbs(state) for key, state in right.states.items()}
    left_weak = weak_barb_table(left, ctl, noted)
    right_weak = weak_barb_table(right, ctl, noted)
    left_closure = tau_closure(left, ctl, noted)
    right_closure = tau_closure(right, ctl, noted)

    relation: set[tuple[str, str]] = {
        (p, q)
        for p in left.states
        for q in right.states
        if left_barbs[p] <= right_weak[q] and right_barbs[q] <= left_weak[p]
    }

    changed = True
    while changed and not _sweep_interrupted(ctl, noted):
        changed = False
        for pair in tuple(relation):
            if pair not in relation:
                continue
            p, q = pair
            ok = all(
                any((p_next, q2) in relation for q2 in right_closure[q])
                for _, p_next in left.successors_of(p)
            ) and all(
                any((p2, q_next) in relation for p2 in left_closure[p])
                for _, q_next in right.successors_of(q)
            )
            if not ok:
                relation.discard(pair)
                changed = True
    return relation


@dataclass(frozen=True, slots=True)
class BisimulationResult:
    """Outcome of a barbed-weak-bisimilarity check (budget-qualified)."""

    holds: bool
    left_states: int
    right_states: int
    relation_size: int
    exhaustion: Optional[Exhaustion] = None

    @property
    def truncated(self) -> bool:
        return self.exhaustion is not None

    def describe(self) -> str:
        verdict = "bisimilar" if self.holds else "NOT bisimilar"
        qualifier = (
            f" (budget-truncated exploration: {'+'.join(self.exhaustion.reasons)})"
            if self.exhaustion is not None
            else ""
        )
        return (
            f"left ({self.left_states} states) and right "
            f"({self.right_states} states) are {verdict}; "
            f"|R| = {self.relation_size}{qualifier}"
        )


def weakly_bisimilar(
    left: System,
    right: System,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> BisimulationResult:
    """Are the two systems barbed-weakly bisimilar (up to the budget)?"""
    ctl = resolve_control(control)
    # Branching-time equivalences are not preserved by partial-order
    # reduction (pruned interleavings change the simulation game), so
    # both sides are explored with full branching.
    left_graph = explore(left, budget, ctl, use_por=False)
    right_graph = explore(right, budget, ctl, use_por=False)
    noted: list[str] = []
    relation = largest_bisimulation(left_graph, right_graph, ctl, noted)
    return BisimulationResult(
        holds=(left_graph.initial, right_graph.initial) in relation,
        left_states=left_graph.state_count(),
        right_states=right_graph.state_count(),
        relation_size=len(relation),
        exhaustion=Exhaustion.merge(
            left_graph.exhaustion,
            right_graph.exhaustion,
            *(Exhaustion.single(reason) for reason in noted),
        ),
    )
