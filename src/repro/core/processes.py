"""Processes of the spi calculus with authentication primitives.

The process grammar of the paper, plus the two authentication constructs::

    P, Q, R ::= 0                              nil
              | M<N>.P                         output
              | M(x).P                         input
              | (nu m)P                        restriction
              | P | P                          parallel composition
              | [M = N]P                       matching
              | !P                             replication
              | case L of {x1,...,xk}N in P    shared-key decryption
              | [M =~ N]P                      address matching (Sec. 3.2)

and channels may carry a *localization index* (Sec. 3.1)::

    M@l   — channel localized to the partner at relative address l
    M@lam — channel whose partner is fixed at first use (location variable)

The abstract machine instantiates a location variable with the partner's
location during the first communication; from then on every channel
indexed by that variable in the same thread only talks to that partner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.core.addresses import Location, RelativeAddress
from repro.core.errors import ProcessError
from repro.core.terms import At, Name, Term, Var


@dataclass(frozen=True, slots=True)
class LocVar:
    """A location variable (written ``lam`` in source syntax).

    Location variables are a distinct syntactic category: they may only
    index channels, and only the abstract machine can bind them — user
    terms can never mention a concrete partner location.
    """

    ident: str
    uid: Optional[int] = None

    def render(self) -> str:
        return self.ident if self.uid is None else f"{self.ident}#{self.uid}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()


#: What may index a channel:
#:   None             — ordinary non-localized channel,
#:   RelativeAddress  — source-level localization ``c@l``,
#:   LocVar           — to be bound at first communication ``c@lam``,
#:   Location         — machine-level localization (absolute partner path).
ChannelIndex = Union[None, RelativeAddress, LocVar, Location]


@dataclass(frozen=True, slots=True)
class Channel:
    """A possibly-localized channel ``M@index``."""

    subject: Term
    index: ChannelIndex = None

    def localized(self) -> bool:
        return self.index is not None

    def with_subject(self, subject: Term) -> "Channel":
        return Channel(subject, self.index)

    def render(self) -> str:
        from repro.core.addresses import location_str

        if self.index is None:
            return _render_subject(self.subject)
        if isinstance(self.index, RelativeAddress):
            idx = self.index.render()
        elif isinstance(self.index, LocVar):
            idx = self.index.render()
        else:
            idx = location_str(self.index)
        return f"{_render_subject(self.subject)}@{idx}"


def _render_subject(term: Term) -> str:
    if isinstance(term, (Name, Var)):
        return term.render()
    return repr(term)


def chan(subject: Term, index: ChannelIndex = None) -> Channel:
    """Convenience constructor for channels."""
    return Channel(subject, index)


# ----------------------------------------------------------------------
# Process constructors
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Nil:
    """The inert process ``0``."""


@dataclass(frozen=True, slots=True)
class Output:
    """``M<N>.P`` — send ``payload`` on ``channel``, continue as ``P``."""

    channel: Channel
    payload: Term
    continuation: "Process" = field(default_factory=Nil)


@dataclass(frozen=True, slots=True)
class Input:
    """``M(x).P`` — receive on ``channel`` binding ``binder`` in ``P``."""

    channel: Channel
    binder: Var
    continuation: "Process" = field(default_factory=Nil)


@dataclass(frozen=True, slots=True)
class Restriction:
    """``(nu m)P`` — declare the private name ``name`` in ``body``."""

    name: Name
    body: "Process"


@dataclass(frozen=True, slots=True)
class Parallel:
    """``P | Q`` — the binary parallel composition.

    Parallel composition is the *structural* operator of the calculus:
    its occurrences are the internal nodes of the tree of sequential
    processes from which relative addresses are read off (Figure 1).
    """

    left: "Process"
    right: "Process"


@dataclass(frozen=True, slots=True)
class Match:
    """``[M = N]P`` — behave as ``P`` if the two data are equal."""

    left: Term
    right: Term
    continuation: "Process"


@dataclass(frozen=True, slots=True)
class AddrMatch:
    """``[M =~ N]P`` — the paper's address matching.

    Passes when the *origins* of the two sides coincide.  ``right`` may
    be an :class:`~repro.core.terms.At` literal (compare against a fixed
    relative address, resolved at the matcher's own location) or any
    other term (compare the origins of two received data, as in the
    replay-detecting tester of Section 5.2).
    """

    left: Term
    right: Term
    continuation: "Process"


@dataclass(frozen=True, slots=True)
class Replication:
    """``!P`` — infinitely many copies of ``P`` in parallel."""

    body: "Process"


@dataclass(frozen=True, slots=True)
class Case:
    """``case L of {x1,...,xk}N in P`` — shared-key decryption.

    If the scrutinee is a ciphertext under a key equal to ``key``, binds
    the plaintext components to ``binders`` in ``continuation``;
    otherwise the process is stuck.
    """

    scrutinee: Term
    binders: tuple[Var, ...]
    key: Term
    continuation: "Process"

    def __post_init__(self) -> None:
        if not self.binders:
            raise ProcessError("a case must bind at least one variable")
        if len(set(self.binders)) != len(self.binders):
            raise ProcessError("case binders must be pairwise distinct")


@dataclass(frozen=True, slots=True)
class IntCase:
    """``case L of 0: P suc(x): Q`` — integer case of the full calculus.

    If the scrutinee is ``0`` behaves as ``zero_branch``; if it is
    ``suc(M)`` binds ``binder`` to ``M`` in ``succ_branch``; otherwise
    the process is stuck.
    """

    scrutinee: Term
    zero_branch: "Process"
    binder: Var
    succ_branch: "Process"


@dataclass(frozen=True, slots=True)
class Split:
    """``let (x, y) = M in P`` — pair projection (full-calculus helper).

    The paper's simplified calculus omits pair splitting but the full spi
    calculus has it, and it is convenient for protocol programming.
    """

    scrutinee: Term
    first: Var
    second: Var
    continuation: "Process"

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise ProcessError("split binders must be distinct")


Process = Union[
    Nil,
    Output,
    Input,
    Restriction,
    Parallel,
    Match,
    AddrMatch,
    Replication,
    Case,
    IntCase,
    Split,
]

#: The sequential process constructors — everything except Parallel, whose
#: occurrences form the internal nodes of the location tree.  (Restriction
#: is transparent for addressing but *not* sequential; see ``walk_leaves``.)
GUARD_TYPES = (Nil, Output, Input, Match, AddrMatch, Replication, Case, IntCase, Split)


# ----------------------------------------------------------------------
# Structure and traversal
# ----------------------------------------------------------------------


def children(proc: Process) -> tuple[Process, ...]:
    """Immediate sub-processes of ``proc``."""
    if isinstance(proc, Parallel):
        return (proc.left, proc.right)
    if isinstance(proc, Restriction):
        return (proc.body,)
    if isinstance(proc, Replication):
        return (proc.body,)
    if isinstance(proc, (Output, Input, Match, AddrMatch, Case, Split)):
        return (proc.continuation,)
    if isinstance(proc, IntCase):
        return (proc.zero_branch, proc.succ_branch)
    return ()


def walk(proc: Process) -> Iterator[Process]:
    """Pre-order traversal of a process and all its sub-processes."""
    yield proc
    for child in children(proc):
        yield from walk(child)


def walk_leaves(proc: Process, at: Location = ()) -> Iterator[tuple[Location, Process]]:
    """The tree of sequential processes (Figure 1).

    Yields ``(location, subprocess)`` for each leaf, where internal nodes
    are parallel compositions and restrictions are transparent.
    """
    if isinstance(proc, Parallel):
        yield from walk_leaves(proc.left, at + (0,))
        yield from walk_leaves(proc.right, at + (1,))
    elif isinstance(proc, Restriction):
        yield from walk_leaves(proc.body, at)
    else:
        yield (at, proc)


def subprocess_at(proc: Process, loc: Location) -> Process:
    """The subtree rooted at ``loc`` (restrictions are transparent)."""
    while isinstance(proc, Restriction):
        proc = proc.body
    if not loc:
        return proc
    if not isinstance(proc, Parallel):
        raise ProcessError(f"no subprocess at location {loc}")
    branch = proc.left if loc[0] == 0 else proc.right
    return subprocess_at(branch, loc[1:])


def replace_leaves(proc: Process, replacements: dict[Location, Process]) -> Process:
    """Rebuild ``proc`` with the leaves at the given locations replaced.

    Locations are interpreted as in :func:`walk_leaves`; restrictions on
    the path are preserved.  Raises :class:`ProcessError` when a location
    does not exist.
    """

    def go(p: Process, at: Location) -> Process:
        pending = [loc for loc in replacements if loc[: len(at)] == at]
        if not pending:
            return p
        if isinstance(p, Restriction):
            return Restriction(p.name, go(p.body, at))
        if at in replacements:
            if len(pending) > 1:
                raise ProcessError(f"nested replacement locations at {at}")
            return replacements[at]
        if not isinstance(p, Parallel):
            raise ProcessError(f"replacement location {pending[0]} not in tree")
        return Parallel(go(p.left, at + (0,)), go(p.right, at + (1,)))

    return go(proc, ())


def parallel(*procs: Process) -> Process:
    """Left-associated parallel composition of one or more processes."""
    if not procs:
        return Nil()
    result = procs[0]
    for p in procs[1:]:
        result = Parallel(result, p)
    return result


def restrict(names_: tuple[Name, ...] | list[Name] | Name, body: Process) -> Process:
    """``(nu n1)...(nu nk) body`` for one or several names."""
    if isinstance(names_, Name):
        names_ = (names_,)
    result = body
    for n in reversed(tuple(names_)):
        result = Restriction(n, result)
    return result


def seq_outputs(channel: Channel, payloads: list[Term], continuation: Process) -> Process:
    """``c<p1>. c<p2>. ... . continuation`` — a chain of outputs."""
    result = continuation
    for p in reversed(payloads):
        result = Output(channel, p, result)
    return result


# ----------------------------------------------------------------------
# Free names / variables
# ----------------------------------------------------------------------


def _channel_terms(ch: Channel) -> tuple[Term, ...]:
    return (ch.subject,)


def term_parts(proc: Process) -> tuple[Term, ...]:
    """The terms occurring at the top constructor of ``proc``."""
    if isinstance(proc, Output):
        return _channel_terms(proc.channel) + (proc.payload,)
    if isinstance(proc, Input):
        return _channel_terms(proc.channel)
    if isinstance(proc, (Match, AddrMatch)):
        return (proc.left, proc.right)
    if isinstance(proc, Case):
        return (proc.scrutinee, proc.key)
    if isinstance(proc, (Split, IntCase)):
        return (proc.scrutinee,)
    return ()


def free_names(proc: Process) -> frozenset[Name]:
    """Names free in ``proc`` (restriction is the only name binder)."""
    from repro.core.terms import names_of

    if isinstance(proc, Restriction):
        return free_names(proc.body) - {proc.name}
    result: set[Name] = set()
    for t in term_parts(proc):
        result |= names_of(t)
    for child in children(proc):
        result |= free_names(child)
    return frozenset(result)


def free_variables(proc: Process) -> frozenset[Var]:
    """Variables free in ``proc`` (inputs, cases and splits bind)."""
    from repro.core.terms import variables_of

    result: set[Var] = set()
    for t in term_parts(proc):
        result |= variables_of(t)
    if isinstance(proc, Input):
        result |= free_variables(proc.continuation) - {proc.binder}
    elif isinstance(proc, Case):
        result |= free_variables(proc.continuation) - set(proc.binders)
    elif isinstance(proc, Split):
        result |= free_variables(proc.continuation) - {proc.first, proc.second}
    elif isinstance(proc, IntCase):
        result |= free_variables(proc.zero_branch)
        result |= free_variables(proc.succ_branch) - {proc.binder}
    else:
        for child in children(proc):
            result |= free_variables(child)
    return frozenset(result)


def free_locvars(proc: Process) -> frozenset[LocVar]:
    """Location variables occurring in channel indexes of ``proc``.

    Location variables have no user-level binder: they are free until the
    abstract machine instantiates them at the first communication.
    """
    result: set[LocVar] = set()
    if isinstance(proc, (Output, Input)) and isinstance(proc.channel.index, LocVar):
        result.add(proc.channel.index)
    for child in children(proc):
        result |= free_locvars(child)
    return frozenset(result)


def bound_names(proc: Process) -> frozenset[Name]:
    """All names bound by a restriction anywhere in ``proc``."""
    return frozenset(p.name for p in walk(proc) if isinstance(p, Restriction))


def process_size(proc: Process) -> int:
    """Number of constructors — a cheap complexity measure for budgets."""
    return sum(1 for _ in walk(proc))
