"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class AddressError(ReproError):
    """A relative address is malformed or cannot be resolved.

    Raised when a path pair violates Definition 1 of the paper (the two
    components must diverge at their first step), or when an address is
    resolved against an absolute location it does not apply to.
    """


class TermError(ReproError):
    """A term is used in a way its sort does not permit.

    Examples: encrypting with a composite key where a name is required by
    the construction helpers, or localizing an already-localized value.
    """


class ProcessError(ReproError):
    """A process is structurally invalid (e.g. duplicate binder reuse)."""


class SubstitutionError(ReproError):
    """A substitution would be ill-formed (e.g. binding a non-variable)."""


def _render_parse_error(
    message: str, line: int, column: int, source: "str | None"
) -> str:
    """The rendered message, with a source excerpt when one is known.

    The excerpt shows the offending line with a caret under the column::

        expected term, found ')' at 1:7
          1 | a<M>.)x
            |      ^
    """
    text = f"{message} at {line}:{column}" if line else message
    if source is None or not line:
        return text
    lines = source.splitlines()
    if not 1 <= line <= len(lines):
        return text
    # One space per character keeps the caret aligned under tabs.
    excerpt = lines[line - 1].replace("\t", " ")
    gutter = f"  {line} | "
    text += f"\n{gutter}{excerpt}"
    if 1 <= column <= len(excerpt) + 1:
        pad = " " * (len(gutter) - 2) + "| "
        text += f"\n{pad}{' ' * (column - 1)}^"
    return text


class ParseError(ReproError):
    """The concrete-syntax parser rejected its input.

    Attributes:
        message: the bare diagnostic, without location or excerpt.
        line: 1-based line of the offending token.
        column: 1-based column of the offending token.
        source: the full source text, when attached — the rendered
            message then includes the offending line with a caret under
            the column, so the error is diagnosable on its own (e.g.
            from a batch-suite journal).
    """

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        source: "str | None" = None,
    ) -> None:
        super().__init__(_render_parse_error(message, line, column, source))
        self.message = message
        self.line = line
        self.column = column
        self.source = source

    def with_source(self, source: str) -> "ParseError":
        """This error with a source excerpt attached (idempotent)."""
        if self.source is not None or not self.line:
            return self
        return ParseError(self.message, self.line, self.column, source)


class SemanticsError(ReproError):
    """The abstract machine reached an inconsistent configuration.

    This signals a bug in the caller (e.g. asking for the successors of a
    state built for a different system) or in the library itself, never a
    normal protocol outcome: stuck protocols simply have no transitions.
    """


class InstantiationError(ReproError):
    """A raw process could not be turned into a runnable system."""


class BudgetExceededError(ReproError):
    """An exploration exceeded its state/step budget.

    Carries the partially-explored result so callers may inspect how far
    the search got before giving up.
    """

    def __init__(self, message: str, partial: object = None) -> None:
        super().__init__(message)
        self.partial = partial


class NarrationError(ReproError):
    """A protocol narration cannot be compiled to the calculus."""


class EquivalenceError(ReproError):
    """An equivalence check was invoked on incompatible arguments."""
