"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class AddressError(ReproError):
    """A relative address is malformed or cannot be resolved.

    Raised when a path pair violates Definition 1 of the paper (the two
    components must diverge at their first step), or when an address is
    resolved against an absolute location it does not apply to.
    """


class TermError(ReproError):
    """A term is used in a way its sort does not permit.

    Examples: encrypting with a composite key where a name is required by
    the construction helpers, or localizing an already-localized value.
    """


class ProcessError(ReproError):
    """A process is structurally invalid (e.g. duplicate binder reuse)."""


class SubstitutionError(ReproError):
    """A substitution would be ill-formed (e.g. binding a non-variable)."""


class ParseError(ReproError):
    """The concrete-syntax parser rejected its input.

    Attributes:
        line: 1-based line of the offending token.
        column: 1-based column of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticsError(ReproError):
    """The abstract machine reached an inconsistent configuration.

    This signals a bug in the caller (e.g. asking for the successors of a
    state built for a different system) or in the library itself, never a
    normal protocol outcome: stuck protocols simply have no transitions.
    """


class InstantiationError(ReproError):
    """A raw process could not be turned into a runnable system."""


class BudgetExceededError(ReproError):
    """An exploration exceeded its state/step budget.

    Carries the partially-explored result so callers may inspect how far
    the search got before giving up.
    """

    def __init__(self, message: str, partial: object = None) -> None:
        super().__init__(message)
        self.partial = partial


class NarrationError(ReproError):
    """A protocol narration cannot be compiled to the calculus."""


class EquivalenceError(ReproError):
    """An equivalence check was invoked on incompatible arguments."""
