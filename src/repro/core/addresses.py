"""Relative addresses (Definitions 1 and 2 of the paper).

A *relative address* describes the path between two sequential processes
in the abstract syntax tree of a system, where the internal nodes of the
tree are the occurrences of the binary parallel operator ``|`` and the
leaves are sequential processes (restrictions are transparent).

The paper writes an address as ``theta0 * theta1`` where, for the address
of a *target* process ``T`` relative to an *observer* process ``O``:

* ``theta0`` is the path from the minimal common ancestor of ``O`` and
  ``T`` down to ``O`` (the paper reads it "upwards from O and reversed");
* ``theta1`` is the path from that ancestor down to ``T``.

Each step of a path is a tag ``||0`` (left branch) or ``||1`` (right
branch).  Definition 1 requires the two components to diverge at their
first step when both are non-empty.

This module also provides *absolute locations* — paths from the root of
the syntax tree, written as tuples of 0/1 — which the abstract machine
uses internally (the paper stresses that relative addresses "are used by
the abstract machine of the calculus only").  Every operation the paper
performs on relative addresses (inversion, compatibility, composition
when a message is forwarded) is a pure function of the absolute locations
involved, which is how we implement them.

Example (Figure 1 of the paper)::

    >>> p1 = (0, 1)          # absolute location of P1
    >>> p3 = (1, 1, 0)       # absolute location of P3
    >>> RelativeAddress.between(observer=p1, target=p3)
    RelativeAddress.parse('||0||1*||1||1||0')
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.core.errors import AddressError

#: An absolute location: the path of 0/1 branch choices from the root of
#: the syntax tree down to a (sub)process.  The root itself is ``()``.
Location = tuple[int, ...]

#: The root location.
ROOT: Location = ()

_TAG_RE = re.compile(r"\|\|([01])")
_ADDRESS_RE = re.compile(r"^(?:\|\|[01])*[*•](?:\|\|[01])*$")


def _validate_path(path: tuple[int, ...], what: str) -> None:
    for tag in path:
        if tag not in (0, 1):
            raise AddressError(f"{what} contains invalid tag {tag!r}; tags must be 0 or 1")


def common_ancestor(a: Location, b: Location) -> Location:
    """Return the longest common prefix of two absolute locations."""
    shared = 0
    for x, y in zip(a, b):
        if x != y:
            break
        shared += 1
    return a[:shared]


def is_prefix(prefix: Location, loc: Location) -> bool:
    """True when ``prefix`` is an ancestor-or-self of ``loc``."""
    return loc[: len(prefix)] == prefix


@lru_cache(maxsize=None)
def location_str(loc: Location) -> str:
    """Render an absolute location, e.g. ``(1, 0)`` as ``<||1||0>``."""
    return "<" + "".join(f"||{tag}" for tag in loc) + ">"


@dataclass(frozen=True, slots=True)
class RelativeAddress:
    """A relative address ``theta0 * theta1`` (Definition 1).

    Attributes:
        observer_path: ``theta0`` — path from the common ancestor to the
            observer (the process the address is *relative to*).
        target_path: ``theta1`` — path from the common ancestor to the
            target (the process being pointed at).
    """

    observer_path: tuple[int, ...]
    target_path: tuple[int, ...]

    def __post_init__(self) -> None:
        _validate_path(self.observer_path, "observer path")
        _validate_path(self.target_path, "target path")
        if (
            self.observer_path
            and self.target_path
            and self.observer_path[0] == self.target_path[0]
        ):
            raise AddressError(
                "ill-formed relative address: components must diverge at "
                f"their first tag (Definition 1), got {self!s}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def between(cls, observer: Location, target: Location) -> "RelativeAddress":
        """The address of ``target`` relative to ``observer``.

        Both arguments are absolute locations in the same tree.
        """
        ancestor = common_ancestor(observer, target)
        k = len(ancestor)
        return cls(tuple(observer[k:]), tuple(target[k:]))

    @classmethod
    def parse(cls, text: str) -> "RelativeAddress":
        """Parse the concrete syntax, e.g. ``'||0||1*||1||1||0'``.

        Either ``*`` or the paper's bullet ``•`` separates the two
        components.  An empty component is allowed on either side.
        """
        text = text.strip()
        if not _ADDRESS_RE.match(text):
            raise AddressError(f"cannot parse relative address {text!r}")
        sep = "*" if "*" in text else "•"
        left, right = text.split(sep, 1)
        observer = tuple(int(m.group(1)) for m in _TAG_RE.finditer(left))
        target = tuple(int(m.group(1)) for m in _TAG_RE.finditer(right))
        return cls(observer, target)

    # ------------------------------------------------------------------
    # The paper's operations
    # ------------------------------------------------------------------

    def inverse(self) -> "RelativeAddress":
        """The compatible address ``l^-1`` (Definition 2).

        If ``self`` is the address of ``B`` relative to ``A`` then the
        inverse is the address of ``A`` relative to ``B``.
        """
        return RelativeAddress(self.target_path, self.observer_path)

    def is_compatible(self, other: "RelativeAddress") -> bool:
        """Definition 2: ``other`` and ``self`` describe the same path
        with source and target exchanged."""
        return other == self.inverse()

    def resolve(self, observer: Location) -> Location:
        """Absolute location of the target, given the observer's location.

        Requires ``observer`` to end with ``theta0`` (otherwise the
        address does not apply at that location and an
        :class:`AddressError` is raised).
        """
        k = len(self.observer_path)
        if k > len(observer) or (k and observer[-k:] != self.observer_path):
            raise AddressError(
                f"address {self} does not apply at observer location "
                f"{location_str(observer)}"
            )
        ancestor = observer[: len(observer) - k]
        return ancestor + self.target_path

    def compose(self, carrier: "RelativeAddress") -> "RelativeAddress":
        """Address update when a localized datum is forwarded.

        ``self`` is the address of a datum's *creator* relative to the
        process ``S`` that currently holds it; ``carrier`` is the address
        of ``S`` relative to the process ``R`` that receives the datum.
        The result is the address of the creator relative to ``R`` — the
        address-composition operation the paper uses so that a forwarded
        name keeps pointing at its original creator.
        """
        # Reconstruct consistent absolute coordinates.  Both self and
        # carrier mention S: ``self.observer_path`` is the path from
        # anc(S, creator) to S, ``carrier.target_path`` the path from
        # anc(R, S) to S.  One ancestor dominates the other, so one path
        # must be a suffix of the other; pad with the deeper prefix.
        s_via_self = self.observer_path
        s_via_carrier = carrier.target_path
        if len(s_via_self) >= len(s_via_carrier):
            if s_via_carrier and s_via_self[-len(s_via_carrier):] != s_via_carrier:
                raise AddressError(
                    f"incompatible addresses for composition: {self} after {carrier}"
                )
            # Root := anc(S, creator); anc(R, S) sits below it.
            pad = s_via_self[: len(s_via_self) - len(s_via_carrier)]
            creator_abs: Location = self.target_path
            receiver_abs: Location = pad + carrier.observer_path
        else:
            if s_via_self and s_via_carrier[-len(s_via_self):] != s_via_self:
                raise AddressError(
                    f"incompatible addresses for composition: {self} after {carrier}"
                )
            # Root := anc(R, S); anc(S, creator) sits below it.
            anc_sc = s_via_carrier[: len(s_via_carrier) - len(s_via_self)]
            creator_abs = anc_sc + self.target_path
            receiver_abs = carrier.observer_path
        return RelativeAddress.between(observer=receiver_abs, target=creator_abs)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, unicode: bool = False) -> str:
        """Concrete syntax; ``unicode=True`` uses the paper's bullet."""
        sep = "•" if unicode else "*"
        left = "".join(f"||{t}" for t in self.observer_path)
        right = "".join(f"||{t}" for t in self.target_path)
        return f"{left}{sep}{right}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()

    def __repr__(self) -> str:
        return f"RelativeAddress.parse({self.render()!r})"

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        yield self.observer_path
        yield self.target_path


#: The empty address ``*`` — the address of a process relative to itself.
SELF = RelativeAddress((), ())


def all_locations(depth: int) -> list[Location]:
    """Every absolute location of depth at most ``depth`` (testing aid)."""
    result: list[Location] = [()]
    frontier: list[Location] = [()]
    for _ in range(depth):
        frontier = [loc + (tag,) for loc in frontier for tag in (0, 1)]
        result.extend(frontier)
    return result
