"""Terms of the (simplified) spi calculus, extended with localization.

The paper's grammar for terms is::

    L, M, N ::= a, b, c, k, m, n        names
              | x, y, z, w             variables
              | (M1, M2)               pairs
              | {M1, ..., Mk}N         shared-key encryption

To support the paper's *message authentication* primitive, values that
flow through the abstract machine additionally carry their origin:

* a :class:`Name` records the absolute location of its *creator* (the
  position of the restriction that declared it) — the paper's "names
  handled locally";
* a composite value constructed and sent by a process is wrapped in a
  :class:`Localized` node recording the sender's location, so a receiver
  (in particular a tester) can ascertain the origin of a message;
* tester-side *literal* localized terms (``l n`` in the paper, e.g.
  ``[z =~ ||1||0*||1]``) are written with :class:`At`, which pairs a
  relative address with an optional payload and is resolved against the
  matcher's own location when the match is attempted.

All term classes are immutable; sharing is safe across states of the
state-space exploration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.core.addresses import Location, RelativeAddress
from repro.core.errors import TermError

_uid_counter = itertools.count(1)


def fresh_uid() -> int:
    """Return a process-wide fresh integer (used to uniquify binders)."""
    return next(_uid_counter)


@dataclass(frozen=True, slots=True)
class Name:
    """A name ``a, b, c, k, m, n, ...``.

    Attributes:
        base: the user-visible spelling.
        uid: ``None`` for *free* (global) names; a unique integer for
            names created by a restriction once the system has been
            instantiated.  Two names are the same channel/key iff their
            ``(base, uid)`` pair is equal.
        creator: absolute location of the process that created the name
            (``None`` for free names, which belong to the environment).
            The creator participates in equality: it is assigned exactly
            once, together with ``uid``, so equal ``(base, uid)`` always
            implies equal ``creator``.
    """

    base: str
    uid: Optional[int] = None
    creator: Optional[Location] = None

    def is_free(self) -> bool:
        """True for global names that no restriction binds."""
        return self.uid is None

    def render(self) -> str:
        return self.base if self.uid is None else f"{self.base}#{self.uid}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()


@dataclass(frozen=True, slots=True)
class Var:
    """A variable ``x, y, z, w, ...`` bound by an input or a decryption."""

    ident: str
    uid: Optional[int] = None

    def render(self) -> str:
        return self.ident if self.uid is None else f"{self.ident}#{self.uid}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()


@dataclass(frozen=True, slots=True)
class Pair:
    """The pair ``(M1, M2)``."""

    first: "Term"
    second: "Term"


@dataclass(frozen=True, slots=True)
class Zero:
    """The natural number ``0`` of the full spi calculus.

    The paper works in a simplified calculus but notes "in the full
    calculus, terms can also be pairs, zero and successors of terms";
    this library implements the full term language.
    """


@dataclass(frozen=True, slots=True)
class Succ:
    """The successor ``suc(M)`` of the full spi calculus."""

    term: "Term"


@dataclass(frozen=True, slots=True)
class SharedEnc:
    """The shared-key ciphertext ``{M1, ..., Mk}N``.

    Under the perfect-cryptography assumption the only way to recover the
    body is a ``case`` with a key equal to ``key``.
    """

    body: tuple["Term", ...]
    key: "Term"

    def __post_init__(self) -> None:
        if not self.body:
            raise TermError("a ciphertext must contain at least one term")


@dataclass(frozen=True, slots=True)
class Localized:
    """A runtime value together with the location of its creator.

    Produced by the abstract machine when a composite term is sent: the
    message is "seen by the receiver as localized in the local space of
    the sender".  User code never constructs these directly.
    """

    creator: Location
    term: "Term"

    def __post_init__(self) -> None:
        if isinstance(self.term, Localized):
            raise TermError("localized values do not nest at top level")


@dataclass(frozen=True, slots=True)
class At:
    """A syntactic localized literal ``l M`` (tester vocabulary).

    ``At(l, None)`` denotes "any datum originating at ``l``"; with a
    payload it denotes that specific datum localized at ``l``.  The
    relative address ``l`` is interpreted at the location of the process
    performing the match.
    """

    address: RelativeAddress
    term: Optional["Term"] = None


Term = Union[Name, Var, Pair, Zero, Succ, SharedEnc, Localized, At]

#: Term constructors that may appear in *user-written* (source) terms.
SOURCE_TERM_TYPES = (Name, Var, Pair, Zero, Succ, SharedEnc, At)


# ----------------------------------------------------------------------
# Generic traversal helpers
# ----------------------------------------------------------------------


def subterms(term: Term) -> Iterator[Term]:
    """Depth-first pre-order iterator over a term and all its subterms."""
    yield term
    if isinstance(term, Pair):
        yield from subterms(term.first)
        yield from subterms(term.second)
    elif isinstance(term, Succ):
        yield from subterms(term.term)
    elif isinstance(term, SharedEnc):
        for part in term.body:
            yield from subterms(part)
        yield from subterms(term.key)
    elif isinstance(term, Localized):
        yield from subterms(term.term)
    elif isinstance(term, At) and term.term is not None:
        yield from subterms(term.term)


def names_of(term: Term) -> frozenset[Name]:
    """All names occurring anywhere in ``term``."""
    return frozenset(t for t in subterms(term) if isinstance(t, Name))


def variables_of(term: Term) -> frozenset[Var]:
    """All variables occurring anywhere in ``term``."""
    return frozenset(t for t in subterms(term) if isinstance(t, Var))


def is_closed(term: Term) -> bool:
    """True when the term contains no variables."""
    return not variables_of(term)


# ----------------------------------------------------------------------
# Origins (message authentication)
# ----------------------------------------------------------------------


def origin(value: Term) -> Optional[Location]:
    """The absolute location of the creator of a runtime value.

    Names report the location of the restriction that created them;
    localized composites report the location of the sender that built
    them.  Free names and never-sent composites have no origin.
    """
    if isinstance(value, Name):
        return value.creator
    if isinstance(value, Localized):
        return value.creator
    return None


def payload(value: Term) -> Term:
    """The underlying datum of a runtime value (strips localization)."""
    return value.term if isinstance(value, Localized) else value


def localize(value: Term, sender: Location) -> Term:
    """Attach an origin to an outgoing message, if it does not have one.

    A forwarded value (a name, or an already-localized composite) keeps
    its original creator — this is the address-preservation property the
    paper's message authentication rests on.  A composite freshly built
    by the sender becomes localized at the sender.
    """
    if isinstance(value, (Name, Localized)):
        return value
    if isinstance(value, (Var, At)):
        raise TermError(f"cannot send open or literal term {value!r}")
    return Localized(sender, value)


def values_equal(a: Term, b: Term) -> bool:
    """Equality of runtime data, ignoring top-level localization.

    This is the ``[M = N]`` matching of the calculus: two values match
    when they denote the same datum.  Name identity includes the creator,
    so two names from different restriction instances never match even if
    they share a spelling.
    """
    return payload(a) == payload(b)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------


def names(spec: str) -> tuple[Name, ...]:
    """Split a whitespace/comma separated spec into free names.

    >>> a, b = names("a b")
    """
    parts = spec.replace(",", " ").split()
    return tuple(Name(p) for p in parts)


def variables(spec: str) -> tuple[Var, ...]:
    """Split a whitespace/comma separated spec into variables."""
    parts = spec.replace(",", " ").split()
    return tuple(Var(p) for p in parts)


def enc(*body: Term, key: Term) -> SharedEnc:
    """Build ``{body}key`` with a keyword for readability at call sites."""
    return SharedEnc(tuple(body), key)


def nat(value: int) -> Term:
    """The numeral for a non-negative Python int, e.g. ``nat(2)`` =
    ``suc(suc(0))``."""
    if value < 0:
        raise TermError("naturals cannot encode negative numbers")
    result: Term = Zero()
    for _ in range(value):
        result = Succ(result)
    return result


def nat_value(term: Term) -> Optional[int]:
    """The Python int a closed numeral denotes (``None`` otherwise)."""
    count = 0
    term = payload(term)
    while isinstance(term, Succ):
        count += 1
        term = payload(term.term)
    return count if isinstance(term, Zero) else None
