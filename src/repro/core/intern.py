"""Hash-consed (interned) construction of terms and processes.

Every transition rebuilds large parts of a state's process tree —
``normalize`` and substitution reconstruct even the nodes they do not
change — so structurally equal subtrees exist as many distinct Python
objects, and every operation that compares, hashes or renders them pays
the full structural cost again and again.  Hash consing is the classic
answer (ProVerif's term representation, the hash-consed state stores of
explicit-state model checkers): route construction through an *intern
table* so that structural equality becomes **object identity**.

:class:`InternTable` maps a cheap per-node key — the constructor plus
the ``id()``s of the already-interned children and the primitive
fields — to the one canonical instance of that node.  Because children
are interned before their parents, key construction is O(arity), never
O(subtree): the table never hashes a tree recursively.

Two invariants make ``id()``-based keys sound:

* the table holds a **strong reference** to every canonical instance,
  so no interned object is ever garbage collected while the table
  lives, and no ``id()`` in a key can be recycled;
* consequently the table only ever grows; it is cleared **atomically**
  (:meth:`InternTable.clear`) — partial eviction could leave a key
  whose child ``id()`` now names a different object.

A second map makes interning *incremental*: every raw object ever
interned is memoized by its ``id()`` (with a strong reference keeping
the id stable).  Substitution, ``normalize`` and ``replace_leaves``
share the subtrees they do not touch by reference, so interning a
transition's target re-walks only the rewritten spine — the walk stops
at the first node the parent state already routed through the table.

The interned instances are the ordinary frozen dataclasses from
:mod:`repro.core.terms` / :mod:`repro.core.processes` — interning adds
no wrapper type, so interned and plain nodes mix freely (``==`` between
them stays structural).  Pickling an interned tree is safe: pickle
walks the object graph and re-creates plain nodes; re-interning happens
lazily on first use in the loading process.
"""

from __future__ import annotations

from typing import Optional

from repro.core.processes import (
    AddrMatch,
    Case,
    Channel,
    Input,
    IntCase,
    LocVar,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
    Split,
)
from repro.core.terms import (
    At,
    Localized,
    Name,
    Pair,
    SharedEnc,
    Succ,
    Term,
    Var,
    Zero,
)


class InternTable:
    """A table of canonical instances, keyed structurally in O(arity).

    ``term`` / ``process`` / ``channel`` return the canonical instance
    for their argument, interning all sub-structure on the way; the
    argument itself becomes the canonical instance when its node class
    is seen for the first time (no needless copy).
    """

    __slots__ = ("_nodes", "_nil", "_memo")

    def __init__(self) -> None:
        self._nodes: dict[tuple, object] = {}
        self._nil: Optional[Nil] = None
        # id(raw object) -> (raw object, canonical instance).  The raw
        # reference pins the id; the self-entry for canonical instances
        # lets walks stop at already-interned boundaries.
        self._memo: dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self._nodes) + (1 if self._nil is not None else 0)

    def clear(self) -> None:
        """Drop every canonical instance (atomic: all or nothing)."""
        self._nodes.clear()
        self._memo.clear()
        self._nil = None

    # -- internals ------------------------------------------------------

    def _node(self, key: tuple, candidate):
        """The canonical instance for ``key`` (``candidate`` if new).

        ``candidate`` must already have interned children — callers
        rebuild it from interned parts when any child changed identity.
        """
        node = self._nodes.get(key)
        if node is None:
            node = self._nodes[key] = candidate
        return node

    def _memoize(self, raw, node):
        self._memo[id(raw)] = (raw, node)
        if raw is not node and id(node) not in self._memo:
            self._memo[id(node)] = (node, node)
        return node

    # -- terms ----------------------------------------------------------

    def term(self, t: Term) -> Term:
        """The canonical instance of ``t`` (recursively interned)."""
        hit = self._memo.get(id(t))
        if hit is not None:
            return hit[1]
        return self._memoize(t, self._term(t))

    def _term(self, t: Term) -> Term:
        cls = type(t)
        if cls is Name:
            return self._node((Name, t.base, t.uid, t.creator), t)
        if cls is Var:
            return self._node((Var, t.ident, t.uid), t)
        if cls is Zero:
            return self._node((Zero,), t)
        if cls is Pair:
            first = self.term(t.first)
            second = self.term(t.second)
            if first is not t.first or second is not t.second:
                t = Pair(first, second)
            return self._node((Pair, id(first), id(second)), t)
        if cls is Succ:
            inner = self.term(t.term)
            if inner is not t.term:
                t = Succ(inner)
            return self._node((Succ, id(inner)), t)
        if cls is SharedEnc:
            body = tuple(self.term(part) for part in t.body)
            key = self.term(t.key)
            if key is not t.key or any(a is not b for a, b in zip(body, t.body)):
                t = SharedEnc(body, key)
            return self._node(
                (SharedEnc, tuple(id(part) for part in body), id(key)), t
            )
        if cls is Localized:
            inner = self.term(t.term)
            if inner is not t.term:
                t = Localized(t.creator, inner)
            return self._node((Localized, t.creator, id(inner)), t)
        if cls is At:
            inner = None if t.term is None else self.term(t.term)
            if inner is not t.term:
                t = At(t.address, inner)
            return self._node(
                (At, t.address, None if inner is None else id(inner)), t
            )
        raise TypeError(f"cannot intern term {t!r}")

    # -- channels -------------------------------------------------------

    def channel(self, ch: Channel) -> Channel:
        hit = self._memo.get(id(ch))
        if hit is not None:
            return hit[1]
        return self._memoize(ch, self._channel(ch))

    def _channel(self, ch: Channel) -> Channel:
        subject = self.term(ch.subject)
        index = ch.index
        if type(index) is LocVar:
            index = self._node((LocVar, index.ident, index.uid), index)
        if subject is not ch.subject or index is not ch.index:
            ch = Channel(subject, index)
        # RelativeAddress / Location / None index values are small flat
        # data; they key directly.
        idx_key = id(index) if type(index) is LocVar else index
        return self._node((Channel, id(subject), idx_key), ch)

    def _var(self, v: Var) -> Var:
        return self._node((Var, v.ident, v.uid), v)

    # -- processes ------------------------------------------------------

    def process(self, p: Process) -> Process:
        """The canonical instance of ``p`` (recursively interned)."""
        hit = self._memo.get(id(p))
        if hit is not None:
            return hit[1]
        return self._memoize(p, self._process(p))

    def _process(self, p: Process) -> Process:
        cls = type(p)
        if cls is Nil:
            if self._nil is None:
                self._nil = p
            return self._nil
        if cls is Output:
            channel = self.channel(p.channel)
            value = self.term(p.payload)
            cont = self.process(p.continuation)
            if (
                channel is not p.channel
                or value is not p.payload
                or cont is not p.continuation
            ):
                p = Output(channel, value, cont)
            return self._node((Output, id(channel), id(value), id(cont)), p)
        if cls is Input:
            channel = self.channel(p.channel)
            binder = self._var(p.binder)
            cont = self.process(p.continuation)
            if (
                channel is not p.channel
                or binder is not p.binder
                or cont is not p.continuation
            ):
                p = Input(channel, binder, cont)
            return self._node((Input, id(channel), id(binder), id(cont)), p)
        if cls is Parallel:
            left = self.process(p.left)
            right = self.process(p.right)
            if left is not p.left or right is not p.right:
                p = Parallel(left, right)
            return self._node((Parallel, id(left), id(right)), p)
        if cls is Replication:
            body = self.process(p.body)
            if body is not p.body:
                p = Replication(body)
            return self._node((Replication, id(body)), p)
        if cls is Restriction:
            name = self.term(p.name)
            body = self.process(p.body)
            if name is not p.name or body is not p.body:
                p = Restriction(name, body)
            return self._node((Restriction, id(name), id(body)), p)
        if cls is Match:
            left = self.term(p.left)
            right = self.term(p.right)
            cont = self.process(p.continuation)
            if (
                left is not p.left
                or right is not p.right
                or cont is not p.continuation
            ):
                p = Match(left, right, cont)
            return self._node((Match, id(left), id(right), id(cont)), p)
        if cls is AddrMatch:
            left = self.term(p.left)
            right = self.term(p.right)
            cont = self.process(p.continuation)
            if (
                left is not p.left
                or right is not p.right
                or cont is not p.continuation
            ):
                p = AddrMatch(left, right, cont)
            return self._node((AddrMatch, id(left), id(right), id(cont)), p)
        if cls is Case:
            scrutinee = self.term(p.scrutinee)
            binders = tuple(self._var(b) for b in p.binders)
            key = self.term(p.key)
            cont = self.process(p.continuation)
            if (
                scrutinee is not p.scrutinee
                or key is not p.key
                or cont is not p.continuation
                or any(a is not b for a, b in zip(binders, p.binders))
            ):
                p = Case(scrutinee, binders, key, cont)
            return self._node(
                (
                    Case,
                    id(scrutinee),
                    tuple(id(b) for b in binders),
                    id(key),
                    id(cont),
                ),
                p,
            )
        if cls is IntCase:
            scrutinee = self.term(p.scrutinee)
            zero_branch = self.process(p.zero_branch)
            binder = self._var(p.binder)
            succ_branch = self.process(p.succ_branch)
            if (
                scrutinee is not p.scrutinee
                or zero_branch is not p.zero_branch
                or binder is not p.binder
                or succ_branch is not p.succ_branch
            ):
                p = IntCase(scrutinee, zero_branch, binder, succ_branch)
            return self._node(
                (IntCase, id(scrutinee), id(zero_branch), id(binder), id(succ_branch)),
                p,
            )
        if cls is Split:
            scrutinee = self.term(p.scrutinee)
            first = self._var(p.first)
            second = self._var(p.second)
            cont = self.process(p.continuation)
            if (
                scrutinee is not p.scrutinee
                or first is not p.first
                or second is not p.second
                or cont is not p.continuation
            ):
                p = Split(scrutinee, first, second, cont)
            return self._node(
                (Split, id(scrutinee), id(first), id(second), id(cont)), p
            )
        raise TypeError(f"cannot intern process {p!r}")
