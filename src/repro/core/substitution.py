"""Substitution and renaming for terms and processes.

Three kinds of replacement are needed by the abstract machine:

* **variable substitution** ``P{M/x}`` — performed by communication and
  decryption; capture-avoiding with respect to input/case binders (bound
  variables are alpha-renamed when they would capture);
* **name renaming** — used to *freshen* the copy spawned by a
  replication, giving every bound name (and bound variable) of the copy
  a new unique identity;
* **location-variable instantiation** — binds a channel-index variable
  ``lam`` to a concrete partner location during the first communication.

Restriction binders never capture during variable substitution because
instantiated names carry unique ids; on raw (pre-instantiation) syntax we
still alpha-rename defensively.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.addresses import Location
from repro.core.errors import SubstitutionError
from repro.core.processes import (
    AddrMatch,
    Case,
    Channel,
    ChannelIndex,
    Input,
    IntCase,
    LocVar,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
    Split,
)
from repro.core.terms import (
    At,
    Localized,
    Name,
    Pair,
    SharedEnc,
    Succ,
    Term,
    Var,
    Zero,
    fresh_uid,
    names_of,
    variables_of,
)

# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------


def subst_term(term: Term, mapping: Mapping[Var, Term]) -> Term:
    """Apply a variable-to-term substitution inside a term."""
    if not mapping:
        return term
    if isinstance(term, Var):
        return mapping.get(term, term)
    if isinstance(term, Name):
        return term
    if isinstance(term, Pair):
        return Pair(subst_term(term.first, mapping), subst_term(term.second, mapping))
    if isinstance(term, Zero):
        return term
    if isinstance(term, Succ):
        return Succ(subst_term(term.term, mapping))
    if isinstance(term, SharedEnc):
        return SharedEnc(
            tuple(subst_term(part, mapping) for part in term.body),
            subst_term(term.key, mapping),
        )
    if isinstance(term, Localized):
        return Localized(term.creator, subst_term(term.term, mapping))
    if isinstance(term, At):
        inner = None if term.term is None else subst_term(term.term, mapping)
        return At(term.address, inner)
    raise SubstitutionError(f"unknown term {term!r}")


def rename_names_term(term: Term, mapping: Mapping[Name, Name]) -> Term:
    """Apply a name-to-name renaming inside a term."""
    if not mapping:
        return term
    if isinstance(term, Name):
        return mapping.get(term, term)
    if isinstance(term, Var):
        return term
    if isinstance(term, Pair):
        return Pair(
            rename_names_term(term.first, mapping), rename_names_term(term.second, mapping)
        )
    if isinstance(term, Zero):
        return term
    if isinstance(term, Succ):
        return Succ(rename_names_term(term.term, mapping))
    if isinstance(term, SharedEnc):
        return SharedEnc(
            tuple(rename_names_term(part, mapping) for part in term.body),
            rename_names_term(term.key, mapping),
        )
    if isinstance(term, Localized):
        return Localized(term.creator, rename_names_term(term.term, mapping))
    if isinstance(term, At):
        inner = None if term.term is None else rename_names_term(term.term, mapping)
        return At(term.address, inner)
    raise SubstitutionError(f"unknown term {term!r}")


def rename_vars_term(term: Term, mapping: Mapping[Var, Var]) -> Term:
    """Apply a variable-to-variable renaming inside a term."""
    return subst_term(term, mapping)


# ----------------------------------------------------------------------
# Processes: variable substitution
# ----------------------------------------------------------------------


def _subst_channel(ch: Channel, mapping: Mapping[Var, Term]) -> Channel:
    subject = subst_term(ch.subject, mapping)
    return Channel(subject, ch.index)


def _fresh_var(var: Var) -> Var:
    return Var(var.ident, fresh_uid())


def subst(proc: Process, mapping: Mapping[Var, Term]) -> Process:
    """Capture-avoiding substitution ``proc{mapping}``.

    Binders (input, case, split) occurring in ``proc`` are alpha-renamed
    when they clash with the domain of the substitution or with variables
    free in its range.
    """
    mapping = {k: v for k, v in mapping.items() if k != v}
    if not mapping:
        return proc
    range_vars: set[Var] = set()
    for value in mapping.values():
        range_vars |= variables_of(value)

    def clash(binders: tuple[Var, ...]) -> bool:
        return any(b in mapping or b in range_vars for b in binders)

    if isinstance(proc, Nil):
        return proc
    if isinstance(proc, Output):
        return Output(
            _subst_channel(proc.channel, mapping),
            subst_term(proc.payload, mapping),
            subst(proc.continuation, mapping),
        )
    if isinstance(proc, Input):
        binder = proc.binder
        continuation = proc.continuation
        if clash((binder,)):
            fresh = _fresh_var(binder)
            continuation = subst(continuation, {binder: fresh})
            binder = fresh
        inner = {k: v for k, v in mapping.items() if k != binder}
        return Input(
            _subst_channel(proc.channel, mapping), binder, subst(continuation, inner)
        )
    if isinstance(proc, Restriction):
        return Restriction(proc.name, subst(proc.body, mapping))
    if isinstance(proc, Parallel):
        return Parallel(subst(proc.left, mapping), subst(proc.right, mapping))
    if isinstance(proc, Match):
        return Match(
            subst_term(proc.left, mapping),
            subst_term(proc.right, mapping),
            subst(proc.continuation, mapping),
        )
    if isinstance(proc, AddrMatch):
        return AddrMatch(
            subst_term(proc.left, mapping),
            subst_term(proc.right, mapping),
            subst(proc.continuation, mapping),
        )
    if isinstance(proc, Replication):
        return Replication(subst(proc.body, mapping))
    if isinstance(proc, Case):
        binders = proc.binders
        continuation = proc.continuation
        if clash(binders):
            fresh = tuple(_fresh_var(b) for b in binders)
            continuation = subst(continuation, dict(zip(binders, fresh)))
            binders = fresh
        inner = {k: v for k, v in mapping.items() if k not in binders}
        return Case(
            subst_term(proc.scrutinee, mapping),
            binders,
            subst_term(proc.key, mapping),
            subst(continuation, inner),
        )
    if isinstance(proc, IntCase):
        binder = proc.binder
        succ_branch = proc.succ_branch
        if clash((binder,)):
            fresh = _fresh_var(binder)
            succ_branch = subst(succ_branch, {binder: fresh})
            binder = fresh
        inner = {k: v for k, v in mapping.items() if k != binder}
        return IntCase(
            subst_term(proc.scrutinee, mapping),
            subst(proc.zero_branch, mapping),
            binder,
            subst(succ_branch, inner),
        )
    if isinstance(proc, Split):
        binders = (proc.first, proc.second)
        continuation = proc.continuation
        if clash(binders):
            fresh = tuple(_fresh_var(b) for b in binders)
            continuation = subst(continuation, dict(zip(binders, fresh)))
            binders = fresh
        inner = {k: v for k, v in mapping.items() if k not in binders}
        return Split(
            subst_term(proc.scrutinee, mapping),
            binders[0],
            binders[1],
            subst(continuation, inner),
        )
    raise SubstitutionError(f"unknown process {proc!r}")


def subst1(proc: Process, var: Var, value: Term) -> Process:
    """Single-variable convenience wrapper around :func:`subst`."""
    return subst(proc, {var: value})


# ----------------------------------------------------------------------
# Processes: name renaming (used by replication freshening)
# ----------------------------------------------------------------------


def rename_names(proc: Process, mapping: Mapping[Name, Name]) -> Process:
    """Apply a name renaming everywhere, *including* restriction binders.

    This is a raw renaming: the caller (the freshening pass) is
    responsible for the mapping being injective and fresh, so no capture
    can occur.
    """
    if not mapping:
        return proc
    if isinstance(proc, Nil):
        return proc
    if isinstance(proc, Output):
        return Output(
            Channel(rename_names_term(proc.channel.subject, mapping), proc.channel.index),
            rename_names_term(proc.payload, mapping),
            rename_names(proc.continuation, mapping),
        )
    if isinstance(proc, Input):
        return Input(
            Channel(rename_names_term(proc.channel.subject, mapping), proc.channel.index),
            proc.binder,
            rename_names(proc.continuation, mapping),
        )
    if isinstance(proc, Restriction):
        return Restriction(
            mapping.get(proc.name, proc.name), rename_names(proc.body, mapping)
        )
    if isinstance(proc, Parallel):
        return Parallel(rename_names(proc.left, mapping), rename_names(proc.right, mapping))
    if isinstance(proc, Match):
        return Match(
            rename_names_term(proc.left, mapping),
            rename_names_term(proc.right, mapping),
            rename_names(proc.continuation, mapping),
        )
    if isinstance(proc, AddrMatch):
        return AddrMatch(
            rename_names_term(proc.left, mapping),
            rename_names_term(proc.right, mapping),
            rename_names(proc.continuation, mapping),
        )
    if isinstance(proc, Replication):
        return Replication(rename_names(proc.body, mapping))
    if isinstance(proc, Case):
        return Case(
            rename_names_term(proc.scrutinee, mapping),
            proc.binders,
            rename_names_term(proc.key, mapping),
            rename_names(proc.continuation, mapping),
        )
    if isinstance(proc, IntCase):
        return IntCase(
            rename_names_term(proc.scrutinee, mapping),
            rename_names(proc.zero_branch, mapping),
            proc.binder,
            rename_names(proc.succ_branch, mapping),
        )
    if isinstance(proc, Split):
        return Split(
            rename_names_term(proc.scrutinee, mapping),
            proc.first,
            proc.second,
            rename_names(proc.continuation, mapping),
        )
    raise SubstitutionError(f"unknown process {proc!r}")


def rename_vars(proc: Process, mapping: Mapping[Var, Var]) -> Process:
    """Apply a variable renaming everywhere, *including* binders.

    Like :func:`rename_names`, intended for injective fresh renamings.
    """
    if not mapping:
        return proc
    if isinstance(proc, Input):
        return Input(
            Channel(rename_vars_term(proc.channel.subject, mapping), proc.channel.index),
            mapping.get(proc.binder, proc.binder),
            rename_vars(proc.continuation, mapping),
        )
    if isinstance(proc, Case):
        return Case(
            rename_vars_term(proc.scrutinee, mapping),
            tuple(mapping.get(b, b) for b in proc.binders),
            rename_vars_term(proc.key, mapping),
            rename_vars(proc.continuation, mapping),
        )
    if isinstance(proc, Split):
        return Split(
            rename_vars_term(proc.scrutinee, mapping),
            mapping.get(proc.first, proc.first),
            mapping.get(proc.second, proc.second),
            rename_vars(proc.continuation, mapping),
        )
    if isinstance(proc, Output):
        return Output(
            Channel(rename_vars_term(proc.channel.subject, mapping), proc.channel.index),
            rename_vars_term(proc.payload, mapping),
            rename_vars(proc.continuation, mapping),
        )
    if isinstance(proc, Nil):
        return proc
    if isinstance(proc, Restriction):
        return Restriction(proc.name, rename_vars(proc.body, mapping))
    if isinstance(proc, Parallel):
        return Parallel(rename_vars(proc.left, mapping), rename_vars(proc.right, mapping))
    if isinstance(proc, Match):
        return Match(
            rename_vars_term(proc.left, mapping),
            rename_vars_term(proc.right, mapping),
            rename_vars(proc.continuation, mapping),
        )
    if isinstance(proc, AddrMatch):
        return AddrMatch(
            rename_vars_term(proc.left, mapping),
            rename_vars_term(proc.right, mapping),
            rename_vars(proc.continuation, mapping),
        )
    if isinstance(proc, Replication):
        return Replication(rename_vars(proc.body, mapping))
    if isinstance(proc, IntCase):
        return IntCase(
            rename_vars_term(proc.scrutinee, mapping),
            rename_vars(proc.zero_branch, mapping),
            mapping.get(proc.binder, proc.binder),
            rename_vars(proc.succ_branch, mapping),
        )
    raise SubstitutionError(f"unknown process {proc!r}")


# ----------------------------------------------------------------------
# Location-variable instantiation
# ----------------------------------------------------------------------


def instantiate_locvar(proc: Process, locvar: LocVar, location: Location) -> Process:
    """Bind a location variable to a concrete partner location.

    Every channel index equal to ``locvar`` in ``proc`` becomes the
    absolute ``location``.  Performed by the communication rule the first
    time a thread uses a ``c@lam`` channel; afterwards the whole session
    is pinned to that partner.
    """

    def fix_index(index: ChannelIndex) -> ChannelIndex:
        return location if index == locvar else index

    if isinstance(proc, Output):
        return Output(
            Channel(proc.channel.subject, fix_index(proc.channel.index)),
            proc.payload,
            instantiate_locvar(proc.continuation, locvar, location),
        )
    if isinstance(proc, Input):
        return Input(
            Channel(proc.channel.subject, fix_index(proc.channel.index)),
            proc.binder,
            instantiate_locvar(proc.continuation, locvar, location),
        )
    if isinstance(proc, Nil):
        return proc
    if isinstance(proc, Restriction):
        return Restriction(proc.name, instantiate_locvar(proc.body, locvar, location))
    if isinstance(proc, Parallel):
        return Parallel(
            instantiate_locvar(proc.left, locvar, location),
            instantiate_locvar(proc.right, locvar, location),
        )
    if isinstance(proc, Match):
        return Match(
            proc.left, proc.right, instantiate_locvar(proc.continuation, locvar, location)
        )
    if isinstance(proc, AddrMatch):
        return AddrMatch(
            proc.left, proc.right, instantiate_locvar(proc.continuation, locvar, location)
        )
    if isinstance(proc, Replication):
        return Replication(instantiate_locvar(proc.body, locvar, location))
    if isinstance(proc, Case):
        return Case(
            proc.scrutinee,
            proc.binders,
            proc.key,
            instantiate_locvar(proc.continuation, locvar, location),
        )
    if isinstance(proc, IntCase):
        return IntCase(
            proc.scrutinee,
            instantiate_locvar(proc.zero_branch, locvar, location),
            proc.binder,
            instantiate_locvar(proc.succ_branch, locvar, location),
        )
    if isinstance(proc, Split):
        return Split(
            proc.scrutinee,
            proc.first,
            proc.second,
            instantiate_locvar(proc.continuation, locvar, location),
        )
    raise SubstitutionError(f"unknown process {proc!r}")


# ----------------------------------------------------------------------
# Freshening (per-copy identity for replication and instantiation)
# ----------------------------------------------------------------------


def freshen_bound(proc: Process) -> Process:
    """Give every bound name and bound variable of ``proc`` a fresh uid.

    Used when a replication spawns a copy, so that restricted names of
    different copies are different names (the source of the paper's
    freshness guarantees) and binders never collide across copies.
    Location variables are freshened too: each copy binds its partner
    independently (Proposition 3).
    """
    from repro.core.processes import bound_names, free_locvars

    name_map = {n: Name(n.base, fresh_uid(), n.creator) for n in bound_names(proc)}
    proc = rename_names(proc, name_map)

    bound_vars: set[Var] = set()
    for sub in _walk(proc):
        if isinstance(sub, Input):
            bound_vars.add(sub.binder)
        elif isinstance(sub, Case):
            bound_vars.update(sub.binders)
        elif isinstance(sub, Split):
            bound_vars.update((sub.first, sub.second))
        elif isinstance(sub, IntCase):
            bound_vars.add(sub.binder)
    var_map = {v: Var(v.ident, fresh_uid()) for v in bound_vars}
    proc = rename_vars(proc, var_map)

    locvar_map = {lv: LocVar(lv.ident, fresh_uid()) for lv in free_locvars(proc)}
    for old, new in locvar_map.items():
        proc = _rename_locvar(proc, old, new)
    return proc


def _walk(proc: Process):
    from repro.core.processes import walk

    return walk(proc)


def _rename_locvar(proc: Process, old: LocVar, new: LocVar) -> Process:
    def fix(p: Process) -> Process:
        if isinstance(p, (Output, Input)) and p.channel.index == old:
            ch = Channel(p.channel.subject, new)
            if isinstance(p, Output):
                return Output(ch, p.payload, fix(p.continuation))
            return Input(ch, p.binder, fix(p.continuation))
        if isinstance(p, Output):
            return Output(p.channel, p.payload, fix(p.continuation))
        if isinstance(p, Input):
            return Input(p.channel, p.binder, fix(p.continuation))
        if isinstance(p, Nil):
            return p
        if isinstance(p, Restriction):
            return Restriction(p.name, fix(p.body))
        if isinstance(p, Parallel):
            return Parallel(fix(p.left), fix(p.right))
        if isinstance(p, Match):
            return Match(p.left, p.right, fix(p.continuation))
        if isinstance(p, AddrMatch):
            return AddrMatch(p.left, p.right, fix(p.continuation))
        if isinstance(p, Replication):
            return Replication(fix(p.body))
        if isinstance(p, Case):
            return Case(p.scrutinee, p.binders, p.key, fix(p.continuation))
        if isinstance(p, IntCase):
            return IntCase(p.scrutinee, fix(p.zero_branch), p.binder, fix(p.succ_branch))
        if isinstance(p, Split):
            return Split(p.scrutinee, p.first, p.second, fix(p.continuation))
        raise SubstitutionError(f"unknown process {p!r}")

    return fix(proc)
