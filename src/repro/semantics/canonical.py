"""Cached canonical state keys and successor memoization.

This module is the hot-path replacement for rendering every state
through :func:`repro.syntax.pretty.canonical_process` on every visit.
It produces **byte-identical** keys — the differential parity suite
(``tests/test_canonical_parity.py``) holds it to that — but obtains
them incrementally:

1. the state's process tree is *interned* through a global
   :class:`~repro.core.intern.InternTable`, so structurally equal
   subtrees (which transitions rebuild constantly) collapse onto one
   canonical instance each;
2. a **whole-key memo** maps the interned root (by identity) to its
   finished key.  A state whose tree was seen before — the dedup-hit
   case that dominates explorations — costs one intern walk and one
   dictionary lookup instead of a full render;
3. on a miss, assembly runs one linear pass over the root's
   **flattened token list**: string literals (adjacent ones pre-merged)
   interleaved with ``(kind, ident, uid)`` identity triples, renumbered
   globally in first-occurrence order exactly like ``canon_id``.
   Token lists are memoized per interned subtree, so flattening a new
   state splices the cached lists of everything below the rewritten
   spine with C-level copies — only identity renumbering is ever
   re-done per state (it is global, so it cannot be cached);
4. a bounded LRU **successor cache** keyed by ``(interned root,
   private, roles)`` lets repeated expansions of the same state — the
   attacker enumeration revisits systems under many knowledge sets,
   and escalation re-explores from scratch — skip the transition
   enumeration entirely.  Identity keying means a hit returns
   transitions whose uids match the querying state exactly.

Invalidation rules (see ``docs/performance.md``):

* intern-table keys embed children by ``id()``; the table holds strong
  references, so ids stay valid until :func:`clear_caches` drops the
  table, both memos and the successor cache **together** — partial
  eviction of the table or the fragment/key memos is never allowed;
* the successor cache may evict individually (its entries keep their
  interned root alive, so a recycled ``id`` can never alias a live
  key);
* the whole layer is bypassed when disabled — by the
  ``REPRO_NO_STATE_CACHE`` environment variable (read at import, so
  spawned workers inherit the choice), :func:`set_cache_enabled`, or
  the CLI's ``--no-state-cache`` — in which case ``state_key`` falls
  back to :func:`canonical_process` verbatim.

Cache effectiveness is observable through ``canonical.hit`` /
``canonical.miss`` (and ``successor.hit`` / ``successor.miss``)
counters published to :mod:`repro.obs.metrics` by the exploration
loops; see :func:`metrics_snapshot` / :func:`publish_cache_metrics`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Optional

from repro.core.addresses import RelativeAddress, location_str
from repro.core.intern import InternTable
from repro.core.processes import (
    AddrMatch,
    Case,
    Channel,
    Input,
    IntCase,
    LocVar,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
    Split,
)
from repro.core.terms import (
    At,
    Localized,
    Name,
    Pair,
    SharedEnc,
    Succ,
    Var,
    Zero,
)
from repro.syntax.pretty import canonical_process

#: Environment switch honoured at import time so that spawn-context
#: worker processes (which re-import this module) follow the parent's
#: ``--no-state-cache`` choice.
DISABLE_ENV = "REPRO_NO_STATE_CACHE"

#: Full-clear threshold for the intern table (node count).  Clearing is
#: all-or-nothing by design — see the module docstring.
MAX_INTERNED_NODES = 2_000_000

#: Entry cap for the successor LRU.
SUCCESSOR_CACHE_SIZE = 8_192


def _env_disabled() -> bool:
    return os.environ.get(DISABLE_ENV, "").strip().lower() in {"1", "true", "yes", "on"}


_enabled: bool = not _env_disabled()

_table = InternTable()
_flats: dict[int, list] = {}  # id(interned node) -> flattened tokens
_keys: dict[int, str] = {}  # id(interned root) -> canonical key
_successors: "OrderedDict[tuple, tuple]" = OrderedDict()

_canonical_hits = 0
_canonical_misses = 0
_successor_hits = 0
_successor_misses = 0


# ----------------------------------------------------------------------
# Enable / disable / clear
# ----------------------------------------------------------------------


def cache_enabled() -> bool:
    """Is the hash-consed state cache active?"""
    return _enabled


def set_cache_enabled(enabled: bool) -> bool:
    """Switch the cache on or off; returns the previous setting.

    Turning the cache off clears it, so a later re-enable starts from
    an empty (and therefore trivially consistent) table.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    if not _enabled:
        clear_caches()
    return previous


def clear_caches() -> None:
    """Drop the intern table, both memos and the successor cache.

    Always clears all four together: the memos key by ``id`` of objects
    the table keeps alive, so none of them may outlive it.
    """
    _table.clear()
    _flats.clear()
    _keys.clear()
    _successors.clear()


def interned_size() -> int:
    """Number of canonical instances currently interned."""
    return len(_table)


def intern_process(root: Process) -> Process:
    """The canonical (hash-consed) instance of ``root``."""
    return _table.process(root)


# ----------------------------------------------------------------------
# Fragments: per-node canonical-rendering recipes
# ----------------------------------------------------------------------
#
# A fragment is a flat tuple whose elements are
#   * ``str``      — literal output,
#   * 3-tuples     — ``(kind, ident, uid)`` identities, renumbered in
#                    first-occurrence order at assembly (= ``canon_id``),
#   * ``_PreNumber`` — assign a number to an identity *now*, emit
#                    nothing (mirrors ``canonical_process`` evaluating
#                    binder ids before the surrounding f-string:
#                    Input/Case/IntCase number their binders first),
#   * anything else — an interned child node, expanded recursively.
#
# Fragments mention children by reference, so they are shared by every
# state containing the subtree: after a transition only the rewritten
# spine needs fragment construction, each node in O(arity).


class _PreNumber:
    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key


def _name_part(base: str, uid: Optional[int]):
    # canon_id("n", base, None) keeps the spelling of a free name.
    return base if uid is None else ("n", base, uid)


def _frag_name(t: Name) -> tuple:
    if t.uid is None:
        rendered = t.base
        if t.creator is not None:
            rendered += location_str(t.creator)
        return (rendered,)
    if t.creator is None:
        return (("n", t.base, t.uid),)
    return (("n", t.base, t.uid), location_str(t.creator))


def _frag_var(t: Var) -> tuple:
    return (("v", t.ident, t.uid),)


def _frag_pair(t: Pair) -> tuple:
    return ("(", t.first, ", ", t.second, ")")


def _frag_zero(t: Zero) -> tuple:
    return ("zero",)


def _frag_succ(t: Succ) -> tuple:
    return ("suc(", t.term, ")")


def _frag_enc(t: SharedEnc) -> tuple:
    parts: list = ["{"]
    for i, part in enumerate(t.body):
        if i:
            parts.append(", ")
        parts.append(part)
    parts.append("}")
    parts.append(t.key)
    return tuple(parts)


def _frag_localized(t: Localized) -> tuple:
    return (location_str(t.creator), t.term)


def _frag_at(t: At) -> tuple:
    literal = f"[{t.address.render()}]"
    return (literal,) if t.term is None else (literal, t.term)


def _frag_channel(ch: Channel) -> tuple:
    index = ch.index
    if index is None:
        return (ch.subject,)
    if isinstance(index, RelativeAddress):
        return (ch.subject, "@" + index.render())
    if isinstance(index, LocVar):
        return (ch.subject, "@", ("l", index.ident, index.uid))
    return (ch.subject, "@" + location_str(index))


def _frag_nil(p: Nil) -> tuple:
    return ("0",)


def _frag_output(p: Output) -> tuple:
    return (p.channel, "<", p.payload, ">.", p.continuation)


def _frag_input(p: Input) -> tuple:
    binder = ("v", p.binder.ident, p.binder.uid)
    return (_PreNumber(binder), p.channel, "(", binder, ").", p.continuation)


def _frag_restriction(p: Restriction) -> tuple:
    # canonical_process renders the binder via canon_id directly: the
    # creator never appears here (contrast with Name occurrences).
    return ("(nu ", _name_part(p.name.base, p.name.uid), ")(", p.body, ")")


def _frag_parallel(p: Parallel) -> tuple:
    return ("(", p.left, " | ", p.right, ")")


def _frag_match(p: Match) -> tuple:
    return ("[", p.left, " = ", p.right, "] ", p.continuation)


def _frag_addrmatch(p: AddrMatch) -> tuple:
    return ("[", p.left, " =~ ", p.right, "] ", p.continuation)


def _frag_replication(p: Replication) -> tuple:
    return ("!(", p.body, ")")


def _frag_case(p: Case) -> tuple:
    triples = [("v", b.ident, b.uid) for b in p.binders]
    parts: list = [_PreNumber(t) for t in triples]
    parts += ["case ", p.scrutinee, " of {"]
    for i, triple in enumerate(triples):
        if i:
            parts.append(", ")
        parts.append(triple)
    parts += ["}", p.key, " in ", p.continuation]
    return tuple(parts)


def _frag_intcase(p: IntCase) -> tuple:
    binder = ("v", p.binder.ident, p.binder.uid)
    return (
        _PreNumber(binder),
        "case ",
        p.scrutinee,
        " of zero: ",
        p.zero_branch,
        " suc(",
        binder,
        "): ",
        p.succ_branch,
    )


def _frag_split(p: Split) -> tuple:
    first = ("v", p.first.ident, p.first.uid)
    second = ("v", p.second.ident, p.second.uid)
    return ("let (", first, ", ", second, ") = ", p.scrutinee, " in ", p.continuation)


_FRAGMENT_BUILDERS: dict[type, object] = {
    Name: _frag_name,
    Var: _frag_var,
    Pair: _frag_pair,
    Zero: _frag_zero,
    Succ: _frag_succ,
    SharedEnc: _frag_enc,
    Localized: _frag_localized,
    At: _frag_at,
    Channel: _frag_channel,
    Nil: _frag_nil,
    Output: _frag_output,
    Input: _frag_input,
    Restriction: _frag_restriction,
    Parallel: _frag_parallel,
    Match: _frag_match,
    AddrMatch: _frag_addrmatch,
    Replication: _frag_replication,
    Case: _frag_case,
    IntCase: _frag_intcase,
    Split: _frag_split,
}


def _flatten(node) -> list:
    """The flattened token list of an interned subtree (memoized).

    Tokens are ``str`` literals (adjacent literals merged at build
    time), identity triples and ``_PreNumber`` markers, in the pretty
    printer's left-to-right output order.  Child references in the
    one-level recipes are expanded recursively, so flattening a
    transition target splices the cached lists of every shared subtree
    with C-level copies — only the rewritten spine builds new lists.
    """
    flat = _flats.get(id(node))
    if flat is not None:
        return flat
    out: list = []
    for part in _FRAGMENT_BUILDERS[node.__class__](node):
        cls = part.__class__
        if cls is str:
            if out and out[-1].__class__ is str:
                out[-1] += part
            else:
                out.append(part)
        elif cls is tuple or cls is _PreNumber:
            out.append(part)
        else:
            child = _flatten(part)
            if child and out and out[-1].__class__ is str and child[0].__class__ is str:
                out[-1] += child[0]
                out.extend(child[1:])
            else:
                out.extend(child)
    _flats[id(node)] = out
    return out


def _assemble(root) -> str:
    """Render an interned tree from its token list (one linear pass).

    Identity triples are numbered in first-occurrence order with one
    shared counter across kinds — byte-identical to ``canon_id``.
    """
    # Values are the *rendered* ids ("v3", "n7"): repeat occurrences —
    # the bulk of the tokens — cost one dict hit, no formatting.
    renumber: dict[tuple, str] = {}
    out: list[str] = []
    for item in _flatten(root):
        cls = item.__class__
        if cls is str:
            out.append(item)
        elif cls is tuple:
            rendered = renumber.get(item)
            if rendered is None:
                rendered = renumber[item] = f"{item[0]}{len(renumber) + 1}"
            out.append(rendered)
        else:  # _PreNumber
            key = item.key
            if key not in renumber:
                renumber[key] = f"{key[0]}{len(renumber) + 1}"
    return "".join(out)


# ----------------------------------------------------------------------
# State keys
# ----------------------------------------------------------------------


def state_key(root: Process) -> str:
    """The alpha-invariant canonical key of a state's process tree.

    Byte-identical to ``canonical_process(root)``; with the cache
    enabled the tree is interned first and the key is memoized per
    interned root.
    """
    global _canonical_hits, _canonical_misses
    if not _enabled:
        return canonical_process(root)
    node = _table.process(root)
    key = _keys.get(id(node))
    if key is not None:
        _canonical_hits += 1
        return key
    _canonical_misses += 1
    key = _keys[id(node)] = _assemble(node)
    if len(_table) > MAX_INTERNED_NODES:
        clear_caches()
    return key


# ----------------------------------------------------------------------
# Successor cache
# ----------------------------------------------------------------------


def successor_key(system) -> Optional[tuple]:
    """Cache handle for ``successors(system)`` (``None`` when disabled).

    ``private`` and ``roles`` are part of the key because equal process
    trees can belong to systems with different private-name sets, and
    verdicts depend on them.  Keying on the *identity* of the interned
    root means a hit hands back transitions whose uids are exactly
    those of the querying state — not merely alpha-equivalent ones.
    The handle carries the interned root alongside the key so a stored
    entry keeps it alive: a live entry's ``id`` can never be recycled
    onto a different node.
    """
    if not _enabled:
        return None
    node = _table.process(system.root)
    return ((id(node), system.private, system.roles), node)


def successor_get(handle: tuple) -> Optional[list]:
    """Cached transition list for ``handle``, or ``None``."""
    global _successor_hits, _successor_misses
    key, _node = handle
    entry = _successors.get(key)
    if entry is None:
        _successor_misses += 1
        return None
    _successors.move_to_end(key)
    _successor_hits += 1
    return list(entry[1])


def successor_put(handle: tuple, transitions: list) -> None:
    """Record the computed transitions of one state (LRU-bounded)."""
    key, node = handle
    _successors[key] = (node, tuple(transitions))
    _successors.move_to_end(key)
    while len(_successors) > SUCCESSOR_CACHE_SIZE:
        _successors.popitem(last=False)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------


def metrics_snapshot() -> tuple[int, int, int, int]:
    """Monotonic cache counters ``(canonical hit/miss, successor
    hit/miss)`` — snapshot before a run, diff after, publish the delta."""
    return (_canonical_hits, _canonical_misses, _successor_hits, _successor_misses)


_METRIC_NAMES = ("canonical.hit", "canonical.miss", "successor.hit", "successor.miss")


def publish_cache_metrics(metrics, before: tuple[int, int, int, int]) -> None:
    """Publish counter deltas since ``before`` to a metrics registry."""
    after = metrics_snapshot()
    for name, b, a in zip(_METRIC_NAMES, before, after):
        if a > b:
            metrics.inc(name, a - b)
    metrics.set_gauge("canonical.interned", interned_size())
