"""Cached canonical state keys and successor memoization.

This module is the hot-path replacement for rendering every state
through :func:`repro.syntax.pretty.canonical_process` on every visit.
It produces **byte-identical** keys — the differential parity suite
(``tests/test_canonical_parity.py``) holds it to that — but obtains
them incrementally:

1. the state's process tree is *interned* through a global
   :class:`~repro.core.intern.InternTable`, so structurally equal
   subtrees (which transitions rebuild constantly) collapse onto one
   canonical instance each;
2. a **whole-key memo** maps the interned root (by identity) to its
   finished key.  A state whose tree was seen before — the dedup-hit
   case that dominates explorations — costs one intern walk and one
   dictionary lookup instead of a full render;
3. on a miss, assembly runs one linear pass over the root's
   **flattened token list**: string literals (adjacent ones pre-merged)
   interleaved with ``(kind, ident, uid)`` identity triples, renumbered
   globally in first-occurrence order exactly like ``canon_id``.
   Token lists are memoized per interned subtree, so flattening a new
   state splices the cached lists of everything below the rewritten
   spine with C-level copies — only identity renumbering is ever
   re-done per state (it is global, so it cannot be cached);
4. a bounded LRU **successor cache** keyed by ``(interned root,
   private, roles)`` lets repeated expansions of the same state — the
   attacker enumeration revisits systems under many knowledge sets,
   and escalation re-explores from scratch — skip the transition
   enumeration entirely.  Identity keying means a hit returns
   transitions whose uids match the querying state exactly.

Invalidation rules (see ``docs/performance.md``):

* intern-table keys embed children by ``id()``; the table holds strong
  references, so ids stay valid until :func:`clear_caches` drops the
  table, both memos and the successor cache **together** — partial
  eviction of the table or the fragment/key memos is never allowed;
* the successor cache may evict individually (its entries keep their
  interned root alive, so a recycled ``id`` can never alias a live
  key);
* the whole layer is bypassed when disabled — by the
  ``REPRO_NO_STATE_CACHE`` environment variable (read at import, so
  spawned workers inherit the choice), :func:`set_cache_enabled`, or
  the CLI's ``--no-state-cache`` — in which case ``state_key`` falls
  back to :func:`canonical_process` verbatim.

Cache effectiveness is observable through ``canonical.hit`` /
``canonical.miss`` (and ``successor.hit`` / ``successor.miss``)
counters published to :mod:`repro.obs.metrics` by the exploration
loops; see :func:`metrics_snapshot` / :func:`publish_cache_metrics`.
"""

from __future__ import annotations

import os
import re
from collections import OrderedDict
from typing import Callable, Optional

from repro.core.addresses import RelativeAddress, location_str
from repro.core.intern import InternTable
from repro.core.processes import (
    AddrMatch,
    Case,
    Channel,
    Input,
    IntCase,
    LocVar,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
    Split,
)
from repro.core.terms import (
    At,
    Localized,
    Name,
    Pair,
    SharedEnc,
    Succ,
    Var,
    Zero,
)
from repro.syntax.pretty import canonical_process

#: Environment switch honoured at import time so that spawn-context
#: worker processes (which re-import this module) follow the parent's
#: ``--no-state-cache`` choice.
DISABLE_ENV = "REPRO_NO_STATE_CACHE"

#: Reduction-mode environment switches (shared with
#: :mod:`repro.semantics.reduction`, which lives above this module in
#: the import graph).  ``REPRO_NO_REDUCTION`` forces mode ``none``;
#: ``REPRO_REDUCTION`` selects an explicit mode.  Both are read at
#: import time so spawn-context workers inherit the parent's choice,
#: exactly like ``REPRO_NO_STATE_CACHE``.
NO_REDUCTION_ENV = "REPRO_NO_REDUCTION"
REDUCTION_ENV = "REPRO_REDUCTION"

REDUCTION_MODES = ("none", "por", "sym", "full")

#: Full-clear threshold for the intern table (node count).  Clearing is
#: all-or-nothing by design — see the module docstring.
MAX_INTERNED_NODES = 2_000_000

#: Entry cap for the successor LRU.
SUCCESSOR_CACHE_SIZE = 8_192


def _env_disabled() -> bool:
    return os.environ.get(DISABLE_ENV, "").strip().lower() in {"1", "true", "yes", "on"}


def env_reduction_mode() -> str:
    """The reduction mode requested by the environment.

    ``REPRO_NO_REDUCTION`` wins over ``REPRO_REDUCTION``; an absent or
    unknown ``REPRO_REDUCTION`` value means the default ``full``.
    """
    if os.environ.get(NO_REDUCTION_ENV, "").strip().lower() in {"1", "true", "yes", "on"}:
        return "none"
    mode = os.environ.get(REDUCTION_ENV, "").strip().lower()
    return mode if mode in REDUCTION_MODES else "full"


_enabled: bool = not _env_disabled()

#: Is symmetry canonicalization active?  Owned here (rather than in
#: :mod:`repro.semantics.reduction`) because key assembly must not
#: depend on modules that import this one.
_symmetry: bool = env_reduction_mode() in {"sym", "full"}

_table = InternTable()
_flats: dict[int, list] = {}  # id(interned node) -> flattened tokens
_keys: dict[int, str] = {}  # id(interned root) -> canonical key
_successors: "OrderedDict[tuple, tuple]" = OrderedDict()

# Symmetry-canonicalization memos: all keyed by id of interned nodes,
# so they live and die with the intern table (see clear_caches).
_sym_keys: dict[tuple, str] = {}  # (id(root), roles) -> symmetric key
_sym_safe_memo: dict[int, bool] = {}
_spiny_memo: dict[int, bool] = {}
_blind_memo: dict[tuple, str] = {}

#: Hooks run by :func:`clear_caches` so sibling modules whose memos key
#: on interned-node identity (e.g. the batched-normalize memo in
#: :mod:`repro.semantics.transitions`) are dropped with the table.
_clear_hooks: list[Callable[[], None]] = []

_canonical_hits = 0
_canonical_misses = 0
_successor_hits = 0
_successor_misses = 0
_sym_reorders = 0


# ----------------------------------------------------------------------
# Enable / disable / clear
# ----------------------------------------------------------------------


def cache_enabled() -> bool:
    """Is the hash-consed state cache active?"""
    return _enabled


def set_cache_enabled(enabled: bool) -> bool:
    """Switch the cache on or off; returns the previous setting.

    Turning the cache off clears it, so a later re-enable starts from
    an empty (and therefore trivially consistent) table.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    if not _enabled:
        clear_caches()
    return previous


def symmetry_enabled() -> bool:
    """Is symmetry canonicalization of replicated sessions active?"""
    return _symmetry


def set_symmetry_enabled(enabled: bool) -> bool:
    """Switch symmetry canonicalization; returns the previous setting.

    Flipping the switch drops the symmetric-key memos: plain and
    symmetric keys for the same tree differ, so entries computed under
    the other setting must never be served.
    """
    global _symmetry
    previous = _symmetry
    _symmetry = bool(enabled)
    if previous != _symmetry:
        _sym_keys.clear()
        _blind_memo.clear()
    return previous


def register_clear_hook(hook: Callable[[], None]) -> None:
    """Run ``hook`` whenever :func:`clear_caches` drops the arena.

    For memos in other modules keyed by interned-node identity; they
    must not outlive the intern table.
    """
    _clear_hooks.append(hook)


def clear_caches() -> None:
    """Drop the intern table, every memo and the successor cache.

    Always clears everything together: the memos key by ``id`` of
    objects the table keeps alive, so none of them may outlive it.
    Registered clear hooks run last.
    """
    _table.clear()
    _flats.clear()
    _keys.clear()
    _successors.clear()
    _sym_keys.clear()
    _sym_safe_memo.clear()
    _spiny_memo.clear()
    _blind_memo.clear()
    for hook in _clear_hooks:
        hook()


def interned_size() -> int:
    """Number of canonical instances currently interned."""
    return len(_table)


def intern_process(root: Process) -> Process:
    """The canonical (hash-consed) instance of ``root``."""
    return _table.process(root)


# ----------------------------------------------------------------------
# Fragments: per-node canonical-rendering recipes
# ----------------------------------------------------------------------
#
# A fragment is a flat tuple whose elements are
#   * ``str``      — literal output,
#   * 3-tuples     — ``(kind, ident, uid)`` identities, renumbered in
#                    first-occurrence order at assembly (= ``canon_id``),
#   * ``_PreNumber`` — assign a number to an identity *now*, emit
#                    nothing (mirrors ``canonical_process`` evaluating
#                    binder ids before the surrounding f-string:
#                    Input/Case/IntCase number their binders first),
#   * anything else — an interned child node, expanded recursively.
#
# Fragments mention children by reference, so they are shared by every
# state containing the subtree: after a transition only the rewritten
# spine needs fragment construction, each node in O(arity).


class _PreNumber:
    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key


def _name_part(base: str, uid: Optional[int]):
    # canon_id("n", base, None) keeps the spelling of a free name.
    return base if uid is None else ("n", base, uid)


def _frag_name(t: Name) -> tuple:
    if t.uid is None:
        rendered = t.base
        if t.creator is not None:
            rendered += location_str(t.creator)
        return (rendered,)
    if t.creator is None:
        return (("n", t.base, t.uid),)
    return (("n", t.base, t.uid), location_str(t.creator))


def _frag_var(t: Var) -> tuple:
    return (("v", t.ident, t.uid),)


def _frag_pair(t: Pair) -> tuple:
    return ("(", t.first, ", ", t.second, ")")


def _frag_zero(t: Zero) -> tuple:
    return ("zero",)


def _frag_succ(t: Succ) -> tuple:
    return ("suc(", t.term, ")")


def _frag_enc(t: SharedEnc) -> tuple:
    parts: list = ["{"]
    for i, part in enumerate(t.body):
        if i:
            parts.append(", ")
        parts.append(part)
    parts.append("}")
    parts.append(t.key)
    return tuple(parts)


def _frag_localized(t: Localized) -> tuple:
    return (location_str(t.creator), t.term)


def _frag_at(t: At) -> tuple:
    literal = f"[{t.address.render()}]"
    return (literal,) if t.term is None else (literal, t.term)


def _frag_channel(ch: Channel) -> tuple:
    index = ch.index
    if index is None:
        return (ch.subject,)
    if isinstance(index, RelativeAddress):
        return (ch.subject, "@" + index.render())
    if isinstance(index, LocVar):
        return (ch.subject, "@", ("l", index.ident, index.uid))
    return (ch.subject, "@" + location_str(index))


def _frag_nil(p: Nil) -> tuple:
    return ("0",)


def _frag_output(p: Output) -> tuple:
    return (p.channel, "<", p.payload, ">.", p.continuation)


def _frag_input(p: Input) -> tuple:
    binder = ("v", p.binder.ident, p.binder.uid)
    return (_PreNumber(binder), p.channel, "(", binder, ").", p.continuation)


def _frag_restriction(p: Restriction) -> tuple:
    # canonical_process renders the binder via canon_id directly: the
    # creator never appears here (contrast with Name occurrences).
    return ("(nu ", _name_part(p.name.base, p.name.uid), ")(", p.body, ")")


def _frag_parallel(p: Parallel) -> tuple:
    return ("(", p.left, " | ", p.right, ")")


def _frag_match(p: Match) -> tuple:
    return ("[", p.left, " = ", p.right, "] ", p.continuation)


def _frag_addrmatch(p: AddrMatch) -> tuple:
    return ("[", p.left, " =~ ", p.right, "] ", p.continuation)


def _frag_replication(p: Replication) -> tuple:
    return ("!(", p.body, ")")


def _frag_case(p: Case) -> tuple:
    triples = [("v", b.ident, b.uid) for b in p.binders]
    parts: list = [_PreNumber(t) for t in triples]
    parts += ["case ", p.scrutinee, " of {"]
    for i, triple in enumerate(triples):
        if i:
            parts.append(", ")
        parts.append(triple)
    parts += ["}", p.key, " in ", p.continuation]
    return tuple(parts)


def _frag_intcase(p: IntCase) -> tuple:
    binder = ("v", p.binder.ident, p.binder.uid)
    return (
        _PreNumber(binder),
        "case ",
        p.scrutinee,
        " of zero: ",
        p.zero_branch,
        " suc(",
        binder,
        "): ",
        p.succ_branch,
    )


def _frag_split(p: Split) -> tuple:
    first = ("v", p.first.ident, p.first.uid)
    second = ("v", p.second.ident, p.second.uid)
    return ("let (", first, ", ", second, ") = ", p.scrutinee, " in ", p.continuation)


_FRAGMENT_BUILDERS: dict[type, object] = {
    Name: _frag_name,
    Var: _frag_var,
    Pair: _frag_pair,
    Zero: _frag_zero,
    Succ: _frag_succ,
    SharedEnc: _frag_enc,
    Localized: _frag_localized,
    At: _frag_at,
    Channel: _frag_channel,
    Nil: _frag_nil,
    Output: _frag_output,
    Input: _frag_input,
    Restriction: _frag_restriction,
    Parallel: _frag_parallel,
    Match: _frag_match,
    AddrMatch: _frag_addrmatch,
    Replication: _frag_replication,
    Case: _frag_case,
    IntCase: _frag_intcase,
    Split: _frag_split,
}


def _flatten(node) -> list:
    """The flattened token list of an interned subtree (memoized).

    Tokens are ``str`` literals (adjacent literals merged at build
    time), identity triples and ``_PreNumber`` markers, in the pretty
    printer's left-to-right output order.  Child references in the
    one-level recipes are expanded recursively, so flattening a
    transition target splices the cached lists of every shared subtree
    with C-level copies — only the rewritten spine builds new lists.
    """
    flat = _flats.get(id(node))
    if flat is not None:
        return flat
    out: list = []
    for part in _FRAGMENT_BUILDERS[node.__class__](node):
        cls = part.__class__
        if cls is str:
            if out and out[-1].__class__ is str:
                out[-1] += part
            else:
                out.append(part)
        elif cls is tuple or cls is _PreNumber:
            out.append(part)
        else:
            child = _flatten(part)
            if child and out and out[-1].__class__ is str and child[0].__class__ is str:
                out[-1] += child[0]
                out.extend(child[1:])
            else:
                out.extend(child)
    _flats[id(node)] = out
    return out


def _flatten_raw(node) -> list:
    """Non-memoized :func:`_flatten` for uninterned trees.

    Used by the disabled-cache symmetry path, which must produce the
    same token stream without touching the (cleared) arena memos.
    """
    out: list = []
    for part in _FRAGMENT_BUILDERS[node.__class__](node):
        cls = part.__class__
        if cls is str:
            if out and out[-1].__class__ is str:
                out[-1] += part
            else:
                out.append(part)
        elif cls is tuple or cls is _PreNumber:
            out.append(part)
        else:
            child = _flatten_raw(part)
            if child and out and out[-1].__class__ is str and child[0].__class__ is str:
                out[-1] += child[0]
                out.extend(child[1:])
            else:
                out.extend(child)
    return out


def _tokens(node, caching: bool) -> list:
    return _flatten(node) if caching else _flatten_raw(node)


def _render(tokens) -> str:
    """Render a token stream (one linear pass).

    Identity triples are numbered in first-occurrence order with one
    shared counter across kinds — byte-identical to ``canon_id``.
    """
    # Values are the *rendered* ids ("v3", "n7"): repeat occurrences —
    # the bulk of the tokens — cost one dict hit, no formatting.
    renumber: dict[tuple, str] = {}
    out: list[str] = []
    for item in tokens:
        cls = item.__class__
        if cls is str:
            out.append(item)
        elif cls is tuple:
            rendered = renumber.get(item)
            if rendered is None:
                rendered = renumber[item] = f"{item[0]}{len(renumber) + 1}"
            out.append(rendered)
        else:  # _PreNumber
            key = item.key
            if key not in renumber:
                renumber[key] = f"{key[0]}{len(renumber) + 1}"
    return "".join(out)


def _assemble(root) -> str:
    """Render an interned tree from its token list."""
    return _render(_flatten(root))


# ----------------------------------------------------------------------
# Symmetry canonicalization of replicated sessions
# ----------------------------------------------------------------------
#
# A ``!P`` that has unfolded k copies is a right-nested parallel chain
# ending in the replication template (the *spine*): copies sit in the
# chain's left slots, at locations h·1^i·0.  Two states that differ
# only by a permutation of such sibling copies — classic multi-session
# symmetry — are behaviourally interchangeable for every verdict the
# engine emits, *provided* nothing in the tree resolves addresses
# relative to tree positions and no role boundary runs through the
# spine.  The symmetric key renders the state with each eligible
# spine's slots sorted into a canonical order, rewriting the absolute
# creator locations baked into names so the rendered string is exactly
# the plain key of the permuted state.  Key equality therefore implies
# the states are related by a within-spine permutation with consistent
# creator renaming — a sound merge.  (Completeness is heuristic: a
# missed merge costs states, never verdicts.)

#: Matches every rendered absolute location, e.g. ``<||0||1||0>``.
#: Unambiguous in canonical output: uids render as ``n12``/``v3`` and
#: no other literal contains ``<||``.
_LOC_RE = re.compile(r"<(?:\|\|[01])+>")


def _parse_loc(rendered: str) -> tuple:
    return tuple(int(tag) for tag in rendered[1:-1].split("||")[1:])


#: Child fields per node class for the position-safety scan.  Classes
#: handled specially (Channel, SharedEnc, At, AddrMatch) are absent.
_SYM_CHILDREN: dict[type, tuple[str, ...]] = {
    Name: (),
    Var: (),
    Zero: (),
    Nil: (),
    Pair: ("first", "second"),
    Succ: ("term",),
    Localized: ("term",),
    Output: ("channel", "payload", "continuation"),
    Input: ("channel", "continuation"),
    Restriction: ("body",),
    Parallel: ("left", "right"),
    Match: ("left", "right", "continuation"),
    Replication: ("body",),
    Case: ("scrutinee", "key", "continuation"),
    IntCase: ("scrutinee", "zero_branch", "succ_branch"),
    Split: ("scrutinee", "continuation"),
}


def _sym_safe(node, memo: Optional[dict]) -> bool:
    """No position-relative constructs anywhere in the subtree.

    ``At`` terms, address matches, location variables and localized
    channels all resolve relative to absolute tree positions, so
    permuting siblings is only meaning-preserving in their absence.
    Plain creator locations (on names and localized values) are fine:
    the renderer rewrites them consistently with the permutation.
    """
    if memo is not None:
        hit = memo.get(id(node))
        if hit is not None:
            return hit
    cls = node.__class__
    if cls is At or cls is AddrMatch:
        ok = False
    elif cls is Channel:
        ok = node.index is None and _sym_safe(node.subject, memo)
    elif cls is SharedEnc:
        ok = all(_sym_safe(p, memo) for p in node.body) and _sym_safe(node.key, memo)
    else:
        fields = _SYM_CHILDREN.get(cls)
        ok = fields is not None and all(
            _sym_safe(getattr(node, f), memo) for f in fields
        )
    if memo is not None:
        memo[id(node)] = ok
    return ok


def _chain(node) -> Optional[tuple[list, object]]:
    """The right-nested parallel chain at ``node`` ending in a
    replication template, as ``(slots, template)`` — or ``None`` when
    the shape does not match or fewer than two copies have unfolded."""
    slots: list = []
    cur = node
    while cur.__class__ is Parallel:
        slots.append(cur.left)
        cur = cur.right
    if cur.__class__ is Replication and len(slots) >= 2:
        return slots, cur
    return None


def _spiny(node, memo: Optional[dict]) -> bool:
    """Does the subtree contain any candidate spine (through parallels)?"""
    if node.__class__ is not Parallel:
        return False
    if memo is not None:
        hit = memo.get(id(node))
        if hit is not None:
            return hit
    result = (
        _chain(node) is not None
        or _spiny(node.left, memo)
        or _spiny(node.right, memo)
    )
    if memo is not None:
        memo[id(node)] = result
    return result


def _role_gate(head: tuple, roles: tuple) -> bool:
    """No role location strictly inside the spine at ``head``.

    Sorting a spine that a role boundary runs through would conflate
    distinct roles (the composition tree is itself a right-leaning
    parallel chain).  A role *at* the head, or above it, is fine: then
    the whole spine belongs to one role.
    """
    n = len(head)
    return all(not (loc[:n] == head and loc != head) for loc, _label in roles)


def _blind(node, slot_pos: tuple, caching: bool) -> str:
    """The location-blind sort key of one spine slot.

    The slot is rendered with locally renumbered identities; locations
    under the slot's own position are re-based onto a placeholder so
    structurally identical copies at different slots compare equal.
    Foreign locations (names received from elsewhere) stay verbatim.
    """
    key = (id(node), slot_pos)
    if caching:
        hit = _blind_memo.get(key)
        if hit is not None:
            return hit
    n = len(slot_pos)

    def debase(match: "re.Match[str]") -> str:
        loc = _parse_loc(match.group(0))
        if loc[:n] == slot_pos:
            return "<*" + "".join(f"||{t}" for t in loc[n:]) + ">"
        return match.group(0)

    rendered = _LOC_RE.sub(debase, _render(_tokens(node, caching)))
    if caching:
        _blind_memo[key] = rendered
    return rendered


def _sym_emit(
    node,
    old_pos: tuple,
    new_pos: tuple,
    roles: tuple,
    moves: dict,
    out: list,
    caching: bool,
) -> None:
    """Emit the symmetry-reordered token stream of ``node``.

    ``old_pos`` is the node's position in the original tree (where the
    creator locations baked into its names point), ``new_pos`` its
    position in the reordered rendering; every divergence is recorded
    in ``moves`` (old absolute prefix -> new absolute prefix) for the
    final location rewrite.
    """
    global _sym_reorders
    if node.__class__ is Parallel:
        chain = _chain(node)
        if chain is not None and _role_gate(old_pos, roles):
            slots, template = chain
            k = len(slots)
            old_slots = [old_pos + (1,) * i + (0,) for i in range(k)]
            new_slots = [new_pos + (1,) * i + (0,) for i in range(k)]
            order = sorted(
                range(k), key=lambda i: _blind(slots[i], old_slots[i], caching)
            )
            if order != list(range(k)):
                _sym_reorders += 1
            for j, i in enumerate(order):
                out.append("(")
                if old_slots[i] != new_slots[j]:
                    moves[old_slots[i]] = new_slots[j]
                _sym_emit(
                    slots[i], old_slots[i], new_slots[j], roles, moves, out, caching
                )
                out.append(" | ")
            if old_pos != new_pos:
                moves[old_pos + (1,) * k] = new_pos + (1,) * k
            out.extend(_tokens(template, caching))
            out.append(")" * k)
            return
        if _spiny(node, _spiny_memo if caching else None):
            out.append("(")
            _sym_emit(
                node.left, old_pos + (0,), new_pos + (0,), roles, moves, out, caching
            )
            out.append(" | ")
            _sym_emit(
                node.right, old_pos + (1,), new_pos + (1,), roles, moves, out, caching
            )
            out.append(")")
            return
    out.extend(_tokens(node, caching))


def _sym_key(node, roles: tuple, caching: bool) -> str:
    """The symmetry-canonical key of a tree (see section comment)."""
    if not _sym_safe(node, _sym_safe_memo if caching else None) or not _spiny(
        node, _spiny_memo if caching else None
    ):
        return _render(_tokens(node, caching))
    moves: dict = {}
    out: list = []
    _sym_emit(node, (), (), roles, moves, out, caching)
    rendered = _render(out)
    if not moves:
        return rendered
    # Longest-prefix-first lookup, done with one exact dict probe per
    # distinct move length (spine slots share only a few lengths) and a
    # per-call memo so each distinct location string is resolved once.
    lengths = sorted({len(old) for old in moves}, reverse=True)
    resolved: dict[str, str] = {}

    def rebase(match: "re.Match[str]") -> str:
        text = match.group(0)
        hit = resolved.get(text)
        if hit is None:
            loc = _parse_loc(text)
            hit = text
            for n in lengths:
                new = moves.get(loc[:n])
                if new is not None:
                    hit = location_str(new + loc[n:])
                    break
            resolved[text] = hit
        return hit

    return _LOC_RE.sub(rebase, rendered)


def sym_reorder_count() -> int:
    """Monotonic count of spine reorderings performed by symmetric key
    assembly — the ``reduction.sym_merge`` metric's raw counter."""
    return _sym_reorders


# ----------------------------------------------------------------------
# State keys
# ----------------------------------------------------------------------


def state_key(root: Process, roles: tuple = ()) -> str:
    """The alpha-invariant canonical key of a state's process tree.

    With ``roles`` empty (or symmetry off) this is byte-identical to
    ``canonical_process(root)``; with the cache enabled the tree is
    interned first and the key is memoized per interned root.  When
    symmetry canonicalization is on and the caller supplies the
    system's roles, replicated sibling sessions are sorted into a
    canonical order first, merging states that differ only by a
    permutation of structurally identical copies.
    """
    global _canonical_hits, _canonical_misses
    if not _enabled:
        if _symmetry and roles:
            return _sym_key(root, roles, caching=False)
        return canonical_process(root)
    node = _table.process(root)
    if _symmetry and roles:
        memo_key = (id(node), roles)
        key = _sym_keys.get(memo_key)
        if key is not None:
            _canonical_hits += 1
            return key
        _canonical_misses += 1
        key = _sym_keys[memo_key] = _sym_key(node, roles, caching=True)
        if len(_table) > MAX_INTERNED_NODES:
            clear_caches()
        return key
    key = _keys.get(id(node))
    if key is not None:
        _canonical_hits += 1
        return key
    _canonical_misses += 1
    key = _keys[id(node)] = _assemble(node)
    if len(_table) > MAX_INTERNED_NODES:
        clear_caches()
    return key


# ----------------------------------------------------------------------
# Successor cache
# ----------------------------------------------------------------------


def successor_key(system) -> Optional[tuple]:
    """Cache handle for ``successors(system)`` (``None`` when disabled).

    ``private`` and ``roles`` are part of the key because equal process
    trees can belong to systems with different private-name sets, and
    verdicts depend on them.  Keying on the *identity* of the interned
    root means a hit hands back transitions whose uids are exactly
    those of the querying state — not merely alpha-equivalent ones.
    The handle carries the interned root alongside the key so a stored
    entry keeps it alive: a live entry's ``id`` can never be recycled
    onto a different node.
    """
    if not _enabled:
        return None
    node = _table.process(system.root)
    return ((id(node), system.private, system.roles), node)


def successor_get(handle: tuple):
    """Cached successor batch for ``handle``, or ``None``.

    The payload is opaque to this module (an immutable
    :class:`~repro.semantics.transitions.StepBatch`); callers must not
    mutate it.
    """
    global _successor_hits, _successor_misses
    key, _node = handle
    entry = _successors.get(key)
    if entry is None:
        _successor_misses += 1
        return None
    _successors.move_to_end(key)
    _successor_hits += 1
    return entry[1]


def successor_put(handle: tuple, batch) -> None:
    """Record the computed successor batch of one state (LRU-bounded)."""
    key, node = handle
    _successors[key] = (node, batch)
    _successors.move_to_end(key)
    while len(_successors) > SUCCESSOR_CACHE_SIZE:
        _successors.popitem(last=False)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------


def metrics_snapshot() -> tuple[int, int, int, int]:
    """Monotonic cache counters ``(canonical hit/miss, successor
    hit/miss)`` — snapshot before a run, diff after, publish the delta."""
    return (_canonical_hits, _canonical_misses, _successor_hits, _successor_misses)


_METRIC_NAMES = ("canonical.hit", "canonical.miss", "successor.hit", "successor.miss")


def publish_cache_metrics(metrics, before: tuple[int, int, int, int]) -> None:
    """Publish counter deltas since ``before`` to a metrics registry."""
    after = metrics_snapshot()
    for name, b, a in zip(_METRIC_NAMES, before, after):
        if a > b:
            metrics.inc(name, a - b)
    metrics.set_gauge("canonical.interned", interned_size())
