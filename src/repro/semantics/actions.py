"""Actions and transitions of the proved labelled semantics.

The paper's semantics labels transitions with (a portion of) their
deduction tree — the *proved* semantics of Degano and Priami — from
which relative addresses are read off.  The parallel-composition tags
accumulated by a deduction are exactly the absolute locations of the
acting prefixes, so a :class:`Comm` label carries the locations of both
participants: that *is* the proof part the paper needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.addresses import Location, RelativeAddress
from repro.core.terms import Name, Term

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.semantics.system import System


@dataclass(frozen=True, slots=True)
class Comm:
    """A silent (tau) communication between two located prefixes.

    Attributes:
        channel: the underlying channel name.
        value: the transmitted (localized) value.
        sender: absolute location of the output prefix.
        receiver: absolute location of the input prefix.
    """

    channel: Name
    value: Term
    sender: Location
    receiver: Location

    def sender_address(self) -> RelativeAddress:
        """Address of the sender relative to the receiver — what the
        paper's machine binds a receiver-side location variable to."""
        return RelativeAddress.between(observer=self.receiver, target=self.sender)

    def receiver_address(self) -> RelativeAddress:
        """Address of the receiver relative to the sender."""
        return RelativeAddress.between(observer=self.sender, target=self.receiver)


@dataclass(frozen=True, slots=True)
class Transition:
    """One step of the machine: ``source --action--> target``."""

    action: Comm
    target: "System"

    def describe(self, source: "System") -> str:
        """One-line narration of the step, using the source's roles.

        Channels print by their base spelling (the unique ids of
        restricted channels are machine detail); payload values keep
        their ids so that distinct nonces/messages stay distinguishable.
        """
        from repro.syntax.pretty import render_term

        sender = source.role_at(self.action.sender)
        receiver = source.role_at(self.action.receiver)
        value = render_term(self.action.value)
        return f"{sender} -> {receiver} on {self.action.channel.base} : {value}"


@dataclass(frozen=True, slots=True)
class Barb:
    """An observable commitment ``m`` (input) or ``m-bar`` (output).

    A process *exhibits* a barb when one of its leaves is ready to do an
    I/O action on a non-private channel (Section 4.1).
    """

    channel: Name
    is_output: bool

    def render(self) -> str:
        return f"{self.channel.render()}^bar" if self.is_output else self.channel.render()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()


def output_barb(channel: Name) -> Barb:
    return Barb(channel, is_output=True)


def input_barb(channel: Name) -> Barb:
    return Barb(channel, is_output=False)


@dataclass(frozen=True, slots=True)
class PendingAction:
    """An enabled prefix of one leaf, before synchronization.

    ``wrap`` rebuilds the subtree replacing the whole leaf once the
    (substituted) continuation of the prefix is known — this is how
    replication unfolding, matches and decryptions performed on the way
    to the prefix are folded into a single transition, exactly as the
    SOS rules compose.
    """

    is_output: bool
    channel_subject: Name
    index: object  # ChannelIndex; kept loose to avoid an import cycle
    act_loc: Location
    leaf_loc: Location
    continuation: object  # Process
    wrap: object  # Callable[[Process], Process]
    payload: Optional[Term] = None  # outputs only
    binder: object = None  # Var; inputs only
    new_private: frozenset[Name] = frozenset()

    def barb(self) -> Barb:
        return Barb(self.channel_subject, self.is_output)
