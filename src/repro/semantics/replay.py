"""Independent witness replay — the deliberately small trusted core.

A :class:`~repro.analysis.witness.Witness` claims that a concrete run
from the initial system ends in a state where the recorded property is
violated.  This module re-derives that claim from scratch:

* the initial system is rebuilt from the sealed recipe, not taken from
  the producer;
* every step is matched against the **unreduced, uncached** transition
  relation — replay runs inside :func:`reduction.suspended` (mode
  ``none``: partial-order reduction and symmetry merging off, which
  makes ``successors``/``env_successors`` *be* the raw full relation)
  with the canonical state cache disabled;
* the violated property is re-checked at the end of the trace by the
  minimal predicates below, which share no code with the verdict
  producers in :mod:`repro.analysis`.

Because restricted-name uids are process-local, steps are matched by
uid-free :func:`~repro.analysis.witness.term_shape` signatures; shape
ambiguity is resolved by a bounded backtracking search over the step
sequence.  A failed replay is a certification failure
(:class:`CertificationError` at the enforcement layer), never a silent
wrong verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Union

from repro.core.addresses import is_prefix
from repro.core.errors import ReproError, TermError
from repro.core.terms import Name, localize, origin
from repro.semantics import canonical, reduction
from repro.semantics.actions import Comm, output_barb
from repro.semantics.transitions import pending_actions, successors


class CertificationError(ReproError):
    """A violation verdict could not be independently certified."""


#: Default cap on transition expansions during one replay; a witness is
#: a straight-line trace, so this is generous slack for backtracking.
DEFAULT_MAX_NODES = 50_000


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one independent replay."""

    ok: bool
    kind: str = ""
    steps: int = 0
    matched: int = 0
    reason: Optional[str] = None

    def describe(self) -> str:
        if self.ok:
            return (
                f"witness certified: {self.kind} violation re-derived over "
                f"{self.steps} unreduced step(s)"
            )
        return f"witness rejected: {self.reason}"

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "kind": self.kind,
            "steps": self.steps,
            "matched": self.matched,
            "reason": self.reason,
        }


def _shape_matches(recorded: Any, action: Comm) -> bool:
    from repro.analysis.witness import term_shape

    return (
        term_shape(action.channel) == recorded["ch"]
        and term_shape(action.value) == recorded["val"]
        and list(action.sender) == list(recorded["s"])
        and list(action.receiver) == list(recorded["r"])
    )


class _Exhausted(Exception):
    """Replay search exceeded its node budget."""


class _Replayer:
    """Bounded backtracking matcher over the raw transition relation."""

    def __init__(self, setup, steps: Sequence[Mapping], max_nodes: int) -> None:
        self.setup = setup
        self.steps = steps
        self.remaining = max_nodes
        self.deepest = 0

    def _spend(self) -> None:
        self.remaining -= 1
        if self.remaining < 0:
            raise _Exhausted()

    def run(self):
        """Return (final state, matched plain actions) or None."""
        if self.setup.mode == "env":
            return self._match_env(self.setup.initial, 0, ())
        return self._match_system(self.setup.initial, 0, ())

    def _match_system(self, state, index: int, actions: tuple):
        self.deepest = max(self.deepest, index)
        if index == len(self.steps):
            return state, actions
        recorded = self.steps[index]
        if "env" in recorded:
            return None  # env step inside a plain-semantics witness
        for transition in successors(state):
            self._spend()
            if not _shape_matches(recorded, transition.action):
                continue
            found = self._match_system(
                transition.target, index + 1, (*actions, transition.action)
            )
            if found is not None:
                return found
        return None

    def _match_env(self, state, index: int, actions: tuple):
        from repro.analysis.environment import env_successors

        self.deepest = max(self.deepest, index)
        if index == len(self.steps):
            return state, actions
        recorded = self.steps[index]
        kind = recorded.get("env")
        if kind is None:
            return None  # plain step inside an environment witness
        for step in env_successors(
            state,
            self.setup.env_loc,
            self.setup.channels,
            self.setup.synth_depth,
            tau_visited=None,
        ):
            self._spend()
            if step.kind != kind or not _shape_matches(recorded, step.action):
                continue
            found = self._match_env(step.target, index + 1, (*actions, step.action))
            if found is not None:
                return found
        return None


# ----------------------------------------------------------------------
# Final property checks — minimal, producer-independent
# ----------------------------------------------------------------------


def _observe_escapes(state, observe_base: str):
    """(value, act_loc) for each activated observation in ``state``."""
    escapes = []
    for action in pending_actions(state):
        if not action.is_output or action.channel_subject.base != observe_base:
            continue
        try:
            value = localize(action.payload, action.act_loc)
        except TermError:
            continue
        escapes.append((value, action.act_loc))
    return escapes


def _final_secrecy(witness, state, actions) -> Optional[str]:
    from repro.analysis.knowledge import Knowledge

    spy = witness.prop.get("spy", "E")
    secret = witness.prop.get("secret")
    try:
        spy_loc = state.location_of(spy)
    except ReproError as err:
        return f"cannot locate spy {spy!r}: {err}"
    heard = tuple(
        action.value for action in actions if is_prefix(spy_loc, action.receiver)
    )
    knowledge = Knowledge.from_terms(heard)
    for name in state.private:
        if name.base == secret and name.uid is not None and knowledge.can_derive(name):
            return None
    return f"final state does not leak a secret named {secret!r} to {spy!r}"


def _final_authentication(witness, state, actions) -> Optional[str]:
    sender = witness.prop.get("sender")
    observe = witness.prop.get("observe", "observe")
    try:
        sender_loc = state.location_of(sender)
    except ReproError as err:
        return f"cannot locate sender {sender!r}: {err}"
    for value, _ in _observe_escapes(state, observe):
        creator = origin(value)
        if creator is None or not is_prefix(sender_loc, creator):
            return None
    return f"final state holds no observation foreign to sender {sender!r}"


def _final_freshness(witness, state, actions) -> Optional[str]:
    observe = witness.prop.get("observe", "observe")
    per_creator: dict = {}
    for value, act_loc in _observe_escapes(state, observe):
        creator = origin(value)
        if creator is None:
            continue
        previous = per_creator.get(creator)
        if previous is not None and previous != act_loc:
            return None
        per_creator[creator] = act_loc
    return "final state holds no replayed observation"


def _final_env_secrecy(witness, env_state, actions) -> Optional[str]:
    secret = witness.prop.get("secret")
    for name in env_state.system.private:
        if name.base == secret and env_state.knowledge.can_derive(name):
            return None
    return f"final environment knowledge does not derive a secret named {secret!r}"


def _final_attack(witness, state, actions) -> Optional[str]:
    barb = witness.prop.get("barb")
    if not isinstance(barb, str):
        return f"attack witness names no barb channel: {barb!r}"
    from repro.equivalence.barbs import exhibits

    if exhibits(state, output_barb(Name(barb))):
        return None
    return f"final state does not exhibit the success barb {barb!r}"


_FINAL_CHECKS = {
    "secrecy": _final_secrecy,
    "authentication": _final_authentication,
    "freshness": _final_freshness,
    "attack": _final_attack,
}


def _final_env(witness, env_state, actions) -> Optional[str]:
    if witness.kind == "env-secrecy":
        return _final_env_secrecy(witness, env_state, actions)
    if witness.kind == "env-authentication":
        return _final_authentication(witness, env_state.system, actions)
    if witness.kind == "env-freshness":
        return _final_freshness(witness, env_state.system, actions)
    return f"unknown environment witness kind {witness.kind!r}"


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def replay_witness(
    data: Union[Mapping, "Witness"], max_nodes: int = DEFAULT_MAX_NODES
) -> ReplayReport:
    """Independently validate a witness end to end.

    Validates structure, checksum, and engine stamp; rebuilds the
    initial system from the sealed recipe; re-derives every step against
    the raw transition relation (reduction suspended, state cache
    disabled); and re-checks the violated property at the trace end.
    Never raises for an invalid witness — the report says why.
    """
    from repro.analysis.witness import Witness, WitnessError, engine_version

    try:
        witness = data if isinstance(data, Witness) else Witness.from_json(data)
    except WitnessError as err:
        return ReplayReport(ok=False, reason=str(err))
    report = ReplayReport(ok=False, kind=witness.kind, steps=len(witness.steps))
    if not witness.verify_checksum():
        return _fail(report, "checksum mismatch: witness payload was altered")
    if witness.engine != engine_version():
        return _fail(
            report,
            f"engine mismatch: witness from {witness.engine!r}, "
            f"this engine is {engine_version()!r}",
        )
    try:
        from repro.analysis.witness import rebuild_initial

        setup = rebuild_initial(witness)
    except WitnessError as err:
        return _fail(report, str(err))
    if (setup.mode == "env") != witness.kind.startswith("env-"):
        return _fail(report, "witness kind does not match its system recipe mode")

    replayer = _Replayer(setup, witness.steps, max_nodes)
    cache_was_enabled = canonical.set_cache_enabled(False)
    try:
        with reduction.suspended():
            try:
                found = replayer.run()
            except _Exhausted:
                return _fail(
                    report,
                    f"replay budget exhausted after matching "
                    f"{replayer.deepest}/{len(witness.steps)} step(s)",
                    matched=replayer.deepest,
                )
            if found is None:
                return _fail(
                    report,
                    f"step {replayer.deepest + 1}/{len(witness.steps)} has no "
                    f"matching unreduced transition",
                    matched=replayer.deepest,
                )
            final_state, actions = found
            if setup.mode == "env":
                failure = _final_env(witness, final_state, actions)
            else:
                check = _FINAL_CHECKS.get(witness.kind)
                if check is None:
                    failure = f"unknown witness kind {witness.kind!r}"
                else:
                    failure = check(witness, final_state, actions)
    finally:
        canonical.set_cache_enabled(cache_was_enabled)
    if failure is not None:
        return _fail(report, failure, matched=len(witness.steps))
    return ReplayReport(
        ok=True,
        kind=witness.kind,
        steps=len(witness.steps),
        matched=len(witness.steps),
    )


def _fail(report: ReplayReport, reason: str, matched: int = 0) -> ReplayReport:
    return ReplayReport(
        ok=False,
        kind=report.kind,
        steps=report.steps,
        matched=matched,
        reason=reason,
    )


def replay_result(result: Mapping, max_nodes: int = DEFAULT_MAX_NODES) -> ReplayReport:
    """Replay the witness attached to a verdict result payload."""
    witness = result.get("witness")
    if witness is None:
        return ReplayReport(
            ok=False, reason="violation verdict carries no witness to replay"
        )
    return replay_witness(witness, max_nodes=max_nodes)
