"""Diagnostics over explored transition systems.

Inspection utilities for the graphs produced by
:func:`repro.semantics.lts.explore`:

* :func:`statistics` — size, branching, depth and deadlock metrics
  (used by the ablation benchmarks and handy when tuning budgets);
* :func:`to_networkx` — the graph as a ``networkx.DiGraph`` for any
  further analysis (condensation, path queries, ...);
* :func:`to_dot` — Graphviz export with role-narrated edge labels, for
  eyeballing small protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from repro.runtime.exhaustion import Exhaustion
from repro.semantics.lts import Graph
from repro.semantics.system import System


@dataclass(frozen=True, slots=True)
class GraphStatistics:
    """Shape metrics of an explored fragment."""

    states: int
    transitions: int
    deadlocks: int
    max_out_degree: int
    depth: int  # eccentricity of the initial state (longest shortest path)
    strongly_connected_components: int
    truncated: bool
    exhaustion: Optional[Exhaustion] = None

    def describe(self) -> str:
        if self.exhaustion is not None:
            qualifier = f" (truncated: {'+'.join(self.exhaustion.reasons)})"
        elif self.truncated:
            qualifier = " (truncated)"
        else:
            qualifier = ""
        return (
            f"{self.states} states, {self.transitions} transitions, "
            f"{self.deadlocks} deadlocks, max branching {self.max_out_degree}, "
            f"depth {self.depth}, {self.strongly_connected_components} SCCs"
            + qualifier
        )


def to_networkx(graph: Graph) -> nx.DiGraph:
    """The explored fragment as a ``networkx`` directed graph.

    Node keys are canonical state keys; each edge carries the
    :class:`~repro.semantics.actions.Transition` under ``"transition"``.
    """
    g = nx.DiGraph()
    g.add_nodes_from(graph.states)
    for source, out in graph.edges.items():
        for transition, target in out:
            g.add_edge(source, target, transition=transition)
    return g


def statistics(graph: Graph) -> GraphStatistics:
    """Compute shape metrics of an explored fragment."""
    g = to_networkx(graph)
    if graph.initial in g:
        lengths = nx.single_source_shortest_path_length(g, graph.initial)
        depth = max(lengths.values(), default=0)
    else:  # pragma: no cover - the initial state is always present
        depth = 0
    out_degrees = [deg for _, deg in g.out_degree()]
    return GraphStatistics(
        states=graph.state_count(),
        transitions=graph.transition_count(),
        deadlocks=len(graph.deadlocks()),
        max_out_degree=max(out_degrees, default=0),
        depth=depth,
        strongly_connected_components=nx.number_strongly_connected_components(g),
        truncated=graph.truncated,
        exhaustion=graph.exhaustion,
    )


def to_dot(graph: Graph, max_label_length: int = 60) -> str:
    """Render the explored fragment in Graphviz dot syntax.

    States are numbered in insertion (BFS) order; the initial state is
    doubled.  Edge labels narrate the communication using the roles of
    the source state.
    """
    index = {key: i for i, key in enumerate(graph.states)}
    lines = ["digraph lts {", "  rankdir=LR;", '  node [shape=circle, fontsize=10];']
    for key, i in index.items():
        shape = "doublecircle" if key == graph.initial else "circle"
        lines.append(f'  s{i} [shape={shape}, label="s{i}"];')
    for source, out in graph.edges.items():
        state: System = graph.states[source]
        for transition, target in out:
            label = transition.describe(state)
            if len(label) > max_label_length:
                label = label[: max_label_length - 3] + "..."
            label = label.replace('"', "'")
            lines.append(f'  s{index[source]} -> s{index[target]} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
