"""The transition relation of the calculus with authentication primitives.

Given a :class:`~repro.semantics.system.System`, :func:`successors`
computes every silent transition, implementing the paper's rules:

* **communication** — an output and an input on the same channel in two
  different leaves synchronize, *provided the localization indexes
  admit it*: a channel indexed with a relative address only talks to the
  partner at exactly that address (partner authentication), and a
  channel indexed with a location variable talks to anyone but binds the
  variable to the partner's location for the rest of the session;
* **message localization** — the transmitted value is localized at the
  sender if it is a freshly-built composite, while forwarded values keep
  their original creator (message authentication).  Because the machine
  stores absolute creator locations, the paper's address-composition on
  forwarding is performed implicitly and exactly;
* **matching / address matching / decryption / pair splitting** — these
  are evaluated on the way to a prefix, so a transition may discharge
  any number of them, as in the SOS where ``[M = M]P`` has the actions
  of ``P``;
* **replication** — ``!P`` acts by unfolding one freshened copy whose
  restricted names receive fresh identities created at the copy's
  location; the residual template is kept to the right, so existing
  locations never move (the tree only grows at leaves).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.core.addresses import AddressError, Location, RelativeAddress
from repro.core.errors import SemanticsError
from repro.core.processes import (
    AddrMatch,
    Case,
    Input,
    IntCase,
    LocVar,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
    Split,
    replace_leaves,
)
from repro.core.substitution import freshen_bound, instantiate_locvar, subst
from repro.core.terms import (
    At,
    Localized,
    Name,
    Pair,
    SharedEnc,
    Term,
    localize,
    origin,
    payload,
    values_equal,
)
from repro.runtime.faults import SUCCESSORS, fault_hook
from repro.semantics import canonical
from repro.semantics.actions import Comm, PendingAction, Transition
from repro.semantics.guards import addr_match_passes, decrypt, int_case, match_passes, split_pair
from repro.semantics.normalize import normalize
from repro.semantics.system import System, instantiate_names

# ----------------------------------------------------------------------
# Commitments: the enabled prefixes of each leaf
# ----------------------------------------------------------------------


def _identity(p: Process) -> Process:
    return p


def commitments(
    proc: Process,
    act_loc: Location,
    leaf_loc: Location,
    embed: Callable[[Process], Process] = _identity,
    new_private: frozenset[Name] = frozenset(),
) -> Iterator[PendingAction]:
    """Enumerate the enabled prefixes reachable inside one leaf.

    ``embed`` maps the process that will replace the *currently examined*
    subterm back to the process replacing the whole leaf; it accumulates
    the surrounding structure created by replication unfolding and by
    parallel compositions inside an unfolded copy.
    """
    if isinstance(proc, Nil):
        return
    if isinstance(proc, Output):
        subject = payload(proc.channel.subject)
        if isinstance(subject, Name):
            yield PendingAction(
                is_output=True,
                channel_subject=subject,
                index=proc.channel.index,
                act_loc=act_loc,
                leaf_loc=leaf_loc,
                continuation=proc.continuation,
                wrap=embed,
                payload=proc.payload,
                new_private=new_private,
            )
        return
    if isinstance(proc, Input):
        subject = payload(proc.channel.subject)
        if isinstance(subject, Name):
            yield PendingAction(
                is_output=False,
                channel_subject=subject,
                index=proc.channel.index,
                act_loc=act_loc,
                leaf_loc=leaf_loc,
                continuation=proc.continuation,
                wrap=embed,
                binder=proc.binder,
                new_private=new_private,
            )
        return
    if isinstance(proc, Match):
        if match_passes(proc.left, proc.right, act_loc):
            yield from commitments(proc.continuation, act_loc, leaf_loc, embed, new_private)
        return
    if isinstance(proc, AddrMatch):
        if addr_match_passes(proc.left, proc.right, act_loc):
            yield from commitments(proc.continuation, act_loc, leaf_loc, embed, new_private)
        return
    if isinstance(proc, Case):
        parts = decrypt(proc.scrutinee, proc.key, len(proc.binders))
        if parts is not None:
            opened = subst(proc.continuation, dict(zip(proc.binders, parts)))
            yield from commitments(opened, act_loc, leaf_loc, embed, new_private)
        return
    if isinstance(proc, Split):
        parts = split_pair(proc.scrutinee)
        if parts is not None:
            opened = subst(proc.continuation, {proc.first: parts[0], proc.second: parts[1]})
            yield from commitments(opened, act_loc, leaf_loc, embed, new_private)
        return
    if isinstance(proc, IntCase):
        branch = int_case(proc.scrutinee)
        if branch is not None:
            kind, inner = branch
            if kind == "zero":
                chosen = proc.zero_branch
            else:
                chosen = subst(proc.succ_branch, {proc.binder: inner})
            yield from commitments(chosen, act_loc, leaf_loc, embed, new_private)
        return
    if isinstance(proc, Replication):
        # !P acts as one freshened copy in parallel with the template:
        # the copy goes to the left (location .0), the template to the
        # right (.1), so every pre-existing location stays valid.
        template = proc
        copy = freshen_bound(proc.body)
        copy, created = instantiate_names(copy, at=act_loc + (0,))

        def unfold_embed(
            k: Process, _embed: Callable[[Process], Process] = embed
        ) -> Process:
            return _embed(Parallel(k, template))

        yield from commitments(
            copy, act_loc + (0,), leaf_loc, unfold_embed, new_private | created
        )
        return
    if isinstance(proc, Parallel):
        # Parallel structure inside an unfolded copy: recurse on both
        # branches, keeping the sibling intact in the rebuilt subtree.
        left, right = proc.left, proc.right

        def left_embed(k: Process, _embed=embed, _right=right) -> Process:
            return _embed(Parallel(k, _right))

        def right_embed(k: Process, _embed=embed, _left=left) -> Process:
            return _embed(Parallel(_left, k))

        yield from commitments(left, act_loc + (0,), leaf_loc, left_embed, new_private)
        yield from commitments(right, act_loc + (1,), leaf_loc, right_embed, new_private)
        return
    if isinstance(proc, Restriction):
        # Restrictions are erased at instantiation; reaching one here
        # means a caller skipped instantiation.
        raise SemanticsError(
            "live restriction encountered during commitment enumeration; "
            "systems must be built with repro.semantics.system.instantiate"
        )
    raise SemanticsError(f"unknown process {proc!r}")


def pending_actions(system: System) -> list[PendingAction]:
    """All enabled prefixes of the system, leaf by leaf."""
    actions: list[PendingAction] = []
    for loc, leaf in system.leaves():
        actions.extend(commitments(leaf, loc, loc))
    return actions


# ----------------------------------------------------------------------
# Synchronization
# ----------------------------------------------------------------------


def _admits(index: object, own_loc: Location, partner_loc: Location) -> bool:
    """Does a channel localization admit this partner?

    ``None`` admits anyone; a location variable admits anyone (it will
    be bound); an absolute location or a relative address admits exactly
    the partner it denotes.
    """
    if index is None or isinstance(index, LocVar):
        return True
    if isinstance(index, RelativeAddress):
        try:
            return index.resolve(own_loc) == partner_loc
        except AddressError:
            return False
    if isinstance(index, tuple):  # machine-level absolute location
        return index == partner_loc
    raise SemanticsError(f"unknown channel index {index!r}")


def synchronize(out: PendingAction, inp: PendingAction, system: System) -> Optional[Transition]:
    """Build the transition for one output/input pair, if admissible."""
    if out.leaf_loc == inp.leaf_loc:
        # Both prefixes come from the same leaf (a replication whose body
        # contains both ends).  Their rebuild closures would conflict;
        # the protocols the calculus targets never need this shape.
        return None
    if out.channel_subject != inp.channel_subject:
        return None
    if not _admits(out.index, out.act_loc, inp.act_loc):
        return None
    if not _admits(inp.index, inp.act_loc, out.act_loc):
        return None

    value = localize(out.payload, out.act_loc)

    sender_cont: Process = out.continuation
    if isinstance(out.index, LocVar):
        sender_cont = instantiate_locvar(sender_cont, out.index, inp.act_loc)
    receiver_cont: Process = subst(inp.continuation, {inp.binder: value})
    if isinstance(inp.index, LocVar):
        receiver_cont = instantiate_locvar(receiver_cont, inp.index, out.act_loc)

    new_root = replace_leaves(
        system.root,
        {out.leaf_loc: out.wrap(sender_cont), inp.leaf_loc: inp.wrap(receiver_cont)},
    )
    # Administrative normalization: discharge the guards the communication
    # just enabled and expose freshly-created parallel structure.
    new_root = normalize(new_root)
    target = system.with_root(new_root, out.new_private | inp.new_private)
    action = Comm(
        channel=out.channel_subject,
        value=value,
        sender=out.act_loc,
        receiver=inp.act_loc,
    )
    return Transition(action=action, target=target)


def successors(system: System) -> list[Transition]:
    """Every silent transition enabled in ``system``.

    Instrumented for fault injection (:mod:`repro.runtime.faults`): the
    hook is free unless a plan is active, and it fires *before* the
    successor-cache lookup so injected-fault schedules see the same
    call sequence whether or not the cache is enabled.

    Results are memoized per interned state (see
    :mod:`repro.semantics.canonical`): re-expanding a state the
    attacker enumeration or an escalated re-exploration has already
    visited returns the recorded transitions — uids included, since the
    cache keys on the identity of the hash-consed root.
    """
    fault_hook(SUCCESSORS)
    cache_handle = canonical.successor_key(system)
    if cache_handle is not None:
        cached = canonical.successor_get(cache_handle)
        if cached is not None:
            return cached
    actions = pending_actions(system)
    outputs = [a for a in actions if a.is_output]
    inputs = [a for a in actions if not a.is_output]
    transitions: list[Transition] = []
    for out in outputs:
        for inp in inputs:
            step = synchronize(out, inp, system)
            if step is not None:
                transitions.append(step)
    if cache_handle is not None:
        canonical.successor_put(cache_handle, transitions)
    return transitions
