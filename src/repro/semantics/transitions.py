"""The transition relation of the calculus with authentication primitives.

Given a :class:`~repro.semantics.system.System`, :func:`successors`
computes every silent transition, implementing the paper's rules:

* **communication** — an output and an input on the same channel in two
  different leaves synchronize, *provided the localization indexes
  admit it*: a channel indexed with a relative address only talks to the
  partner at exactly that address (partner authentication), and a
  channel indexed with a location variable talks to anyone but binds the
  variable to the partner's location for the rest of the session;
* **message localization** — the transmitted value is localized at the
  sender if it is a freshly-built composite, while forwarded values keep
  their original creator (message authentication).  Because the machine
  stores absolute creator locations, the paper's address-composition on
  forwarding is performed implicitly and exactly;
* **matching / address matching / decryption / pair splitting** — these
  are evaluated on the way to a prefix, so a transition may discharge
  any number of them, as in the SOS where ``[M = M]P`` has the actions
  of ``P``;
* **replication** — ``!P`` acts by unfolding one freshened copy whose
  restricted names receive fresh identities created at the copy's
  location; the residual template is kept to the right, so existing
  locations never move (the tree only grows at leaves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.core.addresses import AddressError, Location, RelativeAddress
from repro.core.errors import SemanticsError
from repro.core.processes import (
    AddrMatch,
    Case,
    Input,
    IntCase,
    LocVar,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
    Split,
    replace_leaves,
)
from repro.core.substitution import freshen_bound, instantiate_locvar, subst
from repro.core.terms import (
    At,
    Localized,
    Name,
    Pair,
    SharedEnc,
    Term,
    localize,
    origin,
    payload,
    values_equal,
)
from repro.runtime.faults import SUCCESSORS, fault_hook
from repro.semantics import canonical
from repro.semantics.actions import Comm, PendingAction, Transition
from repro.semantics.guards import addr_match_passes, decrypt, int_case, match_passes, split_pair
from repro.semantics.normalize import normalize
from repro.semantics.system import System, instantiate_names

# ----------------------------------------------------------------------
# Commitments: the enabled prefixes of each leaf
# ----------------------------------------------------------------------


def _identity(p: Process) -> Process:
    return p


def commitments(
    proc: Process,
    act_loc: Location,
    leaf_loc: Location,
    embed: Callable[[Process], Process] = _identity,
    new_private: frozenset[Name] = frozenset(),
) -> Iterator[PendingAction]:
    """Enumerate the enabled prefixes reachable inside one leaf.

    ``embed`` maps the process that will replace the *currently examined*
    subterm back to the process replacing the whole leaf; it accumulates
    the surrounding structure created by replication unfolding and by
    parallel compositions inside an unfolded copy.
    """
    if isinstance(proc, Nil):
        return
    if isinstance(proc, Output):
        subject = payload(proc.channel.subject)
        if isinstance(subject, Name):
            yield PendingAction(
                is_output=True,
                channel_subject=subject,
                index=proc.channel.index,
                act_loc=act_loc,
                leaf_loc=leaf_loc,
                continuation=proc.continuation,
                wrap=embed,
                payload=proc.payload,
                new_private=new_private,
            )
        return
    if isinstance(proc, Input):
        subject = payload(proc.channel.subject)
        if isinstance(subject, Name):
            yield PendingAction(
                is_output=False,
                channel_subject=subject,
                index=proc.channel.index,
                act_loc=act_loc,
                leaf_loc=leaf_loc,
                continuation=proc.continuation,
                wrap=embed,
                binder=proc.binder,
                new_private=new_private,
            )
        return
    if isinstance(proc, Match):
        if match_passes(proc.left, proc.right, act_loc):
            yield from commitments(proc.continuation, act_loc, leaf_loc, embed, new_private)
        return
    if isinstance(proc, AddrMatch):
        if addr_match_passes(proc.left, proc.right, act_loc):
            yield from commitments(proc.continuation, act_loc, leaf_loc, embed, new_private)
        return
    if isinstance(proc, Case):
        parts = decrypt(proc.scrutinee, proc.key, len(proc.binders))
        if parts is not None:
            opened = subst(proc.continuation, dict(zip(proc.binders, parts)))
            yield from commitments(opened, act_loc, leaf_loc, embed, new_private)
        return
    if isinstance(proc, Split):
        parts = split_pair(proc.scrutinee)
        if parts is not None:
            opened = subst(proc.continuation, {proc.first: parts[0], proc.second: parts[1]})
            yield from commitments(opened, act_loc, leaf_loc, embed, new_private)
        return
    if isinstance(proc, IntCase):
        branch = int_case(proc.scrutinee)
        if branch is not None:
            kind, inner = branch
            if kind == "zero":
                chosen = proc.zero_branch
            else:
                chosen = subst(proc.succ_branch, {proc.binder: inner})
            yield from commitments(chosen, act_loc, leaf_loc, embed, new_private)
        return
    if isinstance(proc, Replication):
        # !P acts as one freshened copy in parallel with the template:
        # the copy goes to the left (location .0), the template to the
        # right (.1), so every pre-existing location stays valid.
        template = proc
        copy = freshen_bound(proc.body)
        copy, created = instantiate_names(copy, at=act_loc + (0,))

        def unfold_embed(
            k: Process, _embed: Callable[[Process], Process] = embed
        ) -> Process:
            return _embed(Parallel(k, template))

        yield from commitments(
            copy, act_loc + (0,), leaf_loc, unfold_embed, new_private | created
        )
        return
    if isinstance(proc, Parallel):
        # Parallel structure inside an unfolded copy: recurse on both
        # branches, keeping the sibling intact in the rebuilt subtree.
        left, right = proc.left, proc.right

        def left_embed(k: Process, _embed=embed, _right=right) -> Process:
            return _embed(Parallel(k, _right))

        def right_embed(k: Process, _embed=embed, _left=left) -> Process:
            return _embed(Parallel(_left, k))

        yield from commitments(left, act_loc + (0,), leaf_loc, left_embed, new_private)
        yield from commitments(right, act_loc + (1,), leaf_loc, right_embed, new_private)
        return
    if isinstance(proc, Restriction):
        # Restrictions are erased at instantiation; reaching one here
        # means a caller skipped instantiation.
        raise SemanticsError(
            "live restriction encountered during commitment enumeration; "
            "systems must be built with repro.semantics.system.instantiate"
        )
    raise SemanticsError(f"unknown process {proc!r}")


def pending_actions(system: System) -> list[PendingAction]:
    """All enabled prefixes of the system, leaf by leaf."""
    actions: list[PendingAction] = []
    for loc, leaf in system.leaves():
        actions.extend(commitments(leaf, loc, loc))
    return actions


# ----------------------------------------------------------------------
# Synchronization
# ----------------------------------------------------------------------


def _admits(index: object, own_loc: Location, partner_loc: Location) -> bool:
    """Does a channel localization admit this partner?

    ``None`` admits anyone; a location variable admits anyone (it will
    be bound); an absolute location or a relative address admits exactly
    the partner it denotes.
    """
    if index is None or isinstance(index, LocVar):
        return True
    if isinstance(index, RelativeAddress):
        try:
            return index.resolve(own_loc) == partner_loc
        except AddressError:
            return False
    if isinstance(index, tuple):  # machine-level absolute location
        return index == partner_loc
    raise SemanticsError(f"unknown channel index {index!r}")


def _match_pair(
    out: PendingAction, inp: PendingAction
) -> Optional[tuple[Term, Process, Process]]:
    """Admissibility and continuations for one output/input pair.

    Returns ``(value, sender_cont, receiver_cont)`` when the pair can
    synchronize, ``None`` otherwise.
    """
    if out.leaf_loc == inp.leaf_loc:
        # Both prefixes come from the same leaf (a replication whose body
        # contains both ends).  Their rebuild closures would conflict;
        # the protocols the calculus targets never need this shape.
        return None
    if out.channel_subject != inp.channel_subject:
        return None
    if not _admits(out.index, out.act_loc, inp.act_loc):
        return None
    if not _admits(inp.index, inp.act_loc, out.act_loc):
        return None

    value = localize(out.payload, out.act_loc)

    sender_cont: Process = out.continuation
    if isinstance(out.index, LocVar):
        sender_cont = instantiate_locvar(sender_cont, out.index, inp.act_loc)
    receiver_cont: Process = subst(inp.continuation, {inp.binder: value})
    if isinstance(inp.index, LocVar):
        receiver_cont = instantiate_locvar(receiver_cont, inp.index, out.act_loc)
    return value, sender_cont, receiver_cont


def synchronize(out: PendingAction, inp: PendingAction, system: System) -> Optional[Transition]:
    """Build the transition for one output/input pair, if admissible."""
    matched = _match_pair(out, inp)
    if matched is None:
        return None
    value, sender_cont, receiver_cont = matched
    new_root = replace_leaves(
        system.root,
        {out.leaf_loc: out.wrap(sender_cont), inp.leaf_loc: inp.wrap(receiver_cont)},
    )
    # Administrative normalization: discharge the guards the communication
    # just enabled and expose freshly-created parallel structure.
    new_root = normalize(new_root)
    target = system.with_root(new_root, out.new_private | inp.new_private)
    action = Comm(
        channel=out.channel_subject,
        value=value,
        sender=out.act_loc,
        receiver=inp.act_loc,
    )
    return Transition(action=action, target=target)


# ----------------------------------------------------------------------
# Batched successor generation
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StepInfo:
    """Leaf/channel anatomy of one transition, for the reducer.

    ``out_leaf``/``in_leaf`` are the leaf locations whose prefixes the
    step consumes; ``channel`` is the synchronizing subject.  All three
    are value objects, so info records survive interning unchanged.
    """

    out_leaf: Location
    in_leaf: Location
    channel: Name
    #: True when either side's prefix was reached through a replication
    #: unfold (the acting location sits strictly below the spine leaf).
    #: Such steps never seed an ample set: firing them leaves the
    #: template in place, so the "single commitment" reading of the
    #: leaf is wrong and an infinite unfolding chain would defer the
    #: other transitions forever (the ignoring problem has no cycle to
    #: trip the proviso on).
    unfolds: bool = False


@dataclass(frozen=True, slots=True)
class StepBatch:
    """Every successor of one state, materialized in a single pass.

    ``leaf_counts`` maps each leaf location to the number of pending
    prefixes it offers (the reducer's single-commitment test).  Batches
    are immutable by convention — they are shared through the successor
    cache.
    """

    transitions: tuple[Transition, ...]
    infos: tuple[StepInfo, ...]
    leaf_counts: dict


def _rewrite_batch(root: Process, patches: list[dict]) -> list[Process]:
    """Apply each two-leaf patch to ``root`` independently, in one walk.

    Each patch is a ``{leaf location: replacement}`` dict as accepted by
    :func:`~repro.core.processes.replace_leaves`; the result list holds
    one rebuilt root per patch.  Untouched subtrees are shared between
    the input tree and every result, so the per-target cost is the two
    rewritten spines rather than a full-tree copy per transition.
    """

    def go(node: Process, at: Location, idxs: list[int]) -> dict[int, Process]:
        built: dict[int, Process] = {}
        rest: list[int] = []
        for i in idxs:
            if at in patches[i]:
                if len(patches[i]) == 1 or all(
                    loc[: len(at)] != at or loc == at for loc in patches[i]
                ):
                    built[i] = patches[i][at]
                else:
                    raise SemanticsError(f"nested replacement locations at {at}")
            else:
                rest.append(i)
        if not rest:
            return built
        if isinstance(node, Restriction):
            for i, sub in go(node.body, at, rest).items():
                built[i] = Restriction(node.name, sub)
            return built
        if not isinstance(node, Parallel):
            raise SemanticsError(f"replacement location not in tree at {at}")
        lp, rp = at + (0,), at + (1,)
        lefts = [i for i in rest if any(loc[: len(lp)] == lp for loc in patches[i])]
        rights = [i for i in rest if any(loc[: len(rp)] == rp for loc in patches[i])]
        left_built = go(node.left, lp, lefts) if lefts else {}
        right_built = go(node.right, rp, rights) if rights else {}
        for i in rest:
            built[i] = Parallel(
                left_built.get(i, node.left), right_built.get(i, node.right)
            )
        return built

    results = go(root, (), list(range(len(patches))))
    return [results[i] for i in range(len(patches))]


#: ``normalize`` memo for the batched path, keyed by (identity of the
#: interned node, absolute position).  Guard evaluation is position
#: dependent (address matching resolves relative to the position), so
#: the position is part of the key.  Entries reference nodes the intern
#: table keeps alive; the memo is dropped with the rest of the
#: canonical caches via the registered clear hook.
_norm_memo: dict[tuple[int, Location], Process] = {}
canonical.register_clear_hook(_norm_memo.clear)


def _normalize_interned(node: Process, at: Location = ()) -> Process:
    """:func:`normalize` over the interned arena, memoized.

    ``node`` must be interned (children of an interned node are
    interned, so the recursion stays inside the arena until it reaches
    a non-structural node, which falls through to plain ``normalize``).
    """
    key = (id(node), at)
    hit = _norm_memo.get(key)
    if hit is not None:
        return hit
    if isinstance(node, Parallel):
        result: Process = Parallel(
            _normalize_interned(node.left, at + (0,)),
            _normalize_interned(node.right, at + (1,)),
        )
    elif isinstance(node, Restriction):
        result = Restriction(node.name, _normalize_interned(node.body, at))
    else:
        result = normalize(node, at)
    _norm_memo[key] = result
    return result


def batched_successors(system: System) -> StepBatch:
    """Every silent transition enabled in ``system``, as one batch.

    Instrumented for fault injection (:mod:`repro.runtime.faults`): the
    hook is free unless a plan is active, and it fires *before* the
    successor-cache lookup so injected-fault schedules see the same
    call sequence whether or not the cache is enabled.

    Batches are memoized per interned state (see
    :mod:`repro.semantics.canonical`): re-expanding a state the
    attacker enumeration or an escalated re-exploration has already
    visited returns the recorded batch — uids included, since the cache
    keys on the identity of the hash-consed root.

    With the cache enabled, target construction is batched: all patched
    roots are rebuilt in one shared walk over the arena
    (:func:`_rewrite_batch`) and normalized through a per-(node,
    position) memo, so shared spine work is paid once per state instead
    of once per transition.  With the cache disabled the legacy
    per-pair path runs — the differential parity suites hold the two
    byte-identical.
    """
    fault_hook(SUCCESSORS)
    cache_handle = canonical.successor_key(system)
    if cache_handle is not None:
        cached = canonical.successor_get(cache_handle)
        if cached is not None:
            return cached
    actions = pending_actions(system)
    leaf_counts: dict[Location, int] = {}
    for act in actions:
        leaf_counts[act.leaf_loc] = leaf_counts.get(act.leaf_loc, 0) + 1
    outputs = [a for a in actions if a.is_output]
    inputs = [a for a in actions if not a.is_output]
    pairs: list[tuple[PendingAction, PendingAction, Term, Process, Process]] = []
    for out in outputs:
        for inp in inputs:
            matched = _match_pair(out, inp)
            if matched is not None:
                pairs.append((out, inp) + matched)
    transitions: list[Transition] = []
    infos: list[StepInfo] = []
    if cache_handle is not None and pairs:
        patches = [
            {out.leaf_loc: out.wrap(sender), inp.leaf_loc: inp.wrap(receiver)}
            for out, inp, _value, sender, receiver in pairs
        ]
        roots = _rewrite_batch(system.root, patches)
        for (out, inp, value, _s, _r), new_root in zip(pairs, roots):
            normalized = _normalize_interned(canonical.intern_process(new_root))
            target = system.with_root(normalized, out.new_private | inp.new_private)
            action = Comm(
                channel=out.channel_subject,
                value=value,
                sender=out.act_loc,
                receiver=inp.act_loc,
            )
            transitions.append(Transition(action=action, target=target))
            infos.append(StepInfo(
                out.leaf_loc,
                inp.leaf_loc,
                out.channel_subject,
                unfolds=(out.act_loc != out.leaf_loc or inp.act_loc != inp.leaf_loc),
            ))
    else:
        for out, inp, value, sender, receiver in pairs:
            new_root = replace_leaves(
                system.root,
                {out.leaf_loc: out.wrap(sender), inp.leaf_loc: inp.wrap(receiver)},
            )
            new_root = normalize(new_root)
            target = system.with_root(new_root, out.new_private | inp.new_private)
            action = Comm(
                channel=out.channel_subject,
                value=value,
                sender=out.act_loc,
                receiver=inp.act_loc,
            )
            transitions.append(Transition(action=action, target=target))
            infos.append(StepInfo(
                out.leaf_loc,
                inp.leaf_loc,
                out.channel_subject,
                unfolds=(out.act_loc != out.leaf_loc or inp.act_loc != inp.leaf_loc),
            ))
    batch = StepBatch(tuple(transitions), tuple(infos), leaf_counts)
    if cache_handle is not None:
        canonical.successor_put(cache_handle, batch)
    return batch


def successors(system: System) -> list[Transition]:
    """Every silent transition enabled in ``system``.

    Thin wrapper over :func:`batched_successors`; callers that need the
    step anatomy (the partial-order reducer) use the batch directly.
    """
    return list(batched_successors(system).transitions)
