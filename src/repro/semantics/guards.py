"""Evaluation of the calculus' guards: ``[M = N]``, ``[M =~ N]``,
``case ... of {...}N in``, and ``let (x, y) = M in``.

Guards act on already-bound runtime values, so their evaluation is a
pure function of the data and — for address matching and localized
literals — of the location of the evaluating process.
"""

from __future__ import annotations

from typing import Optional

from repro.core.addresses import AddressError, Location
from repro.core.terms import At, Pair, SharedEnc, Succ, Term, Zero, origin, payload, values_equal


def match_passes(left: Term, right: Term, at: Location) -> bool:
    """Evaluate ``[M = N]`` at location ``at``.

    Plain data equality ignores localization wrappers; an ``At`` literal
    on either side additionally constrains the *origin* of the other
    side (the paper's ``[x = l d]`` form).
    """
    if isinstance(left, At):
        left, right = right, left
    if isinstance(right, At):
        try:
            expected = right.address.resolve(at)
        except AddressError:
            return False
        if origin(left) != expected:
            return False
        if right.term is None:
            return True
        return values_equal(left, right.term)
    return values_equal(left, right)


def addr_match_passes(left: Term, right: Term, at: Location) -> bool:
    """Evaluate the address matching ``[M =~ N]`` at location ``at``.

    Both sides are reduced to an origin: an ``At`` literal resolves its
    relative address against the matcher's own location; any other value
    contributes the location of its creator.  The match passes when the
    two origins exist and coincide; an ``At`` literal with a payload also
    requires the data to be equal.
    """

    def origin_of(side: Term) -> Optional[Location]:
        if isinstance(side, At):
            try:
                return side.address.resolve(at)
            except AddressError:
                return None
        return origin(side)

    lo, ro = origin_of(left), origin_of(right)
    if lo is None or ro is None or lo != ro:
        return False
    for literal, other in ((left, right), (right, left)):
        if isinstance(literal, At) and literal.term is not None:
            if not values_equal(other, literal.term):
                return False
    return True


def decrypt(scrutinee: Term, key: Term, arity: int) -> Optional[tuple[Term, ...]]:
    """Attempt the ``case`` decryption; ``None`` when it is stuck.

    Perfect cryptography: the ciphertext opens iff the key matches
    (up to localization) and the body has the expected arity.
    """
    datum = payload(scrutinee)
    if not isinstance(datum, SharedEnc):
        return None
    if len(datum.body) != arity:
        return None
    if not values_equal(datum.key, key):
        return None
    return datum.body


def int_case(scrutinee: Term) -> Optional[tuple[str, Optional[Term]]]:
    """Evaluate the full-calculus integer case; ``None`` when stuck.

    Returns ``("zero", None)`` for ``0`` and ``("succ", M)`` for
    ``suc(M)``; any other datum is stuck.
    """
    datum = payload(scrutinee)
    if isinstance(datum, Zero):
        return ("zero", None)
    if isinstance(datum, Succ):
        return ("succ", datum.term)
    return None


def split_pair(scrutinee: Term) -> Optional[tuple[Term, Term]]:
    """Attempt the ``let (x, y) = M`` projection; ``None`` when stuck."""
    datum = payload(scrutinee)
    if not isinstance(datum, Pair):
        return None
    return (datum.first, datum.second)
