"""Bounded exploration of the silent-transition state space.

Replication makes the transition system infinite, so every exploration
carries an explicit :class:`Budget`.  Results always say whether they
are *exact* (the reachable space fit in the budget) or *truncated*;
verification verdicts built on top propagate that qualifier.

States are deduplicated up to alpha-equivalence using the canonical
rendering of :mod:`repro.syntax.pretty`, which renumbers the fresh ids
introduced by replication unfolding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.semantics.actions import Transition
from repro.semantics.system import System
from repro.semantics.transitions import successors


@dataclass(frozen=True, slots=True)
class Budget:
    """Limits for a state-space exploration.

    Attributes:
        max_states: maximum number of distinct states to expand.
        max_depth: maximum length of any explored transition sequence.
    """

    max_states: int = 2000
    max_depth: int = 64

    def scaled(self, factor: float) -> "Budget":
        return Budget(int(self.max_states * factor), self.max_depth)


DEFAULT_BUDGET = Budget()


@dataclass
class Graph:
    """An explored fragment of the labelled transition system.

    Attributes:
        states: canonical key -> representative system.
        edges: canonical key -> list of (transition, target key).
        initial: canonical key of the initial state.
        truncated: True when the budget cut the exploration short; the
            graph is then an under-approximation of the reachable space.
    """

    initial: str
    states: dict[str, System] = field(default_factory=dict)
    edges: dict[str, list[tuple[Transition, str]]] = field(default_factory=dict)
    truncated: bool = False

    def state_count(self) -> int:
        return len(self.states)

    def transition_count(self) -> int:
        return sum(len(out) for out in self.edges.values())

    def successors_of(self, key: str) -> list[tuple[Transition, str]]:
        return self.edges.get(key, [])

    def deadlocks(self) -> list[str]:
        """Keys of states with no outgoing transition."""
        return [k for k in self.states if not self.edges.get(k)]


def explore(system: System, budget: Budget = DEFAULT_BUDGET) -> Graph:
    """Breadth-first exploration of the tau-reachable states."""
    initial_key = system.canonical_key()
    graph = Graph(initial=initial_key)
    graph.states[initial_key] = system
    queue: deque[tuple[str, System, int]] = deque([(initial_key, system, 0)])
    while queue:
        key, state, depth = queue.popleft()
        if depth >= budget.max_depth:
            graph.truncated = True
            continue
        out: list[tuple[Transition, str]] = []
        for step in successors(state):
            target_key = step.target.canonical_key()
            if target_key not in graph.states:
                if len(graph.states) >= budget.max_states:
                    # The edge's target was refused by the budget: leave
                    # the edge out too, so the graph stays self-contained
                    # (every recorded edge ends in a recorded state).
                    graph.truncated = True
                    continue
                graph.states[target_key] = step.target
                queue.append((target_key, step.target, depth + 1))
            out.append((step, target_key))
        graph.edges[key] = out
    return graph


def reachable(
    system: System,
    predicate: Callable[[System], bool],
    budget: Budget = DEFAULT_BUDGET,
) -> tuple[bool, bool]:
    """Search for a reachable state satisfying ``predicate``.

    Returns ``(found, exhaustive)``: when ``found`` is False and
    ``exhaustive`` is False, the budget ran out before the search could
    conclude (the property may still hold beyond the horizon).
    """
    seen: set[str] = set()
    queue: deque[tuple[System, int]] = deque([(system, 0)])
    seen.add(system.canonical_key())
    truncated = False
    while queue:
        state, depth = queue.popleft()
        if predicate(state):
            return True, True
        if depth >= budget.max_depth:
            truncated = True
            continue
        for step in successors(state):
            key = step.target.canonical_key()
            if key in seen:
                continue
            if len(seen) >= budget.max_states:
                truncated = True
                continue
            seen.add(key)
            queue.append((step.target, depth + 1))
    return False, not truncated


def runs(
    system: System,
    max_length: int,
    budget: Budget = DEFAULT_BUDGET,
) -> Iterator[list[Transition]]:
    """Enumerate transition sequences from ``system`` up to a length.

    Depth-first, deduplicating on the *path-end* state so diverging
    interleavings of the same trace are not repeated ad infinitum.
    Useful for diagnostics and attack narration.
    """

    def go(state: System, prefix: list[Transition], seen: set[str]) -> Iterator[list[Transition]]:
        if prefix:
            yield list(prefix)
        if len(prefix) >= max_length or len(seen) >= budget.max_states:
            return
        for step in successors(state):
            key = step.target.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            prefix.append(step)
            yield from go(step.target, prefix, seen)
            prefix.pop()

    yield from go(system, [], {system.canonical_key()})


def narrate(system: System, trace: list[Transition]) -> list[str]:
    """Render a transition sequence as a protocol narration."""
    lines: list[str] = []
    state = system
    for i, step in enumerate(trace, start=1):
        lines.append(f"Step {i}: {step.describe(state)}")
        state = step.target
    return lines


def find_trace(
    system: System,
    predicate: Callable[[System], bool],
    budget: Budget = DEFAULT_BUDGET,
) -> Optional[list[Transition]]:
    """Shortest transition sequence to a state satisfying ``predicate``.

    Returns ``None`` when no such state is found within the budget.
    """
    if predicate(system):
        return []
    seen: set[str] = {system.canonical_key()}
    queue: deque[tuple[System, list[Transition], int]] = deque([(system, [], 0)])
    while queue:
        state, path, depth = queue.popleft()
        if depth >= budget.max_depth:
            continue
        for step in successors(state):
            if predicate(step.target):
                return path + [step]
            key = step.target.canonical_key()
            if key in seen or len(seen) >= budget.max_states:
                continue
            seen.add(key)
            queue.append((step.target, path + [step], depth + 1))
    return None
