"""Bounded exploration of the silent-transition state space.

Replication makes the transition system infinite, so every exploration
carries an explicit :class:`Budget`.  Results always say whether they
are *exact* (the reachable space fit in the budget) or exhausted — and
when exhausted, *why*: a structured
:class:`~repro.runtime.exhaustion.Exhaustion` records which limit
tripped (states, depth, wall-clock deadline, cancellation, or an
injected fault) and how far the run got.  Verification verdicts built on
top propagate that qualifier.

Explorations are *resilient*:

* they poll a :class:`~repro.runtime.deadline.RunControl` (explicit or
  ambient, see :func:`repro.runtime.deadline.governed`) between state
  expansions, so any check can be bounded in wall-clock time or
  cancelled cooperatively;
* ``KeyboardInterrupt`` yields a partial graph with reason
  ``"cancelled"``, not a stack trace;
* a failing ``successors()`` call (see :mod:`repro.runtime.faults`)
  leaves its state unexpanded and qualifies the result instead of
  aborting it;
* partial graphs carry their unexpanded frontier (:attr:`Graph.pending`)
  so :func:`resume_exploration` — possibly in a later process, via
  :mod:`repro.runtime.checkpoint` — continues instead of restarting.

States are deduplicated up to alpha-equivalence by the canonical key of
:mod:`repro.semantics.canonical`, which renumbers the fresh ids
introduced by replication unfolding.  With the state cache enabled
(the default) keys come from hash-consed, memoized rendering and
repeated expansions hit a successor cache; ``--no-state-cache`` (or
``REPRO_NO_STATE_CACHE=1``) falls back to rendering every state
through :func:`repro.syntax.pretty.canonical_process` — the two paths
produce byte-identical keys, and therefore byte-identical graphs.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.obs.metrics import current_metrics
from repro.obs.trace import trace_span
from repro.runtime import exhaustion as ex
from repro.runtime.deadline import RunControl, resolve_control
from repro.runtime.exhaustion import Exhaustion
from repro.runtime.faults import FaultError
from repro.semantics import canonical, reduction
from repro.semantics.actions import Transition
from repro.semantics.system import System
from repro.semantics.transitions import successors


@dataclass(frozen=True, slots=True)
class Budget:
    """Limits for a state-space exploration.

    Attributes:
        max_states: maximum number of distinct states to expand.
        max_depth: maximum length of any explored transition sequence.
    """

    max_states: int = 2000
    max_depth: int = 64

    def scaled(self, factor: float, depth_factor: Optional[float] = None) -> "Budget":
        """Grow both axes (``depth_factor`` defaults to ``factor``).

        Scaling *both* limits matters: a depth-truncated exploration
        whose escalation only grew ``max_states`` would re-truncate at
        the same horizon forever.
        """
        if depth_factor is None:
            depth_factor = factor
        return Budget(
            int(self.max_states * factor), int(self.max_depth * depth_factor)
        )


DEFAULT_BUDGET = Budget()


@dataclass
class Graph:
    """An explored fragment of the labelled transition system.

    Attributes:
        states: canonical key -> representative system.
        edges: canonical key -> list of (transition, target key).  A
            state has an entry iff it was expanded (possibly partially,
            see ``incomplete``).
        initial: canonical key of the initial state.
        exhaustion: ``None`` when the graph is the exact reachable
            space; otherwise the structured record of which limit cut
            the exploration short.  The graph is then an
            under-approximation.
        pending: the unexpanded frontier — ``(key, depth)`` pairs whose
            expansion was refused (by depth, states, deadline,
            cancellation or a fault).  Feed the graph to
            :func:`resume_exploration` to continue.
        incomplete: keys whose recorded edges are missing some targets
            (the state budget refused them).  Kept separate so
            :meth:`deadlocks` does not mistake a half-expanded state for
            a stuck one.
    """

    initial: str
    states: dict[str, System] = field(default_factory=dict)
    edges: dict[str, list[tuple[Transition, str]]] = field(default_factory=dict)
    exhaustion: Optional[Exhaustion] = None
    pending: list[tuple[str, int]] = field(default_factory=list)
    incomplete: set[str] = field(default_factory=set)

    @property
    def truncated(self) -> bool:
        """Backward-compatible boolean view of :attr:`exhaustion`."""
        return self.exhaustion is not None

    def state_count(self) -> int:
        return len(self.states)

    def transition_count(self) -> int:
        return sum(len(out) for out in self.edges.values())

    def successors_of(self, key: str) -> list[tuple[Transition, str]]:
        return self.edges.get(key, [])

    def deadlocks(self) -> list[str]:
        """Keys of states that were expanded and have no successor.

        States the budget refused to expand (no ``edges`` entry) and
        states with refused targets (``incomplete``) are *not* counted:
        the exploration never learned whether they are stuck.
        """
        return [
            key
            for key, out in self.edges.items()
            if not out and key not in self.incomplete
        ]


class _Tally:
    """Local exploration counters, published to the ambient metrics
    registry once per run — the hot loop never touches the registry."""

    __slots__ = ("expanded", "transitions", "recorded", "dedup_hits", "max_queue")

    def __init__(self) -> None:
        self.expanded = 0
        self.transitions = 0
        self.recorded = 0
        self.dedup_hits = 0
        self.max_queue = 0


def _expand(
    graph: Graph,
    state: System,
    depth: int,
    budget: Budget,
    queue: deque[tuple[str, int]],
    tally: _Tally,
    use_por: bool = True,
) -> tuple[list[tuple[Transition, str]], bool]:
    """Expand one state; returns its (possibly partial) out-edges and
    whether the state budget refused any target.

    Successors come from the reducer: partial-order reduction (when
    active and ``use_por``) expands a single ample transition instead
    of the full batch, with visited states as the cycle proviso; the
    full batch is materialized in one arena pass either way.
    """
    out: list[tuple[Transition, str]] = []
    refused = False
    steps = reduction.reduced_successors(
        state,
        is_visited=(
            (lambda step: step.target.canonical_key() in graph.states)
            if use_por
            else None
        ),
    )
    for step in steps:
        target_key = step.target.canonical_key()
        if target_key not in graph.states:
            if len(graph.states) >= budget.max_states:
                # The edge's target was refused by the budget: leave
                # the edge out too, so the graph stays self-contained
                # (every recorded edge ends in a recorded state).
                refused = True
                continue
            graph.states[target_key] = step.target
            queue.append((target_key, depth + 1))
            tally.recorded += 1
        else:
            tally.dedup_hits += 1
        out.append((step, target_key))
    tally.expanded += 1
    tally.transitions += len(out)
    return out, refused


def _dedup_pending(entries) -> list[tuple[str, int]]:
    """Drop repeated frontier keys, keeping the first (shallowest,
    BFS-ordered) entry for each.

    A batched expansion enqueues a whole successor set at once, so a
    checkpoint written around it can see the same key both in the
    refused ``pending`` list and the live queue; resuming such a
    snapshot without deduplication would expand the state twice and
    double-count its work in the run's ``states``/``transitions``
    stats.
    """
    seen: set[str] = set()
    out: list[tuple[str, int]] = []
    for key, depth in entries:
        if key in seen:
            continue
        seen.add(key)
        out.append((key, depth))
    return out


def snapshot_exploration(graph: Graph, queue: deque[tuple[str, int]]) -> Graph:
    """A resumable, independent copy of an in-flight exploration.

    The copy's ``pending`` frontier includes the not-yet-expanded queue
    (deduplicated against the refused entries), so feeding it to
    :func:`resume_exploration` (directly or through a
    :class:`~repro.runtime.checkpoint.Checkpoint`) continues exactly
    where the live run stood.  State values are immutable, so shallow
    container copies fully decouple the snapshot from the live graph.
    """
    return Graph(
        initial=graph.initial,
        states=dict(graph.states),
        edges=dict(graph.edges),
        exhaustion=graph.exhaustion,
        pending=_dedup_pending(list(graph.pending) + list(queue)),
        incomplete=set(graph.incomplete),
    )


def _run_exploration(
    graph: Graph,
    queue: deque[tuple[str, int]],
    budget: Budget,
    control: RunControl,
    use_por: bool = True,
) -> None:
    """Drive the BFS over ``queue``, mutating ``graph`` in place."""
    reasons: list[str] = []
    detail: Optional[str] = None
    deepest = 0
    started = time.monotonic()
    autosave_every = control.checkpoint_every
    autosave = control.on_checkpoint if autosave_every else None
    last_saved = len(graph.states)
    tally = _Tally()
    cache_before = canonical.metrics_snapshot()
    reduction_before = reduction.metrics_snapshot()

    def note(reason: str) -> None:
        if reason not in reasons:
            reasons.append(reason)

    try:
        while queue:
            if len(queue) > tally.max_queue:
                tally.max_queue = len(queue)
            stop = control.interruption()
            if stop is not None:
                note(stop)
                break
            key, depth = queue.popleft()
            deepest = max(deepest, depth)
            if depth >= budget.max_depth:
                note(ex.DEPTH)
                graph.pending.append((key, depth))
                continue
            try:
                out, refused = _expand(
                    graph, graph.states[key], depth, budget, queue, tally, use_por
                )
            except FaultError as error:
                note(ex.FAULT)
                detail = str(error)
                graph.pending.append((key, depth))
                graph.incomplete.add(key)
                continue
            except KeyboardInterrupt:
                note(ex.CANCELLED)
                detail = "KeyboardInterrupt"
                graph.pending.append((key, depth))
                break
            graph.edges[key] = out
            if refused:
                note(ex.STATES)
                graph.pending.append((key, depth))
                graph.incomplete.add(key)
            else:
                graph.incomplete.discard(key)
            if autosave is not None and len(graph.states) - last_saved >= autosave_every:
                autosave(snapshot_exploration(graph, queue))
                last_saved = len(graph.states)
    except KeyboardInterrupt:
        note(ex.CANCELLED)
        detail = "KeyboardInterrupt"
    graph.pending.extend(queue)
    queue.clear()
    elapsed = time.monotonic() - started
    if reasons:
        graph.exhaustion = Exhaustion(
            tuple(reasons),
            states=len(graph.states),
            depth=deepest,
            elapsed=elapsed,
            detail=detail,
        )
    else:
        graph.exhaustion = None
    metrics = current_metrics()
    if metrics is not None:
        metrics.inc("explore.runs")
        metrics.inc("explore.states", tally.recorded)
        metrics.inc("explore.expanded", tally.expanded)
        metrics.inc("explore.transitions", tally.transitions)
        metrics.inc("explore.dedup_hits", tally.dedup_hits)
        metrics.set_gauge("explore.queue_depth", tally.max_queue)
        metrics.observe("explore.seconds", elapsed)
        canonical.publish_cache_metrics(metrics, cache_before)
        reduction.publish_reduction_metrics(metrics, reduction_before)


def explore(
    system: System,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
    use_por: bool = True,
) -> Graph:
    """Breadth-first exploration of the tau-reachable states.

    ``use_por=False`` opts this exploration out of partial-order
    reduction (even when the global mode enables it): callers that need
    the *full branching structure* — bisimulation, simulation and
    must-testing are not preserved by POR, which only keeps
    trace/reachability-style properties — pass False.  Symmetry
    reduction (a quotient by an automorphism of the LTS) remains active
    and is sound for those checks.
    """
    initial_key = system.canonical_key()
    graph = Graph(initial=initial_key)
    graph.states[initial_key] = system
    metrics = current_metrics()
    if metrics is not None:
        metrics.inc("explore.states")  # the seeded initial state
    queue: deque[tuple[str, int]] = deque([(initial_key, 0)])
    with trace_span("lts.explore", max_states=budget.max_states,
                    max_depth=budget.max_depth):
        _run_exploration(graph, queue, budget, resolve_control(control), use_por)
    return graph


def resume_exploration(
    graph: Graph,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
    use_por: bool = True,
) -> Graph:
    """Continue a partial exploration from its pending frontier.

    The input graph is not mutated; the returned graph shares no
    bookkeeping with it.  Resuming with the *same* budget after a
    deadline/cancellation reproduces exactly the states an uninterrupted
    run would have found (the frontier preserves BFS order); resuming
    with a *larger* budget is how escalation reuses prior work —
    states refused by the old budget are re-expanded under the new one.
    """
    resumed = Graph(
        initial=graph.initial,
        states=dict(graph.states),
        edges=dict(graph.edges),
        incomplete=set(graph.incomplete),
    )
    # Deduplicate defensively on the read side too: checkpoints written
    # by older versions (or mid-expansion of a batched successor set)
    # may carry a key in both the refused list and the saved queue, and
    # re-expanding it would double-count states/transitions work.
    queue: deque[tuple[str, int]] = deque(_dedup_pending(graph.pending))
    if not queue:
        resumed.exhaustion = graph.exhaustion
        return resumed
    with trace_span("lts.resume", prior_states=len(graph.states),
                    max_states=budget.max_states, max_depth=budget.max_depth):
        _run_exploration(resumed, queue, budget, resolve_control(control), use_por)
    return resumed


@dataclass(frozen=True, slots=True)
class ReachResult:
    """Outcome of a bounded reachability search.

    ``found`` is conclusive when True; a False is only conclusive when
    ``exhaustion`` is ``None``.
    """

    found: bool
    exhaustion: Optional[Exhaustion] = None
    states: int = 0

    @property
    def exhaustive(self) -> bool:
        return self.exhaustion is None


def search(
    system: System,
    predicate: Callable[[System], bool],
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> ReachResult:
    """Search for a reachable state satisfying ``predicate``.

    The structured twin of :func:`reachable`: the result says not just
    whether the search was exhaustive but which limit stopped it.

    Under partial-order reduction the search remains complete for the
    predicates this codebase uses (leaf-local/stutter-invariant facts:
    barbs, heard-sets, activation fingerprints) because every pruned
    interleaving reaches a representative where the same leaves and
    pending actions occur; a predicate sensitive to the *ordering* of
    independent internal steps would need ``--reduce none``.
    """
    ctl = resolve_control(control)
    seen: set[str] = {system.canonical_key()}
    queue: deque[tuple[System, int]] = deque([(system, 0)])
    reasons: list[str] = []
    detail: Optional[str] = None
    deepest = 0
    dedup_hits = 0
    max_queue = 0
    found = False
    started = time.monotonic()
    cache_before = canonical.metrics_snapshot()
    reduction_before = reduction.metrics_snapshot()

    def note(reason: str) -> None:
        if reason not in reasons:
            reasons.append(reason)

    def publish() -> None:
        metrics = current_metrics()
        if metrics is not None:
            metrics.inc("search.runs")
            metrics.inc("search.states", len(seen))
            metrics.inc("search.dedup_hits", dedup_hits)
            metrics.inc("search.found", 1 if found else 0)
            metrics.set_gauge("search.queue_depth", max_queue)
            metrics.observe("search.seconds", time.monotonic() - started)
            canonical.publish_cache_metrics(metrics, cache_before)
            reduction.publish_reduction_metrics(metrics, reduction_before)

    try:
        while queue:
            if len(queue) > max_queue:
                max_queue = len(queue)
            stop = ctl.interruption()
            if stop is not None:
                note(stop)
                break
            state, depth = queue.popleft()
            deepest = max(deepest, depth)
            if predicate(state):
                found = True
                publish()
                return ReachResult(True, None, len(seen))
            if depth >= budget.max_depth:
                note(ex.DEPTH)
                continue
            try:
                steps = reduction.reduced_successors(
                    state, is_visited=lambda step: step.target.canonical_key() in seen
                )
                for step in steps:
                    key = step.target.canonical_key()
                    if key in seen:
                        dedup_hits += 1
                        continue
                    if len(seen) >= budget.max_states:
                        note(ex.STATES)
                        continue
                    seen.add(key)
                    queue.append((step.target, depth + 1))
            except FaultError as error:
                note(ex.FAULT)
                detail = str(error)
                continue
    except KeyboardInterrupt:
        note(ex.CANCELLED)
        detail = "KeyboardInterrupt"
    exhaustion = (
        Exhaustion(
            tuple(reasons),
            states=len(seen),
            depth=deepest,
            elapsed=time.monotonic() - started,
            detail=detail,
        )
        if reasons
        else None
    )
    publish()
    return ReachResult(False, exhaustion, len(seen))


def reachable(
    system: System,
    predicate: Callable[[System], bool],
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> tuple[bool, bool]:
    """Search for a reachable state satisfying ``predicate``.

    Returns ``(found, exhaustive)``: when ``found`` is False and
    ``exhaustive`` is False, the budget ran out before the search could
    conclude (the property may still hold beyond the horizon).  Use
    :func:`search` for the structured exhaustion record.
    """
    result = search(system, predicate, budget, control)
    return result.found, result.exhaustive


def runs(
    system: System,
    max_length: int,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> Iterator[list[Transition]]:
    """Enumerate transition sequences from ``system`` up to a length.

    Depth-first, deduplicating on the *path-end* state so diverging
    interleavings of the same trace are not repeated ad infinitum.
    Useful for diagnostics and attack narration.
    """
    ctl = resolve_control(control)

    def go(state: System, prefix: list[Transition], seen: set[str]) -> Iterator[list[Transition]]:
        if prefix:
            yield list(prefix)
        if len(prefix) >= max_length or len(seen) >= budget.max_states:
            return
        if ctl.interruption() is not None:
            return
        try:
            steps = successors(state)
        except FaultError:
            return
        for step in steps:
            key = step.target.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            prefix.append(step)
            yield from go(step.target, prefix, seen)
            prefix.pop()

    yield from go(system, [], {system.canonical_key()})


def narrate(system: System, trace: list[Transition]) -> list[str]:
    """Render a transition sequence as a protocol narration."""
    lines: list[str] = []
    state = system
    for i, step in enumerate(trace, start=1):
        lines.append(f"Step {i}: {step.describe(state)}")
        state = step.target
    return lines


def find_trace(
    system: System,
    predicate: Callable[[System], bool],
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> Optional[list[Transition]]:
    """Shortest transition sequence to a state satisfying ``predicate``.

    Returns ``None`` when no such state is found within the budget (or
    before the control interrupts the search).
    """
    ctl = resolve_control(control)
    if predicate(system):
        return []
    seen: set[str] = {system.canonical_key()}
    queue: deque[tuple[System, list[Transition], int]] = deque([(system, [], 0)])
    try:
        while queue:
            if ctl.interruption() is not None:
                return None
            state, path, depth = queue.popleft()
            if depth >= budget.max_depth:
                continue
            try:
                steps = successors(state)
            except FaultError:
                continue
            for step in steps:
                if predicate(step.target):
                    return path + [step]
                key = step.target.canonical_key()
                if key in seen or len(seen) >= budget.max_states:
                    continue
                seen.add(key)
                queue.append((step.target, path + [step], depth + 1))
    except KeyboardInterrupt:
        return None
    return None
