"""Runnable systems: instantiated processes with located, private names.

The paper's abstract machine gives every restricted name an identity tied
to the *location of its creator* ("Names of the pi-calculus agents
handled locally") and keeps relative addresses out of user reach.  This
module performs the corresponding *instantiation* pass:

* every restriction that is not under a replication is removed and its
  name replaced, throughout its scope, by a fresh :class:`Name` carrying
  a unique id and the absolute location at which the restriction would
  become active (predicted statically, which is sound because the tree
  of sequential processes only ever grows downward at leaves);
* restrictions under a replication stay in the template and are
  instantiated per copy when the replication unfolds (see
  :mod:`repro.semantics.transitions`);
* the set of private names is tracked on the side: actions on private
  channels are internal and never barbs.

A :class:`System` is the unit the semantics, the equivalence checkers
and the analyses all operate on.  Systems are immutable; transitions
produce new systems.

Composition (protocol ``|`` attacker ``|`` tester) must happen on *raw*
processes before instantiation, because locations — and therefore name
identities and address literals — depend on the final shape of the tree.
Use :func:`build_system` for that.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence

from repro.core.addresses import Location, RelativeAddress, is_prefix
from repro.core.errors import InstantiationError
from repro.core.processes import (
    AddrMatch,
    Case,
    Channel,
    Input,
    IntCase,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
    Split,
    free_variables,
    parallel,
    restrict,
    walk_leaves,
)
from repro.core.substitution import rename_names
from repro.core.terms import Name, fresh_uid
from repro.runtime.faults import CANONICAL, fault_hook
from repro.semantics.canonical import state_key
from repro.syntax.pretty import render_process


@dataclass(frozen=True, slots=True)
class System:
    """An instantiated, runnable system.

    Attributes:
        root: the instantiated process (no live restrictions outside
            replication templates).
        private: names that are restricted — actions on them are never
            observable.
        roles: ``(location-prefix, label)`` pairs naming the principals,
            used for diagnostics and attack narrations.
    """

    root: Process
    private: frozenset[Name] = frozenset()
    roles: tuple[tuple[Location, str], ...] = ()
    _key_cache: Optional[str] = field(
        default=None, compare=False, repr=False, hash=False
    )

    # -- naming ---------------------------------------------------------

    def role_at(self, loc: Location) -> str:
        """Human label for the principal owning ``loc``.

        The deepest registered prefix wins; replication instances get an
        ``[...]`` suffix showing the copy path.  Unregistered locations
        render as the bare location.
        """
        best: Optional[tuple[Location, str]] = None
        for prefix, label in self.roles:
            if is_prefix(prefix, loc) and (best is None or len(prefix) > len(best[0])):
                best = (prefix, label)
        if best is None:
            from repro.core.addresses import location_str

            return location_str(loc)
        prefix, label = best
        rest = loc[len(prefix):]
        return label if not rest else f"{label}[{''.join(map(str, rest))}]"

    def location_of(self, label: str) -> Location:
        """The registered location prefix of a role label."""
        for prefix, role in self.roles:
            if role == label:
                return prefix
        raise KeyError(f"no role named {label!r}")

    def address(self, target: str, observer: str) -> RelativeAddress:
        """Relative address of role ``target`` as seen by ``observer``."""
        return RelativeAddress.between(
            observer=self.location_of(observer), target=self.location_of(target)
        )

    # -- structure ------------------------------------------------------

    def leaves(self) -> Iterator[tuple[Location, Process]]:
        """The tree of sequential processes of the current state."""
        return walk_leaves(self.root)

    def with_root(self, root: Process, new_private: frozenset[Name] = frozenset()) -> "System":
        return replace(
            self, root=root, private=self.private | new_private, _key_cache=None
        )

    # -- rendering ------------------------------------------------------

    def pretty(self, unicode: bool = False) -> str:
        return render_process(self.root, unicode=unicode)

    def canonical_key(self) -> str:
        """Alpha-invariant state key used for deduplication (cached).

        Computed through :func:`repro.semantics.canonical.state_key`:
        hash-consed and memoized when the state cache is enabled,
        rendered from scratch otherwise — byte-identical either way.
        The roles are passed along so symmetry canonicalization (when
        active) can merge states that differ only by a permutation of
        replicated sibling sessions within one role.
        """
        if self._key_cache is None:
            fault_hook(CANONICAL)
            object.__setattr__(self, "_key_cache", state_key(self.root, self.roles))
        return self._key_cache

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.pretty()


# ----------------------------------------------------------------------
# Instantiation
# ----------------------------------------------------------------------


def instantiate_names(proc: Process, at: Location) -> tuple[Process, frozenset[Name]]:
    """Activate every restriction of ``proc`` not guarded by ``!``.

    Each such restriction is erased; its name is replaced throughout the
    scope by a fresh name whose ``creator`` is the location the
    restriction governs.  The location is tracked through *all* process
    structure (including continuations of prefixes), mirroring where the
    tree of sequential processes will place the scope once active.

    Returns the rewritten process and the set of activated names.
    """
    created: set[Name] = set()

    def go(p: Process, loc: Location) -> Process:
        if isinstance(p, Restriction):
            fresh = Name(p.name.base, fresh_uid(), creator=loc)
            created.add(fresh)
            return go(rename_names(p.body, {p.name: fresh}), loc)
        if isinstance(p, Parallel):
            return Parallel(go(p.left, loc + (0,)), go(p.right, loc + (1,)))
        if isinstance(p, Replication):
            return p  # template: per-copy instantiation happens at unfold
        if isinstance(p, Output):
            return Output(p.channel, p.payload, go(p.continuation, loc))
        if isinstance(p, Input):
            return Input(p.channel, p.binder, go(p.continuation, loc))
        if isinstance(p, Match):
            return Match(p.left, p.right, go(p.continuation, loc))
        if isinstance(p, AddrMatch):
            return AddrMatch(p.left, p.right, go(p.continuation, loc))
        if isinstance(p, Case):
            return Case(p.scrutinee, p.binders, p.key, go(p.continuation, loc))
        if isinstance(p, Split):
            return Split(p.scrutinee, p.first, p.second, go(p.continuation, loc))
        if isinstance(p, IntCase):
            return IntCase(
                p.scrutinee, go(p.zero_branch, loc), p.binder, go(p.succ_branch, loc)
            )
        if isinstance(p, Nil):
            return p
        raise InstantiationError(f"unknown process {p!r}")

    return go(proc, at), frozenset(created)


def instantiate(
    proc: Process,
    roles: Sequence[tuple[Location, str]] = (),
    extra_private: Sequence[Name] = (),
) -> System:
    """Turn a raw (source) process into a runnable :class:`System`.

    ``extra_private`` marks additional names as unobservable without
    restricting them syntactically (occasionally useful in tests).
    Raises :class:`InstantiationError` when the process has free
    variables — only closed systems can run.
    """
    fv = free_variables(proc)
    if fv:
        pretty = ", ".join(sorted(v.render() for v in fv))
        raise InstantiationError(f"cannot instantiate open process (free: {pretty})")
    root, created = instantiate_names(proc, at=())
    from repro.semantics.normalize import normalize

    return System(
        root=normalize(root),
        private=created | frozenset(extra_private),
        roles=tuple(roles),
    )


def build_system(
    parts: Sequence[tuple[str, Process]],
    private_channels: Sequence[Name] = (),
) -> System:
    """Compose labelled principals and instantiate the result.

    ``parts`` is a sequence of ``(label, raw_process)`` pairs.  They are
    combined with a left-associated parallel composition — the same shape
    the paper uses, e.g. ``((P | E) | T)`` — and the whole composition is
    wrapped in restrictions for ``private_channels`` (the ``(nu c1) ...
    (nu cn)`` of Definition 4, which hides the protocol channels from
    observation).

    Role labels are registered at the principals' locations so that
    diagnostics and narrations can speak of ``A``, ``B``, ``E``...
    """
    if not parts:
        raise InstantiationError("cannot build an empty system")
    labels = [label for label, _ in parts]
    if len(set(labels)) != len(labels):
        raise InstantiationError(f"duplicate role labels in {labels}")

    locations = left_associated_locations(len(parts))
    roles = [(loc, label) for loc, (label, _) in zip(locations, parts)]
    composed = parallel(*(p for _, p in parts))
    composed = restrict(tuple(private_channels), composed)
    return instantiate(composed, roles=roles)


def left_associated_locations(count: int) -> list[Location]:
    """Locations of the leaves of a left-associated ``count``-ary parallel.

    For ``count=3`` — the shape ``(P0 | P1) | P2`` — this returns
    ``[(0, 0), (0, 1), (1,)]``.
    """
    if count < 1:
        raise InstantiationError("need at least one leaf")
    if count == 1:
        return [()]
    locations: list[Location] = []
    # The first two leaves sit under count-2 further left-nestings.
    depth = count - 1
    locations.append((0,) * depth)
    locations.append((0,) * (depth - 1) + (1,))
    for i in range(2, count):
        locations.append((0,) * (count - 1 - i) + (1,))
    return locations
