"""Cold-path state-space reduction: partial order + symmetry.

The exploration loops expand strictly fewer states without changing a
single verdict, by two orthogonal prunings:

**Partial-order reduction (ample sets).**  At each state, the reducer
looks for a transition that can serve as a *persistent singleton
ample set*: firing only it, and postponing every other enabled
transition, loses no behaviour relevant to any verdict.  A transition
``t`` on channel ``ch`` qualifies when

1. *invisibility* — ``ch`` is restricted (``ch in system.private``), so
   ``t`` contributes no barb and no observable the may-testing or
   environment layers could distinguish (public channels — including
   every tester's observe wire, which sits outside the restriction —
   never qualify);
2. *single commitment* — ``t``'s two leaves each offer exactly one
   pending prefix (``t``'s own ends), so no other enabled transition
   touches them, and neither end was reached through a replication
   unfold (an unfold leaves its template in place, so the leaf is
   never actually committed and an infinite chain of fresh unfoldings
   would postpone everything else without ever closing a cycle);
3. *channel confinement* — every occurrence of ``ch`` in the whole
   tree, in any polarity and including occurrences inside transmitted
   terms, lies inside ``t``'s two leaf subtrees, and no prefix outside
   them has a variable channel subject that substitution could later
   bind to ``ch``.  Then ``t`` is the unique transition on ``ch`` now
   and forever, and every other transition — current or future —
   rewrites disjoint leaves, hence commutes with ``t``;
4. *cycle proviso* — ``t``'s target has not been visited already
   (checked through a caller-supplied predicate), preventing the
   classic ignoring problem where postponed transitions chase a cycle
   of ample steps forever.

Conditions 1–3 make ``{t}`` persistent and invisible: every pruned
interleaving commutes, state by state, to the representative that
fires ``t`` first, with identical actions on identical edges; the
pending-action sets other analyses scan (activation collection,
barb/convergence checks, spy hearing) are preserved along the way.
Occurrence sets are memoized per interned node, so the confinement
check walks shared subtrees once and is pointer-cheap afterwards.

**Symmetry reduction.**  Replicated sessions that differ only by a
permutation of structurally identical copies are merged at the
canonical-key level — see the symmetry section of
:mod:`repro.semantics.canonical`, which owns the machinery (key
assembly cannot depend on this module).

Modes are selected with :func:`set_reduction_mode` (CLI flag
``--reduce {none,por,sym,full}``) or the environment
(``REPRO_REDUCTION``, with the ``REPRO_NO_REDUCTION`` escape hatch
winning), both read at import so spawn-context suite/serve/cluster
workers inherit the parent's choice, like ``REPRO_NO_STATE_CACHE``.
Effectiveness is observable through the ``reduction.ample_hit`` /
``reduction.sym_merge`` counters published by the exploration loops.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.core.addresses import Location
from repro.core.errors import SemanticsError
from repro.core.processes import Input, Output, Parallel, Process, Restriction
from repro.core.terms import Localized, Name, payload
from repro.semantics import canonical
from repro.semantics.actions import Transition
from repro.semantics.canonical import (
    NO_REDUCTION_ENV,
    REDUCTION_ENV,
    REDUCTION_MODES,
    env_reduction_mode,
)
from repro.semantics.system import System
from repro.semantics.transitions import StepBatch, StepInfo, batched_successors

__all__ = [
    "MODES",
    "NO_REDUCTION_ENV",
    "REDUCTION_ENV",
    "independent",
    "metrics_snapshot",
    "permute_sessions",
    "por_enabled",
    "publish_reduction_metrics",
    "reduced_successors",
    "reduction_mode",
    "set_reduction_mode",
    "sym_enabled",
]

MODES = REDUCTION_MODES

_mode: str = env_reduction_mode()
canonical.set_symmetry_enabled(_mode in {"sym", "full"})

_ample_hits = 0


def reduction_mode() -> str:
    """The active reduction mode (``none``/``por``/``sym``/``full``)."""
    return _mode


def set_reduction_mode(mode: str) -> str:
    """Select the reduction mode; returns the previous one.

    Clears the canonical caches on a change: state keys and memoized
    batches computed under one mode must never leak into another.
    """
    global _mode
    if mode not in MODES:
        raise ValueError(f"unknown reduction mode {mode!r} (expected one of {MODES})")
    previous = _mode
    _mode = mode
    if previous != mode:
        canonical.set_symmetry_enabled(mode in {"sym", "full"})
        canonical.clear_caches()
    return previous


def por_enabled() -> bool:
    return _mode in {"por", "full"}


def sym_enabled() -> bool:
    return _mode in {"sym", "full"}


@contextmanager
def suspended() -> Iterator[None]:
    """Run a block with all reduction off, restoring the mode after.

    For analyses that need the *full, location-exact* transition system:
    branching-sensitive equivalences (bisimulation, must-testing) are
    not preserved by partial-order reduction, and per-copy diagnostics
    (session hooking reports) must not merge permuted sessions.
    Switching modes drops the canonical caches, so this is for cold
    paths only.
    """
    previous = set_reduction_mode("none")
    try:
        yield
    finally:
        set_reduction_mode(previous)


# ----------------------------------------------------------------------
# Independence
# ----------------------------------------------------------------------


def independent(a: StepInfo, b: StepInfo) -> bool:
    """Are two enabled steps independent?

    Sufficient criterion: the four involved leaves are pairwise
    distinct — the steps rewrite disjoint subtrees, so they commute and
    neither can disable the other.  Leaf locations are value tuples, so
    the relation is symmetric by construction and stable under
    interning of the underlying states.
    """
    return not ({a.out_leaf, a.in_leaf} & {b.out_leaf, b.in_leaf})


#: Occurrence memo: id(interned node) -> (names occurring anywhere in
#: the subtree, does any prefix have a non-name channel subject).
#: Registered with the canonical clear hooks so entries never outlive
#: the intern table.
_occ_memo: dict[int, tuple[frozenset, bool]] = {}
canonical.register_clear_hook(_occ_memo.clear)


def _occurrences(node, memo: Optional[dict]) -> tuple[frozenset, bool]:
    """All names in a subtree and whether it has a variable channel
    subject — computed over the interned arena when caching, so shared
    subtrees are scanned once."""
    if memo is not None:
        hit = memo.get(id(node))
        if hit is not None:
            return hit
    names: set = set()
    var_subject = False
    stack = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, Name):
            names.add(cur)
            continue
        if memo is not None and cur is not node:
            sub = memo.get(id(cur))
            if sub is not None:
                names.update(sub[0])
                var_subject = var_subject or sub[1]
                continue
        if isinstance(cur, (Output, Input)):
            if not isinstance(payload(cur.channel.subject), Name):
                var_subject = True
        for field in getattr(cur, "__dataclass_fields__", {}):
            value = getattr(cur, field)
            if isinstance(value, (tuple, list)):
                for item in value:
                    if hasattr(item, "__dataclass_fields__"):
                        stack.append(item)
            elif hasattr(value, "__dataclass_fields__"):
                stack.append(value)
    result = (frozenset(names), var_subject)
    if memo is not None:
        memo[id(node)] = result
    return result


def _confined(root: Process, allowed: tuple[Location, ...], channel: Name, caching: bool) -> bool:
    """Is every use of ``channel`` (and every variable channel subject)
    inside the leaf subtrees at ``allowed``?"""
    memo = _occ_memo if caching else None

    def go(node: Process, at: Location) -> bool:
        if at in allowed:
            return True
        if isinstance(node, Parallel):
            return go(node.left, at + (0,)) and go(node.right, at + (1,))
        if isinstance(node, Restriction):
            return go(node.body, at)
        names, var_subject = _occurrences(node, memo)
        return channel not in names and not var_subject

    return go(root, ())


# ----------------------------------------------------------------------
# Reduced successor generation
# ----------------------------------------------------------------------


def reduced_successors(
    system: System,
    is_visited: Optional[Callable[[Transition], bool]] = None,
    externally_visible: Optional[Callable[[StepInfo], bool]] = None,
) -> list[Transition]:
    """The transitions an exploration must expand from ``system``.

    With partial-order reduction off (or no ample candidate), this is
    exactly ``successors(system)``.  ``is_visited`` implements the
    cycle proviso: it receives a candidate ample transition and returns
    True when its target state counts as already visited, in which case
    the reducer falls back to full expansion.  Callers that cannot
    supply it (diagnostics, traces) get full expansion.
    ``externally_visible`` lets the environment-sensitive semantics
    veto candidates whose channel the attacker could interact with
    (a derivable restricted channel is not invisible *to the
    environment*).
    """
    global _ample_hits
    batch = batched_successors(system)
    transitions = list(batch.transitions)
    if not por_enabled() or is_visited is None or len(transitions) < 2:
        return transitions
    caching = canonical.cache_enabled()
    private = system.private
    leaf_counts = batch.leaf_counts
    for step, info in zip(batch.transitions, batch.infos):
        if info.channel not in private:
            continue  # visible: firing it alone could hide a barb
        if info.unfolds:
            # Replication unfolds never commit their leaf: the template
            # survives the step, so an ample chain of unfolds is an
            # infinite fresh-state path on which deferred transitions
            # would be ignored forever (no cycle for the proviso).
            continue
        if leaf_counts.get(info.out_leaf, 0) != 1:
            continue
        if leaf_counts.get(info.in_leaf, 0) != 1:
            continue
        if externally_visible is not None and externally_visible(info):
            continue
        if not _confined(system.root, (info.out_leaf, info.in_leaf), info.channel, caching):
            continue
        if is_visited(step):
            continue  # cycle proviso: expand fully instead
        _ample_hits += 1
        return [step]
    return transitions


# ----------------------------------------------------------------------
# Session permutation (test helper and specification witness)
# ----------------------------------------------------------------------


def permute_sessions(system: System, head: Location, order: tuple[int, ...]) -> System:
    """The system with the replicated sessions at ``head`` permuted.

    ``head`` locates a spine — a right-nested parallel chain ending in
    a replication template — and ``order`` gives, for each slot
    position, the index of the original slot to place there.  Creator
    locations throughout the system (names, localized values, the
    private set) are rewritten consistently, so the result is the
    behaviourally equivalent state the symmetry argument promises: the
    canonical symmetric key is invariant under this operation.
    """
    from repro.core.processes import subprocess_at

    node = subprocess_at(system.root, head)
    chain = canonical._chain(node)
    if chain is None:
        raise SemanticsError(f"no replicated-session spine at {head!r}")
    slots, template = chain
    k = len(slots)
    if sorted(order) != list(range(k)):
        raise SemanticsError(f"order {order!r} is not a permutation of range({k})")
    old_slots = [head + (1,) * i + (0,) for i in range(k)]
    moves = {}
    for new_index, old_index in enumerate(order):
        if old_index != new_index:
            moves[old_slots[old_index]] = old_slots[new_index]
    rebuilt: Process = template
    for i in reversed(range(k)):
        rebuilt = Parallel(slots[order[i]], rebuilt)

    def rebuild(node: Process, at: Location) -> Process:
        if at == head:
            return rebuilt
        if not isinstance(node, Parallel):
            raise SemanticsError(f"spine head {head!r} not in tree")
        if head[: len(at) + 1] == at + (0,):
            return Parallel(rebuild(node.left, at + (0,)), node.right)
        return Parallel(node.left, rebuild(node.right, at + (1,)))

    new_root = rebuild(system.root, ()) if head else rebuilt
    if not moves:
        return system
    ordered = sorted(moves.items(), key=lambda item: len(item[0]), reverse=True)

    def move_loc(loc):
        if loc is None:
            return None
        for old, new in ordered:
            if loc[: len(old)] == old:
                return new + loc[len(old):]
        return loc

    def rewrite(value):
        if isinstance(value, Name):
            moved = move_loc(value.creator)
            if moved is value.creator:
                return value
            return Name(value.base, value.uid, moved)
        if isinstance(value, Localized):
            return Localized(move_loc(value.creator), rewrite(value.term))
        if not hasattr(value, "__dataclass_fields__"):
            return value
        changed = False
        updates = {}
        for field in value.__dataclass_fields__:
            old = getattr(value, field)
            if isinstance(old, tuple) and old and hasattr(old[0], "__dataclass_fields__"):
                new = tuple(rewrite(item) for item in old)
                same = all(a is b for a, b in zip(old, new))
            elif hasattr(old, "__dataclass_fields__"):
                new = rewrite(old)
                same = new is old
            else:
                continue
            if not same:
                changed = True
                updates[field] = new
        if not changed:
            return value
        import dataclasses

        return dataclasses.replace(value, **updates)

    import dataclasses

    return dataclasses.replace(
        system,
        root=rewrite(new_root),
        private=frozenset(rewrite(n) for n in system.private),
        _key_cache=None,
    )


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------


def metrics_snapshot() -> tuple[int, int]:
    """Monotonic ``(ample hits, symmetry reorders)`` counters —
    snapshot before a run, diff after, publish the delta."""
    return (_ample_hits, canonical.sym_reorder_count())


_METRIC_NAMES = ("reduction.ample_hit", "reduction.sym_merge")


def publish_reduction_metrics(metrics, before: tuple[int, int]) -> None:
    """Publish counter deltas since ``before`` to a metrics registry."""
    after = metrics_snapshot()
    for name, b, a in zip(_METRIC_NAMES, before, after):
        if a > b:
            metrics.inc(name, a - b)
