"""Administrative normalization of states.

Matching, address matching, decryption and pair splitting are *guards*:
the SOS gives ``[M = M]P`` exactly the transitions of ``P``.  Once a
guard's data are bound they never change, so a guard either passes now
or is stuck forever.  Normalization therefore:

* replaces a passing guard by its (substituted) continuation, which may
  expose parallel structure — the tree of sequential processes grows
  downward at the leaf, exactly where the instantiation pass predicted
  restricted names would be created;
* replaces a permanently stuck guard by ``0`` (behaviourally identical,
  and it lets alpha-invariant deduplication merge dead states).

The tree is never pruned: ``P | 0`` keeps its shape so that existing
absolute locations — and with them every relative address already
handed out — stay valid.
"""

from __future__ import annotations

from repro.core.addresses import Location
from repro.core.processes import (
    AddrMatch,
    Case,
    IntCase,
    Match,
    Nil,
    Parallel,
    Process,
    Restriction,
    Split,
)
from repro.core.substitution import subst
from repro.semantics import guards as _rules


def normalize(proc: Process, at: Location = ()) -> Process:
    """Evaluate all exposed guards and surface parallel structure."""
    if isinstance(proc, Parallel):
        return Parallel(normalize(proc.left, at + (0,)), normalize(proc.right, at + (1,)))
    if isinstance(proc, Restriction):
        # Live restrictions only exist transiently (callers instantiate
        # before normalizing); keep them transparent for addressing.
        return Restriction(proc.name, normalize(proc.body, at))
    if isinstance(proc, Match):
        if _rules.match_passes(proc.left, proc.right, at):
            return normalize(proc.continuation, at)
        return Nil()
    if isinstance(proc, AddrMatch):
        if _rules.addr_match_passes(proc.left, proc.right, at):
            return normalize(proc.continuation, at)
        return Nil()
    if isinstance(proc, Case):
        parts = _rules.decrypt(proc.scrutinee, proc.key, len(proc.binders))
        if parts is None:
            return Nil()
        return normalize(subst(proc.continuation, dict(zip(proc.binders, parts))), at)
    if isinstance(proc, IntCase):
        branch = _rules.int_case(proc.scrutinee)
        if branch is None:
            return Nil()
        kind, inner = branch
        if kind == "zero":
            return normalize(proc.zero_branch, at)
        return normalize(subst(proc.succ_branch, {proc.binder: inner}), at)
    if isinstance(proc, Split):
        parts = _rules.split_pair(proc.scrutinee)
        if parts is None:
            return Nil()
        opened = subst(proc.continuation, {proc.first: parts[0], proc.second: parts[1]})
        return normalize(opened, at)
    return proc
