"""Checkpoint/resume for long-running explorations.

A deadline-expired, cancelled or killed exploration should not throw its
work away: the partial :class:`~repro.semantics.lts.Graph` already
carries everything needed to continue — the visited set, the recorded
edges and the unexpanded frontier (``Graph.pending``).  This module
serializes that bundle to disk so a later process picks up where the
earlier one stopped.

Format: a pickled :class:`Checkpoint` (visited systems are plain frozen
dataclasses, so the standard pickle protocol round-trips them; canonical
state keys are alpha-invariant renderings and therefore stable across
processes).  Writes are atomic (temp file + ``os.replace``) so a crash
mid-save never corrupts an existing checkpoint.

Security note: pickle executes code on load.  Only load checkpoints you
wrote yourself — the file is a cache of your own computation, not an
interchange format.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ReproError
from repro.runtime.atomic import atomic_dump
from repro.runtime.deadline import RunControl
from repro.semantics.lts import Budget, Graph, resume_exploration

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or from another format."""


@dataclass
class Checkpoint:
    """A saved exploration: the partial graph plus the budget in force.

    ``budget`` is informational — resuming may use any budget (that is
    exactly how escalation reuses prior work).
    """

    graph: Graph
    budget: Budget
    version: int = FORMAT_VERSION

    @property
    def exact(self) -> bool:
        """True when there is nothing left to resume."""
        return not self.graph.pending and self.graph.exhaustion is None

    def resume(
        self,
        budget: Optional[Budget] = None,
        control: Optional[RunControl] = None,
    ) -> Graph:
        """Continue the saved exploration (default: the saved budget)."""
        return resume_exploration(
            self.graph, budget if budget is not None else self.budget, control
        )

    def save(self, path: str) -> None:
        """Atomically write the checkpoint to ``path``.

        Same-directory temp file, fsync, then ``os.replace`` (see
        :mod:`repro.runtime.atomic`): a kill mid-save can never leave a
        truncated checkpoint that poisons a later ``--resume``.
        """
        atomic_dump(
            path,
            lambda handle: pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL),
        )

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        """Read a checkpoint back; raises :class:`CheckpointError` on any
        malformed or incompatible file."""
        try:
            with open(path, "rb") as handle:
                loaded = pickle.load(handle)
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint at {path!r}")
        except Exception as err:
            # pickle surfaces corruption through a zoo of exception
            # types (UnpicklingError, EOFError, Attribute/Import/Index/
            # Key/Value errors from truncated opcodes); to a caller they
            # all mean one thing: this is not a loadable checkpoint.
            raise CheckpointError(f"corrupt checkpoint {path!r}: {err}")
        if not isinstance(loaded, cls):
            raise CheckpointError(
                f"{path!r} does not contain a checkpoint (got {type(loaded).__name__})"
            )
        if loaded.version != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} has format version {loaded.version}, "
                f"this library reads version {FORMAT_VERSION}"
            )
        return loaded


def load_checkpoint(path: str) -> Checkpoint:
    """Convenience alias for :meth:`Checkpoint.load`."""
    return Checkpoint.load(path)
