"""Resilient verification runtime.

Cross-cutting machinery that makes every bounded check in the library
survive hostile inputs:

* :mod:`repro.runtime.exhaustion` — the structured :class:`Exhaustion`
  record that replaced the boolean ``truncated`` flag;
* :mod:`repro.runtime.deadline` — wall-clock :class:`Deadline`,
  :class:`CancelToken` and the ambient :func:`governed` control;
* :mod:`repro.runtime.faults` — the fault-injection harness used to
  prove graceful degradation;
* :mod:`repro.runtime.checkpoint` — serialize an in-progress
  exploration (visited set + frontier) to disk and resume it;
* :mod:`repro.runtime.escalation` — adaptive budget escalation: retry a
  truncated run with geometrically growing budgets, reusing prior work,
  until the result is exact or a hard ceiling is hit;
* :mod:`repro.runtime.journal` — crash-safe append-only JSONL result
  journal (fsync'd appends, torn-tail-tolerant reload);
* :mod:`repro.runtime.worker` — JSON-serializable verification
  :class:`Job` descriptions and the pool-worker process entry point;
* :mod:`repro.runtime.supervisor` — the supervised parallel suite
  runner: process-isolated workers with crash/OOM/hang recovery.

Import note: the semantics layer imports the dependency-free modules
(``exhaustion``, ``deadline``, ``faults``), while ``checkpoint`` and
``escalation`` import the semantics layer.  To keep that acyclic this
package eagerly exposes only the former and loads the latter lazily via
module ``__getattr__``.
"""

from __future__ import annotations

from repro.runtime.deadline import (
    CancelToken,
    Deadline,
    RunControl,
    current_control,
    governed,
    resolve_control,
)
from repro.runtime.exhaustion import Exhaustion
from repro.runtime.faults import FaultError, FaultInjector, FaultPlan, inject_faults

#: Names served lazily from the heavier modules (see module docstring).
_LAZY = {
    "Checkpoint": "repro.runtime.checkpoint",
    "CheckpointError": "repro.runtime.checkpoint",
    "load_checkpoint": "repro.runtime.checkpoint",
    "Attempt": "repro.runtime.escalation",
    "EscalationPolicy": "repro.runtime.escalation",
    "EscalationReport": "repro.runtime.escalation",
    "escalate": "repro.runtime.escalation",
    "explore_escalating": "repro.runtime.escalation",
    "estimate_graph_memory_mb": "repro.runtime.escalation",
    "Journal": "repro.runtime.journal",
    "JournalError": "repro.runtime.journal",
    "read_journal": "repro.runtime.journal",
    "journaled_results": "repro.runtime.journal",
    "Job": "repro.runtime.worker",
    "JobError": "repro.runtime.worker",
    "run_job": "repro.runtime.worker",
    "JobOutcome": "repro.runtime.supervisor",
    "SuiteReport": "repro.runtime.supervisor",
    "SupervisorError": "repro.runtime.supervisor",
    "run_suite": "repro.runtime.supervisor",
    "zoo_jobs": "repro.runtime.supervisor",
}

__all__ = [
    "CancelToken",
    "Deadline",
    "Exhaustion",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "RunControl",
    "current_control",
    "governed",
    "inject_faults",
    "resolve_control",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    # Cache every lazy name the module provides so subsequent lookups
    # skip this hook.
    for lazy_name, lazy_module in _LAZY.items():
        if lazy_module == module_name:
            globals()[lazy_name] = getattr(module, lazy_name)
    return globals()[name]
