"""Fault injection for the verification engine.

The engine's resilience claims ("a failing successor computation
degrades a verdict to *inconclusive*, it never corrupts it") are only
worth anything if they are tested.  This module provides the test
instrument: a configurable plan of failures and latency injected into
the two hot primitives every exploration leans on —

* ``successors()`` (:mod:`repro.semantics.transitions`), and
* canonicalization (:meth:`System.canonical_key`).

Instrumentation is *cooperative*, not monkeypatching: the instrumented
functions call :func:`fault_hook` at their entry, which is a no-op
(a single ``None`` check) unless a plan is active.  That keeps the
injection visible to every caller — direct, via the LTS, via the
environment semantics — without patching import-bound references.

Usage::

    with inject_faults(FaultPlan(fail_at=(5,))) as injector:
        graph = explore(system, budget)
    assert graph.exhaustion.reason == "fault"
    assert injector.failures == 1
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from repro.core.errors import ReproError

#: Instrumented call sites.
SUCCESSORS = "successors"
CANONICAL = "canonical"

#: Exit status of a hard-crash injection (``FaultPlan.exit_at``);
#: BSD's EX_SOFTWARE, recognizable in worker post-mortems.
CRASH_EXIT_CODE = 70


class FaultError(ReproError):
    """An injected (or wrapped transient) failure of an engine primitive.

    Exploration loops catch this, record a structured exhaustion with
    reason ``"fault"``, and carry on with the remaining states — the
    failing state simply stays unexpanded (and resumable).
    """


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """What to inject, where, and how often.

    Attributes:
        fail_at: 1-based call ordinals that fail deterministically.
        every: additionally fail every ``every``-th call.
        failure_rate: probability of failure per call (seeded PRNG, so a
            given plan misbehaves reproducibly).
        latency: seconds of sleep injected into every instrumented call
            (for exercising deadlines without giant state spaces).
        exit_at: 1-based call ordinals at which the *whole process*
            exits immediately (``os._exit``) instead of raising — a
            deterministic stand-in for a crash or OOM kill, used to
            test the supervised worker pool's recovery path.  Nothing
            in-process can catch it, exactly like the real thing.
        sites: which call sites are live (default: ``successors`` only).
        seed: PRNG seed for ``failure_rate``.
    """

    fail_at: tuple[int, ...] = ()
    every: Optional[int] = None
    failure_rate: float = 0.0
    latency: float = 0.0
    exit_at: tuple[int, ...] = ()
    sites: frozenset[str] = frozenset({SUCCESSORS})
    seed: int = 0

    def to_json(self) -> dict:
        """A JSON-serializable description (inverse of :meth:`from_json`).

        Used to ship plans across the spawn boundary to pool workers and
        to accept ``--fault-plan`` on the command line.
        """
        return {
            "fail_at": list(self.fail_at),
            "every": self.every,
            "failure_rate": self.failure_rate,
            "latency": self.latency,
            "exit_at": list(self.exit_at),
            "sites": sorted(self.sites),
            "seed": self.seed,
        }

    @staticmethod
    def from_json(data: Mapping) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output (unknown keys are
        rejected so typos in hand-written plans fail loudly)."""
        unknown = set(data) - {
            "fail_at", "every", "failure_rate", "latency", "exit_at", "sites", "seed",
        }
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return FaultPlan(
            fail_at=tuple(data.get("fail_at", ())),
            every=data.get("every"),
            failure_rate=float(data.get("failure_rate", 0.0)),
            latency=float(data.get("latency", 0.0)),
            exit_at=tuple(data.get("exit_at", ())),
            sites=frozenset(data.get("sites", (SUCCESSORS,))),
            seed=int(data.get("seed", 0)),
        )


@dataclass
class FaultInjector:
    """A live plan plus its call/failure counters."""

    plan: FaultPlan
    calls: int = 0
    failures: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.plan.seed)

    def fire(self, site: str) -> None:
        plan = self.plan
        if site not in plan.sites:
            return
        self.calls += 1
        if plan.latency > 0.0:
            time.sleep(plan.latency)
        ordinal = self.calls
        if ordinal in plan.exit_at:
            # A simulated hard crash: no exception, no cleanup, no
            # chance for the caller to degrade gracefully.
            os._exit(CRASH_EXIT_CODE)
        hit = (
            ordinal in plan.fail_at
            or (plan.every is not None and plan.every > 0 and ordinal % plan.every == 0)
            or (plan.failure_rate > 0.0 and self._rng.random() < plan.failure_rate)
        )
        if hit:
            self.failures += 1
            raise FaultError(f"injected fault at {site!r} call #{ordinal}")


_active: Optional[FaultInjector] = None


def fault_hook(site: str) -> None:
    """Called by instrumented primitives; free when no plan is active."""
    if _active is not None:
        _active.fire(site)


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Activate ``plan`` for the enclosed block (nesting shadows)."""
    global _active
    injector = FaultInjector(plan)
    previous = _active
    _active = injector
    try:
        yield injector
    finally:
        _active = previous
