"""Graceful-drain signal handling, shared by ``suite`` and ``serve``.

Both long-running entry points want the same SIGINT/SIGTERM contract:

* the **first** signal requests a *drain* — stop taking on new work,
  finish (or checkpoint) what is in flight, flush the journal, and exit
  through the normal cleanup path;
* a **second** signal means the operator is out of patience: raise
  ``KeyboardInterrupt`` so the ordinary teardown (``finally`` blocks,
  pool SIGKILLs) runs immediately.

:func:`drain_signals` packages that as a context manager yielding a
``threading.Event`` that flips on the first signal.  Handlers are only
installable from the main thread; elsewhere (tests driving servers from
worker threads) the context degrades to a plain never-set event, and the
caller triggers draining programmatically instead.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence

#: The signals a service process is expected to drain on.
DRAIN_SIGNALS: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)


@contextmanager
def drain_signals(
    signals: Sequence[int] = DRAIN_SIGNALS,
    on_signal: Optional[Callable[[int], None]] = None,
) -> Iterator[threading.Event]:
    """Install first-signal-drains / second-signal-interrupts handlers.

    Yields the drain event.  ``on_signal`` (if given) runs inside the
    handler after the event is set — keep it tiny and reentrant-safe
    (setting another event, writing a flag); it exists so a server can
    wake its select loop promptly rather than noticing on the next tick.
    Previous handlers are restored on exit.
    """
    drain = threading.Event()

    def handler(signum: int, frame) -> None:
        if drain.is_set():
            raise KeyboardInterrupt
        drain.set()
        if on_signal is not None:
            on_signal(signum)

    previous: dict[int, object] = {}
    try:
        for signum in signals:
            previous[signum] = signal.signal(signum, handler)
    except ValueError:
        # Not the main thread: signal delivery is the main thread's
        # business anyway.  Undo any partial installation and fall back
        # to a programmatic-drain-only event.
        for signum, old in previous.items():
            signal.signal(signum, old)
        previous = {}
    try:
        yield drain
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
