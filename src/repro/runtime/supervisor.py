"""Supervised parallel verification: a crash-tolerant worker pool.

Real verification runs are *batches* — Definition 4 quantifies over
attackers and testers, so checking a protocol zoo means dozens of
independent bounded jobs.  This module makes fleets of runs resilient
the way :mod:`repro.runtime.deadline` made single runs resilient: a
worker crash, OOM kill, or hang costs one job's increment of work, not
the batch.

Architecture:

* a :class:`WorkerPool` owns the *process mechanics*: a pool of
  ``multiprocessing`` *spawn*-context workers, each with its own duplex
  pipe (a killed worker can only corrupt its own channel), a watchdog
  thread that SIGKILLs workers over their RSS limit, past their hard
  deadline, or missing heartbeats, and a reaper that turns dead
  processes into events.  The pool is long-lived and reusable — the
  batch runner below and the verification service
  (:mod:`repro.service.server`) drive the same pool;
* each **worker** (:mod:`repro.runtime.worker`) executes one job at a
  time, streams heartbeats from a daemon thread, and autosaves
  periodic exploration checkpoints;
* :func:`run_suite` supplies the *batch policy* on top: a queue of
  :class:`Job`\\ s, exponential-backoff retries resuming from
  checkpoints, degradation to qualified fault verdicts when retries run
  out, and a crash-safe :class:`~repro.runtime.journal.Journal` so a
  killed *supervisor* resumes a batch by skipping journaled jobs.

Failure handling matrix:

========================  =============================================
observed failure          response
========================  =============================================
worker exits / signalled  retry with exponential backoff; ``explore``
                          jobs resume from the last autosaved
                          checkpoint
RSS over ``max_rss_mb``   SIGKILL ("oom"), then retry/resume as above
hard deadline exceeded    SIGKILL ("hang"), then retry/resume
missed heartbeats         SIGKILL ("stalled"), then retry/resume
job raises in-process     worker survives; same retry path
retries exhausted         degrade to a qualified partial verdict with
                          ``Exhaustion(reason="fault")`` — the batch
                          still completes
corrupt checkpoint        the retried attempt restarts from scratch
supervisor killed         ``resume=True`` re-runs only un-journaled
                          jobs
SIGINT/SIGTERM (drain)    stop dispatching, let in-flight jobs finish,
                          flush the journal; un-run jobs stay
                          un-journaled so ``--resume`` completes them
========================  =============================================
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Iterable, Optional, Sequence

from repro.core.errors import ReproError
from repro.obs.metrics import current_metrics
from repro.obs.stats import SuiteStats
from repro.obs.trace import trace_event
from repro.runtime.exhaustion import Exhaustion
from repro.runtime.faults import FaultPlan
from repro.runtime.journal import Journal, journaled_results
from repro.runtime.worker import Job, JobError, worker_main

#: Outcome statuses.
OK = "ok"            #: the job produced a verdict (possibly qualified)
FAULT = "fault"      #: retries exhausted; degraded to a partial verdict
SKIPPED = "skipped"  #: already journaled; not re-run (``resume=True``)


class SupervisorError(ReproError):
    """The suite runner was misconfigured (duplicate ids, bad plan...)."""


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JobOutcome:
    """Final fate of one job in a supervised suite.

    ``status`` is ``"ok"`` (verdicted, possibly qualified), ``"fault"``
    (retry budget exhausted — ``result`` then carries an
    ``Exhaustion(reason="fault")`` record and whatever partial progress
    a checkpoint preserved) or ``"skipped"`` (verdicted by an earlier,
    journaled run).  ``events`` narrates crashes and retries.
    """

    job: Job
    status: str
    attempts: int
    elapsed: float
    result: Optional[dict] = None
    error: Optional[str] = None
    events: tuple[str, ...] = ()

    @property
    def violated(self) -> bool:
        """True when the verdict reports a broken property/attack."""
        return bool(self.result and self.result.get("violated"))

    @property
    def exact(self) -> bool:
        return bool(self.result and self.result.get("exact"))

    def describe(self) -> str:
        if self.status == FAULT:
            return f"{self.job.id}: FAULT after {self.attempts} attempt(s) ({self.error})"
        summary = (self.result or {}).get("summary", "no result")
        prefix = "skipped, " if self.status == SKIPPED else ""
        retries = f", {self.attempts} attempt(s)" if self.attempts > 1 else ""
        return f"{self.job.id}: {prefix}{summary}{retries}"


@dataclass(frozen=True)
class SuiteReport:
    """Everything a suite run produced, in job-submission order.

    ``drained`` marks a run stopped early by a drain request (SIGINT/
    SIGTERM): in-flight jobs were allowed to finish, but queued jobs
    never ran and are absent from ``outcomes`` — re-run the batch with
    ``resume=True`` to complete them.
    """

    outcomes: tuple[JobOutcome, ...]
    elapsed: float
    workers: int
    spawned: int = 0
    drained: bool = False
    submitted: int = 0

    def by_status(self, status: str) -> tuple[JobOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == status)

    @property
    def completed(self) -> bool:
        """Every submitted job is verdicted (ok, degraded, or skipped)."""
        if self.submitted and len(self.outcomes) < self.submitted:
            return False
        return all(o.status in (OK, FAULT, SKIPPED) for o in self.outcomes)

    @property
    def violations(self) -> tuple[JobOutcome, ...]:
        return tuple(o for o in self.outcomes if o.violated)

    def records(self) -> list[dict]:
        """The outcomes as journal-shaped result records."""
        return [
            {
                "job": o.job.id,
                "status": o.status,
                "attempts": o.attempts,
                "elapsed": round(o.elapsed, 4),
                "result": o.result,
                "error": o.error,
                "events": list(o.events),
            }
            for o in self.outcomes
        ]

    def stats(self) -> SuiteStats:
        """Aggregate per-job stat blocks into one :class:`SuiteStats`."""
        return SuiteStats.from_records(
            self.records(),
            wall_seconds=self.elapsed,
            workers=self.workers,
            spawned=self.spawned or None,
        )

    def describe(self) -> str:
        parts = [
            f"suite: {len(self.outcomes)} job(s) on {self.workers} worker(s) "
            f"in {self.elapsed:.2f}s"
        ]
        skipped = len(self.by_status(SKIPPED))
        faults = len(self.by_status(FAULT))
        if skipped:
            parts.append(f"skipped {skipped} journaled job(s)")
        if faults:
            parts.append(f"{faults} degraded to fault verdicts")
        if self.violations:
            parts.append(f"{len(self.violations)} property violation(s)")
        if self.drained:
            unrun = max(0, self.submitted - len(self.outcomes))
            parts.append(f"drained with {unrun} job(s) unrun (resume to complete)")
        return "; ".join(parts)


# ----------------------------------------------------------------------
# Pool bookkeeping
# ----------------------------------------------------------------------


@dataclass
class _Pending:
    """A job waiting to run (or running), with its retry state."""

    job: Job
    attempt: int = 1
    ready_at: float = 0.0
    started_first: Optional[float] = None
    events: list[str] = field(default_factory=list)


@dataclass
class _Worker:
    """Supervisor-side handle of one pool process.

    ``current`` is an opaque caller-owned payload (the suite runner
    stores a :class:`_Pending`, the service a ticket) — the pool only
    uses it to mean "busy" and hands it back on death.
    ``hard_deadline`` optionally overrides the pool-wide hard deadline
    for the job in flight (services dispatch per-request deadlines).
    """

    index: int
    proc: multiprocessing.process.BaseProcess
    conn: mp_connection.Connection
    current: Optional[object] = None
    started_at: float = 0.0
    last_beat: float = 0.0
    kill_reason: Optional[str] = None
    hard_deadline: Optional[float] = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid


def _rss_mb(pid: Optional[int]) -> Optional[float]:
    """Resident set size of a process in MiB via /proc (None off-Linux)."""
    if pid is None:
        return None
    try:
        with open(f"/proc/{pid}/statm", "rb") as handle:
            fields = handle.read().split()
        import resource

        return int(fields[1]) * resource.getpagesize() / (1024 * 1024)
    except (OSError, IndexError, ValueError):
        return None


def _kill_reason(
    worker: _Worker,
    now: float,
    max_rss_mb: Optional[float],
    hard_deadline: Optional[float],
    heartbeat_grace: float,
    rss_of: Callable[[Optional[int]], Optional[float]] = _rss_mb,
) -> Optional[str]:
    """Why the watchdog should SIGKILL this worker now, or ``None``.

    Pure decision logic (injectable RSS reader) so the policy is unit
    testable without real processes.  Only busy workers are judged: an
    idle worker holds no job to protect, and a dead idle worker is
    reaped by the main loop anyway.
    """
    if worker.current is None:
        return None
    if max_rss_mb is not None:
        rss = rss_of(worker.pid)
        if rss is not None and rss > max_rss_mb:
            return f"oom: rss {rss:.0f}MiB > {max_rss_mb:.0f}MiB"
    if hard_deadline is not None and now - worker.started_at > hard_deadline:
        return f"hang: job exceeded hard deadline {hard_deadline:.1f}s"
    if now - worker.last_beat > heartbeat_grace:
        return f"stalled: no heartbeat for {now - worker.last_beat:.1f}s"
    return None


# ----------------------------------------------------------------------
# The reusable worker pool
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PoolEvent:
    """One thing the pool observed during :meth:`WorkerPool.poll`.

    ``kind`` is ``"message"`` (a non-heartbeat worker message; see
    :func:`repro.runtime.worker.worker_main` for the schema) or
    ``"exit"`` (the process died — ``description`` says how, and
    ``current`` hands back whatever payload the worker was holding so
    the caller can retry or fail it).
    """

    kind: str
    worker: _Worker
    message: Optional[dict] = None
    description: Optional[str] = None
    current: Optional[object] = None


class WorkerPool:
    """A long-lived supervised pool of spawn-context worker processes.

    The pool owns *process mechanics only*: spawning and replacing
    workers, the heartbeat/RSS/deadline watchdog, SIGKILL, reaping, and
    the pipe plumbing.  What a job *means* — retries, degradation,
    journaling, client responses — stays with the caller, which is why
    both the one-shot batch runner (:func:`run_suite`) and the
    long-running verification service drive the same class.

    Args:
        size: target number of live workers (:meth:`ensure` tops up to
            this after crashes).
        heartbeat_interval: watchdog scan period and worker heartbeat
            period.
        heartbeat_grace: missed-heartbeat window before a SIGKILL.
        max_rss_mb: per-worker RSS kill limit (needs /proc).
        hard_deadline: pool-wide wall-clock kill limit per dispatched
            job; :meth:`dispatch` may override per job.
        max_spawns: lifetime spawn budget — ``None`` for unbounded
            (services replace workers forever), a number to break
            pathological crash loops (batch runs).
    """

    def __init__(
        self,
        size: int,
        *,
        heartbeat_interval: float = 0.25,
        heartbeat_grace: float = 15.0,
        max_rss_mb: Optional[float] = None,
        hard_deadline: Optional[float] = None,
        max_spawns: Optional[int] = None,
        name: str = "repro-worker",
    ) -> None:
        if size < 1:
            raise SupervisorError("need at least one worker")
        self.size = size
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_grace = heartbeat_grace
        self.max_rss_mb = max_rss_mb
        self.hard_deadline = hard_deadline
        self.max_spawns = max_spawns
        self.name = name
        self.spawned = 0
        self._ctx = multiprocessing.get_context("spawn")
        self._pool: list[_Worker] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._next_index = 0
        self._watchdog = threading.Thread(
            target=self._watch, daemon=True, name=f"{name}-watchdog"
        )
        self._watchdog.start()

    # -- introspection -------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True when the lifetime spawn budget is spent."""
        return self.max_spawns is not None and self.spawned >= self.max_spawns

    def workers(self) -> list[_Worker]:
        with self._lock:
            return list(self._pool)

    def idle(self) -> list[_Worker]:
        return [
            w for w in self.workers()
            if w.current is None and w.kill_reason is None
        ]

    def busy(self) -> list[_Worker]:
        return [w for w in self.workers() if w.current is not None]

    def alive_count(self) -> int:
        with self._lock:
            return len(self._pool)

    # -- lifecycle -----------------------------------------------------

    def spawn(self) -> Optional[_Worker]:
        """Start one worker process (``None`` when the budget is spent)."""
        if self.exhausted:
            return None
        self.spawned += 1
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._next_index, self.heartbeat_interval),
            name=f"{self.name}-{self._next_index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(
            index=self._next_index, proc=proc, conn=parent_conn,
            last_beat=time.monotonic(),
        )
        self._next_index += 1
        with self._lock:
            self._pool.append(worker)
        return worker

    def ensure(self, target: Optional[int] = None) -> None:
        """Spawn until ``min(target, size)`` workers are alive (or the
        spawn budget runs out)."""
        goal = self.size if target is None else min(target, self.size)
        while self.alive_count() < goal:
            if self.spawn() is None:
                break

    def dispatch(
        self,
        worker: _Worker,
        payload: dict,
        current: object,
        hard_deadline: Optional[float] = None,
    ) -> bool:
        """Send ``payload`` to an idle worker, marking it busy with
        ``current``.  Returns ``False`` (and condemns the worker) when
        the pipe is already broken — the caller should requeue."""
        now = time.monotonic()
        worker.current = current
        worker.started_at = now
        worker.last_beat = now
        worker.hard_deadline = hard_deadline
        try:
            worker.conn.send(payload)
            return True
        except (BrokenPipeError, OSError):
            worker.current = None
            worker.hard_deadline = None
            self.kill(worker, "dispatch pipe broken")
            return False

    def release(self, worker: _Worker) -> None:
        """Mark a worker idle again (its job was fully handled)."""
        worker.current = None
        worker.hard_deadline = None

    def kill(self, worker: _Worker, reason: str) -> None:
        """Condemn a worker: record why and SIGKILL the process."""
        if worker.kill_reason is None:
            worker.kill_reason = reason
        self._sigkill(worker)

    def poll(self, timeout: float = 0.1) -> list[PoolEvent]:
        """Reap dead workers and drain worker messages.

        Returns ``"exit"`` events for processes found dead (their
        in-flight payload attached) followed by ``"message"`` events for
        everything workers sent (heartbeats are absorbed into
        ``last_beat`` and not surfaced).  Waits up to ``timeout`` for
        traffic; pass ``0`` for a non-blocking sweep.
        """
        events: list[PoolEvent] = []
        with self._lock:
            dead = [w for w in self._pool if not w.proc.is_alive()]
        for worker in dead:
            events.append(self._reap(worker))
        with self._lock:
            conns = {w.conn: w for w in self._pool}
        if not conns:
            if timeout:
                time.sleep(timeout)
            return events
        for conn in mp_connection.wait(list(conns), timeout=timeout):
            worker = conns[conn]
            try:
                while conn.poll():
                    message = conn.recv()
                    worker.last_beat = time.monotonic()
                    if (
                        isinstance(message, dict)
                        and message.get("type") != "heartbeat"
                    ):
                        events.append(PoolEvent("message", worker, message=message))
            except (EOFError, OSError):
                # Pipe torn: the process is dead or dying.  Make it
                # unambiguous; the next poll reaps it.
                self._sigkill(worker)
        return events

    def shutdown(self, timeout: float = 2.0) -> None:
        """Stop the watchdog and terminate every worker (politely, then
        with SIGKILL)."""
        self._stop.set()
        self._watchdog.join(timeout=timeout)
        with self._lock:
            leftovers = list(self._pool)
            self._pool.clear()
        for worker in leftovers:
            try:
                worker.conn.send({"type": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        for worker in leftovers:
            worker.proc.join(timeout=timeout)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=timeout)
            try:
                worker.conn.close()
            except OSError:
                pass

    # -- internals -----------------------------------------------------

    def _reap(self, worker: _Worker) -> PoolEvent:
        """Remove a dead worker; returns its ``"exit"`` event."""
        with self._lock:
            if worker in self._pool:
                self._pool.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=1.0)
        if worker.kill_reason is not None:
            description = f"worker killed ({worker.kill_reason})"
        else:
            code = worker.proc.exitcode
            if code is not None and code < 0:
                description = f"worker died on signal {-code}"
            else:
                description = f"worker exited with status {code}"
        current, worker.current = worker.current, None
        return PoolEvent("exit", worker, description=description, current=current)

    def _sigkill(self, worker: _Worker) -> None:
        if worker.pid is not None:
            try:
                os.kill(worker.pid, getattr(signal, "SIGKILL", signal.SIGTERM))
            except (OSError, ProcessLookupError):
                pass

    def _watch(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            now = time.monotonic()
            with self._lock:
                snapshot = list(self._pool)
            for worker in snapshot:
                hard = (
                    worker.hard_deadline
                    if worker.hard_deadline is not None
                    else self.hard_deadline
                )
                reason = _kill_reason(
                    worker, now, self.max_rss_mb, hard, self.heartbeat_grace
                )
                if reason is not None and worker.kill_reason is None:
                    worker.kill_reason = reason
                    trace_event("suite.kill", worker=worker.index, reason=reason)
                    self._sigkill(worker)


# ----------------------------------------------------------------------
# Suite assembly helpers
# ----------------------------------------------------------------------


def zoo_jobs(
    max_states: int = 4000,
    max_depth: int = 40,
    protocols: Optional[Iterable[str]] = None,
    kinds: Sequence[str] = ("secrecy", "authentication"),
) -> list[Job]:
    """The standard batch over the protocol zoo: for every protocol,
    one job per requested property kind (session-key secrecy against an
    eavesdropper, payload authentication against an impersonator)."""
    from repro.protocols.zoo import ZOO

    names = sorted(protocols) if protocols is not None else sorted(ZOO)
    unknown = [name for name in names if name not in ZOO]
    if unknown:
        raise SupervisorError(f"unknown zoo protocols: {unknown}")
    return [
        Job(
            id=f"zoo:{name}:{kind}",
            kind=kind,
            target={"zoo": name},
            max_states=max_states,
            max_depth=max_depth,
        )
        for name in names
        for kind in kinds
    ]


def job_checkpoint_path(job: Job, directory: Optional[str]) -> Optional[str]:
    """Where a job's exploration autosaves live (``None``: no autosave)."""
    if job.kind != "explore" or directory is None:
        return None
    safe = "".join(ch if ch.isalnum() or ch in "-._" else "_" for ch in job.id)
    return os.path.join(directory, f"{safe}.ckpt")


def checkpointed_states(job: Job, directory: Optional[str]) -> int:
    """States preserved in a job's autosave (0 when none is loadable)."""
    path = job_checkpoint_path(job, directory)
    if path is None or not os.path.exists(path):
        return 0
    from repro.runtime.checkpoint import Checkpoint, CheckpointError

    try:
        return Checkpoint.load(path).graph.state_count()
    except CheckpointError:
        return 0


# ----------------------------------------------------------------------
# The batch runner
# ----------------------------------------------------------------------


def run_suite(
    jobs: Sequence[Job],
    workers: int = 2,
    retries: int = 2,
    job_deadline: Optional[float] = None,
    max_rss_mb: Optional[float] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    retry_faults: bool = False,
    checkpoint_dir: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    fault_attempts: Sequence[int] = (1,),
    heartbeat_interval: float = 0.25,
    heartbeat_grace: float = 15.0,
    hang_grace: float = 5.0,
    backoff_base: float = 0.25,
    backoff_cap: float = 8.0,
    on_outcome: Optional[Callable[[JobOutcome], None]] = None,
    drain: Optional[threading.Event] = None,
    verdict_store: Optional[str] = None,
) -> SuiteReport:
    """Run a batch of verification jobs under supervision.

    Args:
        jobs: the batch; ids must be unique (they key the journal and
            checkpoint files).
        workers: pool size (spawn-context processes).
        retries: extra attempts per job after its first.
        job_deadline: cooperative per-job wall-clock limit in seconds;
            the watchdog hard-kills at ``1.5 × deadline + hang_grace``
            as a backstop for non-polling hangs.
        max_rss_mb: per-worker RSS limit; exceeding it is treated as an
            OOM (SIGKILL + retry).  Needs /proc; silently inactive
            elsewhere.
        journal_path: stream verdicts to this crash-safe JSONL file.
        resume: skip jobs already verdicted in ``journal_path``.
        retry_faults: with ``resume``, re-run jobs whose journaled
            verdict was a degraded ``"fault"`` — the way to complete a
            batch whose earlier run shed or degraded jobs (service
            drain, crash-looped workers).
        checkpoint_dir: where ``explore`` autosaves live (default: a
            temporary directory, removed afterwards; pass a real path
            to keep checkpoints across supervisor restarts).
        fault_plan: test instrumentation — inject this
            :class:`FaultPlan` into workers for the attempts listed in
            ``fault_attempts`` (default: first attempt only, so a
            deterministic crash is recovered rather than repeated).
        on_outcome: called with each :class:`JobOutcome` as it is
            decided (progress reporting).
        drain: optional event; once set, no further jobs are
            dispatched — in-flight jobs finish (their verdicts are
            journaled), queued jobs stay un-journaled, and the report
            comes back ``drained=True``.  Wired to SIGINT/SIGTERM by
            the CLI (see :mod:`repro.runtime.lifecycle`).
        verdict_store: directory of a persistent cross-run
            :class:`~repro.service.store.VerdictStore`.  Jobs whose key
            has a stored verdict are served from it (``attempts=0``,
            journaled like a computed outcome so ``resume`` still
            works); budget-pure ``ok`` verdicts are written through.
            Degraded fault outcomes are never written — they stay
            retryable.

    Returns:
        A :class:`SuiteReport`; every submitted job appears exactly
        once, in submission order — except under ``drain``, where jobs
        that never started are absent.
    """
    jobs = list(jobs)
    ids = [job.id for job in jobs]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise SupervisorError(f"duplicate job ids: {dupes}")
    if workers < 1:
        raise SupervisorError("need at least one worker")
    if resume and journal_path is None:
        raise SupervisorError("resume=True needs a journal_path")

    started = time.monotonic()
    done: dict[str, JobOutcome] = {}

    def decide(outcome: JobOutcome) -> None:
        done[outcome.job.id] = outcome
        trace_event(
            "suite.outcome",
            job=outcome.job.id,
            status=outcome.status,
            attempts=outcome.attempts,
        )
        if on_outcome is not None:
            on_outcome(outcome)

    # -- resume: skip journaled jobs ----------------------------------
    prior = journaled_results(journal_path) if resume else {}
    queue: list[_Pending] = []
    for job in jobs:
        record = prior.get(job.id)
        if record is not None and not (retry_faults and record.get("status") == FAULT):
            decide(JobOutcome(
                job=job,
                status=SKIPPED,
                attempts=int(record.get("attempts", 1)),
                elapsed=0.0,
                result=record.get("result"),
                error=record.get("error"),
            ))
        else:
            queue.append(_Pending(job))

    journal = (
        Journal(journal_path, fresh=not resume) if journal_path is not None else None
    )

    # -- verdict store: cache-aside before the pool, write-through after.
    # Fault-plan runs bypass it entirely: injected crashes are test
    # instrumentation that must actually run, and a warm store would
    # short-circuit them.
    store = None
    store_keys: dict[str, str] = {}
    store_hits = store_misses = 0
    witness_replayed = witness_failed = 0
    if verdict_store is not None and fault_plan is None:
        from repro.service.store import VerdictStore, store_key

        store = VerdictStore(verdict_store)
        for pending in list(queue):
            key = store_key(pending.job)
            if key is None:
                continue
            result = store.lookup(key)
            if result is None:
                store_misses += 1
                store_keys[pending.job.id] = key
                continue
            store_hits += 1
            queue.remove(pending)
            outcome = JobOutcome(
                job=pending.job,
                status=OK,
                attempts=0,  # no worker ever dispatched
                elapsed=0.0,
                result=result,
                events=("served from verdict store",),
            )
            if journal is not None:
                journal.append({
                    "type": "result",
                    "job": outcome.job.id,
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "elapsed": 0.0,
                    "result": outcome.result,
                    "error": None,
                    "events": list(outcome.events),
                })
            decide(outcome)

    scratch = checkpoint_dir
    scratch_owned = False
    if scratch is None and any(p.job.kind == "explore" for p in queue):
        scratch = tempfile.mkdtemp(prefix="repro-suite-")
        scratch_owned = True
    elif scratch is not None:
        os.makedirs(scratch, exist_ok=True)

    hard_deadline = (
        job_deadline * 1.5 + hang_grace if job_deadline is not None else None
    )
    plan_json = fault_plan.to_json() if fault_plan is not None else None
    # Every legitimate spawn is a pool slot or a post-crash replacement;
    # the cap only breaks pathological crash loops (e.g. workers dying
    # on import) instead of spinning forever.
    pool = WorkerPool(
        workers,
        heartbeat_interval=heartbeat_interval,
        heartbeat_grace=heartbeat_grace,
        max_rss_mb=max_rss_mb,
        hard_deadline=hard_deadline,
        max_spawns=workers + len(queue) * (retries + 1),
        name="repro-suite-worker",
    )

    def journal_outcome(outcome: JobOutcome) -> None:
        if journal is None:
            return
        journal.append({
            "type": "result",
            "job": outcome.job.id,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "elapsed": round(outcome.elapsed, 4),
            "result": outcome.result,
            "error": outcome.error,
            "events": list(outcome.events),
        })

    def degrade(pending: _Pending, now: float) -> None:
        """Retry budget exhausted: record a qualified partial verdict."""
        states = checkpointed_states(pending.job, scratch)
        detail = pending.events[-1] if pending.events else "worker lost"
        exhaustion = Exhaustion(
            ("fault",),
            states=states,
            elapsed=(now - pending.started_first) if pending.started_first else None,
            detail=detail,
        )
        outcome = JobOutcome(
            job=pending.job,
            status=FAULT,
            attempts=pending.attempt,
            elapsed=(now - pending.started_first) if pending.started_first else 0.0,
            result=exhaustion.verdict(pending.job.kind),
            error=detail,
            events=tuple(pending.events),
        )
        journal_outcome(outcome)
        decide(outcome)

    def handle_failure(pending: _Pending, description: str, now: float) -> None:
        """One attempt died (crash, kill, or in-worker error)."""
        nonlocal witness_failed
        if description.startswith("CertificationError"):
            # A violation whose witness would not replay: retried like
            # any fault, degraded (never reported as a clean verdict)
            # if certification keeps failing.
            witness_failed += 1
        pending.events.append(f"attempt {pending.attempt}: {description}")
        if pending.attempt >= retries + 1:
            degrade(pending, now)
            return
        delay = min(backoff_cap, backoff_base * (2 ** (pending.attempt - 1)))
        pending.attempt += 1
        pending.ready_at = now + delay
        queue.append(pending)

    def handle_message(worker: _Worker, message: dict, now: float) -> None:
        kind = message.get("type")
        pending = worker.current
        if (
            kind == "started"
            or pending is None
            or message.get("job") != pending.job.id
        ):
            return  # liveness chatter, or a job we already gave up on
        if kind == "result":
            nonlocal witness_replayed
            pool.release(worker)
            if isinstance(message.get("result"), dict) and message["result"].get(
                "certified"
            ):
                witness_replayed += 1
            outcome = JobOutcome(
                job=pending.job,
                status=OK,
                attempts=pending.attempt,
                elapsed=now - (pending.started_first or now),
                result=message["result"],
                events=tuple(pending.events),
            )
            journal_outcome(outcome)
            if store is not None:
                # Write-through (only ok outcomes ever reach here;
                # `put` additionally refuses non-budget-pure verdicts).
                # A store hiccup costs the cache, never the suite.
                try:
                    store.put(
                        store_keys.get(pending.job.id),
                        message["result"],
                        kind=pending.job.kind,
                    )
                except OSError:
                    pass
            decide(outcome)
        elif kind == "error":
            pool.release(worker)
            handle_failure(pending, message.get("error", "worker error"), now)

    def handle_events(events: list[PoolEvent]) -> None:
        now = time.monotonic()
        for event in events:
            if event.kind == "exit":
                if event.current is not None:
                    handle_failure(event.current, event.description or "worker lost", now)
            elif event.message is not None:
                handle_message(event.worker, event.message, now)

    drained = False
    try:
        while len(done) < len(jobs):
            now = time.monotonic()
            draining = drain is not None and drain.is_set()

            # Reap the dead first so their jobs re-enter the queue.
            handle_events(pool.poll(timeout=0))

            if draining:
                # Stop dispatching; once nothing is in flight, stop.
                if not pool.busy():
                    drained = True
                    break
            else:
                # Keep the pool sized to the remaining work.
                pool.ensure(len(jobs) - len(done))

                # Dispatch ready jobs to idle workers.
                for worker in pool.idle():
                    ready = [p for p in queue if p.ready_at <= now]
                    if not ready:
                        break
                    pending = ready[0]
                    queue.remove(pending)
                    if pending.started_first is None:
                        pending.started_first = now
                    sent = pool.dispatch(worker, {
                        "type": "job",
                        "job": pending.job.to_json(),
                        "attempt": pending.attempt,
                        "deadline": job_deadline,
                        "checkpoint": job_checkpoint_path(pending.job, scratch),
                        "fault_plan": (
                            plan_json
                            if plan_json is not None
                            and pending.attempt in fault_attempts
                            else None
                        ),
                    }, current=pending)
                    if sent:
                        trace_event(
                            "suite.dispatch",
                            job=pending.job.id,
                            worker=worker.index,
                            attempt=pending.attempt,
                        )
                    else:
                        queue.append(pending)  # the reaper will respawn

            if len(done) >= len(jobs):
                break

            if pool.alive_count() == 0 and pool.exhausted and queue:
                # Crash-looping pool: degrade whatever is left rather
                # than spinning forever.
                for pending in list(queue):
                    queue.remove(pending)
                    pending.events.append("worker pool exhausted its respawn budget")
                    degrade(pending, time.monotonic())
                continue

            # Drain messages (with a timeout so the loop stays live for
            # backoff expiry and death detection).
            handle_events(pool.poll(timeout=0.1))
    finally:
        pool.shutdown()
        if journal is not None:
            journal.close()
        if store is not None:
            store.close()
        if scratch_owned and scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    elapsed = time.monotonic() - started
    report = SuiteReport(
        outcomes=tuple(done[job.id] for job in jobs if job.id in done),
        elapsed=elapsed,
        workers=workers,
        spawned=pool.spawned,
        drained=drained,
        submitted=len(jobs),
    )
    metrics = current_metrics()
    if metrics is not None:
        metrics.inc("suite.jobs", len(jobs))
        metrics.inc("suite.spawns", pool.spawned)
        metrics.inc(
            "suite.retries", sum(max(0, o.attempts - 1) for o in report.outcomes)
        )
        metrics.inc("suite.faults", len(report.by_status(FAULT)))
        if witness_replayed:
            metrics.inc("witness.replayed", witness_replayed)
        if witness_failed:
            metrics.inc("witness.failed", witness_failed)
        if store is not None:
            metrics.inc("store.hit", store_hits)
            metrics.inc("store.miss", store_misses)
        metrics.set_gauge("suite.workers", workers)
        metrics.observe("suite.seconds", elapsed)
    return report
