"""Supervised parallel verification: a crash-tolerant worker pool.

Real verification runs are *batches* — Definition 4 quantifies over
attackers and testers, so checking a protocol zoo means dozens of
independent bounded jobs.  This module makes fleets of runs resilient
the way :mod:`repro.runtime.deadline` made single runs resilient: a
worker crash, OOM kill, or hang costs one job's increment of work, not
the batch.

Architecture:

* the **supervisor** (this module) owns a queue of :class:`Job`\\ s and
  a pool of ``multiprocessing`` *spawn*-context workers, each with its
  own duplex pipe (a killed worker can only corrupt its own channel);
* each **worker** (:mod:`repro.runtime.worker`) executes one job at a
  time, streams heartbeats from a daemon thread, and autosaves
  periodic exploration checkpoints;
* a **watchdog thread** scans the pool: per-job RSS above the limit,
  wall-clock past the hard deadline, or missed heartbeats get the
  worker a SIGKILL — recovery is the supervisor's job, not the
  worker's;
* every verdict streams to a crash-safe :class:`~repro.runtime.journal.Journal`,
  so a killed *supervisor* resumes a batch by skipping journaled jobs.

Failure handling matrix:

========================  =============================================
observed failure          response
========================  =============================================
worker exits / signalled  retry with exponential backoff; ``explore``
                          jobs resume from the last autosaved
                          checkpoint
RSS over ``max_rss_mb``   SIGKILL ("oom"), then retry/resume as above
hard deadline exceeded    SIGKILL ("hang"), then retry/resume
missed heartbeats         SIGKILL ("stalled"), then retry/resume
job raises in-process     worker survives; same retry path
retries exhausted         degrade to a qualified partial verdict with
                          ``Exhaustion(reason="fault")`` — the batch
                          still completes
corrupt checkpoint        the retried attempt restarts from scratch
supervisor killed         ``resume=True`` re-runs only un-journaled
                          jobs
========================  =============================================
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Iterable, Optional, Sequence

from repro.core.errors import ReproError
from repro.obs.metrics import current_metrics
from repro.obs.stats import SuiteStats
from repro.obs.trace import trace_event
from repro.runtime.exhaustion import Exhaustion
from repro.runtime.faults import FaultPlan
from repro.runtime.journal import Journal, journaled_results
from repro.runtime.worker import Job, JobError, worker_main

#: Outcome statuses.
OK = "ok"            #: the job produced a verdict (possibly qualified)
FAULT = "fault"      #: retries exhausted; degraded to a partial verdict
SKIPPED = "skipped"  #: already journaled; not re-run (``resume=True``)


class SupervisorError(ReproError):
    """The suite runner was misconfigured (duplicate ids, bad plan...)."""


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JobOutcome:
    """Final fate of one job in a supervised suite.

    ``status`` is ``"ok"`` (verdicted, possibly qualified), ``"fault"``
    (retry budget exhausted — ``result`` then carries an
    ``Exhaustion(reason="fault")`` record and whatever partial progress
    a checkpoint preserved) or ``"skipped"`` (verdicted by an earlier,
    journaled run).  ``events`` narrates crashes and retries.
    """

    job: Job
    status: str
    attempts: int
    elapsed: float
    result: Optional[dict] = None
    error: Optional[str] = None
    events: tuple[str, ...] = ()

    @property
    def violated(self) -> bool:
        """True when the verdict reports a broken property/attack."""
        return bool(self.result and self.result.get("violated"))

    @property
    def exact(self) -> bool:
        return bool(self.result and self.result.get("exact"))

    def describe(self) -> str:
        if self.status == FAULT:
            return f"{self.job.id}: FAULT after {self.attempts} attempt(s) ({self.error})"
        summary = (self.result or {}).get("summary", "no result")
        prefix = "skipped, " if self.status == SKIPPED else ""
        retries = f", {self.attempts} attempt(s)" if self.attempts > 1 else ""
        return f"{self.job.id}: {prefix}{summary}{retries}"


@dataclass(frozen=True)
class SuiteReport:
    """Everything a suite run produced, in job-submission order."""

    outcomes: tuple[JobOutcome, ...]
    elapsed: float
    workers: int
    spawned: int = 0

    def by_status(self, status: str) -> tuple[JobOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == status)

    @property
    def completed(self) -> bool:
        """Every job is verdicted (ok, degraded, or journal-skipped)."""
        return all(o.status in (OK, FAULT, SKIPPED) for o in self.outcomes)

    @property
    def violations(self) -> tuple[JobOutcome, ...]:
        return tuple(o for o in self.outcomes if o.violated)

    def records(self) -> list[dict]:
        """The outcomes as journal-shaped result records."""
        return [
            {
                "job": o.job.id,
                "status": o.status,
                "attempts": o.attempts,
                "elapsed": round(o.elapsed, 4),
                "result": o.result,
                "error": o.error,
                "events": list(o.events),
            }
            for o in self.outcomes
        ]

    def stats(self) -> SuiteStats:
        """Aggregate per-job stat blocks into one :class:`SuiteStats`."""
        return SuiteStats.from_records(
            self.records(),
            wall_seconds=self.elapsed,
            workers=self.workers,
            spawned=self.spawned or None,
        )

    def describe(self) -> str:
        parts = [
            f"suite: {len(self.outcomes)} job(s) on {self.workers} worker(s) "
            f"in {self.elapsed:.2f}s"
        ]
        skipped = len(self.by_status(SKIPPED))
        faults = len(self.by_status(FAULT))
        if skipped:
            parts.append(f"skipped {skipped} journaled job(s)")
        if faults:
            parts.append(f"{faults} degraded to fault verdicts")
        if self.violations:
            parts.append(f"{len(self.violations)} property violation(s)")
        return "; ".join(parts)


# ----------------------------------------------------------------------
# Pool bookkeeping
# ----------------------------------------------------------------------


@dataclass
class _Pending:
    """A job waiting to run (or running), with its retry state."""

    job: Job
    attempt: int = 1
    ready_at: float = 0.0
    started_first: Optional[float] = None
    events: list[str] = field(default_factory=list)


@dataclass
class _Worker:
    """Supervisor-side handle of one pool process."""

    index: int
    proc: multiprocessing.process.BaseProcess
    conn: mp_connection.Connection
    current: Optional[_Pending] = None
    started_at: float = 0.0
    last_beat: float = 0.0
    kill_reason: Optional[str] = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid


def _rss_mb(pid: Optional[int]) -> Optional[float]:
    """Resident set size of a process in MiB via /proc (None off-Linux)."""
    if pid is None:
        return None
    try:
        with open(f"/proc/{pid}/statm", "rb") as handle:
            fields = handle.read().split()
        import resource

        return int(fields[1]) * resource.getpagesize() / (1024 * 1024)
    except (OSError, IndexError, ValueError):
        return None


def _kill_reason(
    worker: _Worker,
    now: float,
    max_rss_mb: Optional[float],
    hard_deadline: Optional[float],
    heartbeat_grace: float,
    rss_of: Callable[[Optional[int]], Optional[float]] = _rss_mb,
) -> Optional[str]:
    """Why the watchdog should SIGKILL this worker now, or ``None``.

    Pure decision logic (injectable RSS reader) so the policy is unit
    testable without real processes.  Only busy workers are judged: an
    idle worker holds no job to protect, and a dead idle worker is
    reaped by the main loop anyway.
    """
    if worker.current is None:
        return None
    if max_rss_mb is not None:
        rss = rss_of(worker.pid)
        if rss is not None and rss > max_rss_mb:
            return f"oom: rss {rss:.0f}MiB > {max_rss_mb:.0f}MiB"
    if hard_deadline is not None and now - worker.started_at > hard_deadline:
        return f"hang: job exceeded hard deadline {hard_deadline:.1f}s"
    if now - worker.last_beat > heartbeat_grace:
        return f"stalled: no heartbeat for {now - worker.last_beat:.1f}s"
    return None


# ----------------------------------------------------------------------
# Suite assembly helpers
# ----------------------------------------------------------------------


def zoo_jobs(
    max_states: int = 4000,
    max_depth: int = 40,
    protocols: Optional[Iterable[str]] = None,
    kinds: Sequence[str] = ("secrecy", "authentication"),
) -> list[Job]:
    """The standard batch over the protocol zoo: for every protocol,
    one job per requested property kind (session-key secrecy against an
    eavesdropper, payload authentication against an impersonator)."""
    from repro.protocols.zoo import ZOO

    names = sorted(protocols) if protocols is not None else sorted(ZOO)
    unknown = [name for name in names if name not in ZOO]
    if unknown:
        raise SupervisorError(f"unknown zoo protocols: {unknown}")
    return [
        Job(
            id=f"zoo:{name}:{kind}",
            kind=kind,
            target={"zoo": name},
            max_states=max_states,
            max_depth=max_depth,
        )
        for name in names
        for kind in kinds
    ]


# ----------------------------------------------------------------------
# The supervisor proper
# ----------------------------------------------------------------------


def run_suite(
    jobs: Sequence[Job],
    workers: int = 2,
    retries: int = 2,
    job_deadline: Optional[float] = None,
    max_rss_mb: Optional[float] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    checkpoint_dir: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    fault_attempts: Sequence[int] = (1,),
    heartbeat_interval: float = 0.25,
    heartbeat_grace: float = 15.0,
    hang_grace: float = 5.0,
    backoff_base: float = 0.25,
    backoff_cap: float = 8.0,
    on_outcome: Optional[Callable[[JobOutcome], None]] = None,
) -> SuiteReport:
    """Run a batch of verification jobs under supervision.

    Args:
        jobs: the batch; ids must be unique (they key the journal and
            checkpoint files).
        workers: pool size (spawn-context processes).
        retries: extra attempts per job after its first.
        job_deadline: cooperative per-job wall-clock limit in seconds;
            the watchdog hard-kills at ``1.5 × deadline + hang_grace``
            as a backstop for non-polling hangs.
        max_rss_mb: per-worker RSS limit; exceeding it is treated as an
            OOM (SIGKILL + retry).  Needs /proc; silently inactive
            elsewhere.
        journal_path: stream verdicts to this crash-safe JSONL file.
        resume: skip jobs already verdicted in ``journal_path``.
        checkpoint_dir: where ``explore`` autosaves live (default: a
            temporary directory, removed afterwards; pass a real path
            to keep checkpoints across supervisor restarts).
        fault_plan: test instrumentation — inject this
            :class:`FaultPlan` into workers for the attempts listed in
            ``fault_attempts`` (default: first attempt only, so a
            deterministic crash is recovered rather than repeated).
        on_outcome: called with each :class:`JobOutcome` as it is
            decided (progress reporting).

    Returns:
        A :class:`SuiteReport`; every submitted job appears exactly
        once, in submission order, whatever happened to the workers.
    """
    jobs = list(jobs)
    ids = [job.id for job in jobs]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise SupervisorError(f"duplicate job ids: {dupes}")
    if workers < 1:
        raise SupervisorError("need at least one worker")
    if resume and journal_path is None:
        raise SupervisorError("resume=True needs a journal_path")

    started = time.monotonic()
    done: dict[str, JobOutcome] = {}

    def decide(outcome: JobOutcome) -> None:
        done[outcome.job.id] = outcome
        trace_event(
            "suite.outcome",
            job=outcome.job.id,
            status=outcome.status,
            attempts=outcome.attempts,
        )
        if on_outcome is not None:
            on_outcome(outcome)

    # -- resume: skip journaled jobs ----------------------------------
    prior = journaled_results(journal_path) if resume else {}
    queue: list[_Pending] = []
    for job in jobs:
        record = prior.get(job.id)
        if record is not None:
            decide(JobOutcome(
                job=job,
                status=SKIPPED,
                attempts=int(record.get("attempts", 1)),
                elapsed=0.0,
                result=record.get("result"),
                error=record.get("error"),
            ))
        else:
            queue.append(_Pending(job))

    journal = (
        Journal(journal_path, fresh=not resume) if journal_path is not None else None
    )
    scratch = checkpoint_dir
    scratch_owned = False
    if scratch is None and any(p.job.kind == "explore" for p in queue):
        scratch = tempfile.mkdtemp(prefix="repro-suite-")
        scratch_owned = True
    elif scratch is not None:
        os.makedirs(scratch, exist_ok=True)

    hard_deadline = (
        job_deadline * 1.5 + hang_grace if job_deadline is not None else None
    )
    plan_json = fault_plan.to_json() if fault_plan is not None else None
    ctx = multiprocessing.get_context("spawn")
    pool: list[_Worker] = []
    pool_lock = threading.Lock()
    stop_watchdog = threading.Event()
    next_index = 0
    spawns = 0
    # Every legitimate spawn is a pool slot or a post-crash replacement;
    # this cap only breaks pathological crash loops (e.g. workers dying
    # on import) instead of spinning forever.
    max_spawns = workers + len(queue) * (retries + 1)

    def checkpoint_path(job: Job) -> Optional[str]:
        if job.kind != "explore" or scratch is None:
            return None
        safe = "".join(ch if ch.isalnum() or ch in "-._" else "_" for ch in job.id)
        return os.path.join(scratch, f"{safe}.ckpt")

    def spawn() -> Optional[_Worker]:
        nonlocal next_index, spawns
        if spawns >= max_spawns:
            return None
        spawns += 1
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=worker_main,
            args=(child_conn, next_index, heartbeat_interval),
            name=f"repro-suite-worker-{next_index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(
            index=next_index, proc=proc, conn=parent_conn,
            last_beat=time.monotonic(),
        )
        next_index += 1
        with pool_lock:
            pool.append(worker)
        return worker

    def watchdog() -> None:
        while not stop_watchdog.wait(heartbeat_interval):
            now = time.monotonic()
            with pool_lock:
                victims = [
                    (w, _kill_reason(w, now, max_rss_mb, hard_deadline, heartbeat_grace))
                    for w in pool
                ]
            for worker, reason in victims:
                if reason is not None and worker.kill_reason is None:
                    worker.kill_reason = reason
                    trace_event("suite.kill", worker=worker.index, reason=reason)
                    if worker.pid is not None:
                        try:
                            os.kill(worker.pid, getattr(signal, "SIGKILL", signal.SIGTERM))
                        except (OSError, ProcessLookupError):
                            pass

    def journal_outcome(outcome: JobOutcome) -> None:
        if journal is None:
            return
        journal.append({
            "type": "result",
            "job": outcome.job.id,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "elapsed": round(outcome.elapsed, 4),
            "result": outcome.result,
            "error": outcome.error,
            "events": list(outcome.events),
        })

    def degrade(pending: _Pending, now: float) -> None:
        """Retry budget exhausted: record a qualified partial verdict."""
        states = 0
        path = checkpoint_path(pending.job)
        if path is not None and os.path.exists(path):
            from repro.runtime.checkpoint import Checkpoint, CheckpointError

            try:
                states = Checkpoint.load(path).graph.state_count()
            except CheckpointError:
                pass
        detail = pending.events[-1] if pending.events else "worker lost"
        exhaustion = Exhaustion(
            ("fault",),
            states=states,
            elapsed=(now - pending.started_first) if pending.started_first else None,
            detail=detail,
        )
        outcome = JobOutcome(
            job=pending.job,
            status=FAULT,
            attempts=pending.attempt,
            elapsed=(now - pending.started_first) if pending.started_first else 0.0,
            result={
                "kind": pending.job.kind,
                "exact": False,
                "violated": False,
                "states": states,
                "exhaustion": exhaustion.to_json(),
                "summary": f"no verdict: {exhaustion.describe()}",
            },
            error=detail,
            events=tuple(pending.events),
        )
        journal_outcome(outcome)
        decide(outcome)

    def handle_failure(pending: _Pending, description: str, now: float) -> None:
        """One attempt died (crash, kill, or in-worker error)."""
        pending.events.append(f"attempt {pending.attempt}: {description}")
        if pending.attempt >= retries + 1:
            degrade(pending, now)
            return
        delay = min(backoff_cap, backoff_base * (2 ** (pending.attempt - 1)))
        pending.attempt += 1
        pending.ready_at = now + delay
        queue.append(pending)

    def handle_message(worker: _Worker, message: dict, now: float) -> None:
        kind = message.get("type")
        if kind == "heartbeat":
            worker.last_beat = now
            return
        if kind == "started":
            worker.last_beat = now
            return
        pending = worker.current
        if pending is None or message.get("job") != pending.job.id:
            return  # stale chatter from a job we already gave up on
        if kind == "result":
            worker.current = None
            outcome = JobOutcome(
                job=pending.job,
                status=OK,
                attempts=pending.attempt,
                elapsed=now - (pending.started_first or now),
                result=message["result"],
                events=tuple(pending.events),
            )
            journal_outcome(outcome)
            decide(outcome)
        elif kind == "error":
            worker.current = None
            handle_failure(pending, message.get("error", "worker error"), now)

    def reap(worker: _Worker, now: float) -> None:
        """A worker process died; recycle its job and its slot."""
        with pool_lock:
            if worker in pool:
                pool.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=1.0)
        if worker.kill_reason is not None:
            description = f"worker killed ({worker.kill_reason})"
        else:
            code = worker.proc.exitcode
            if code is not None and code < 0:
                description = f"worker died on signal {-code}"
            else:
                description = f"worker exited with status {code}"
        if worker.current is not None:
            handle_failure(worker.current, description, now)
            worker.current = None

    watchdog_thread = threading.Thread(target=watchdog, daemon=True, name="watchdog")
    watchdog_thread.start()
    try:
        while len(done) < len(jobs):
            now = time.monotonic()

            # Reap the dead first so their jobs re-enter the queue.
            with pool_lock:
                dead = [w for w in pool if not w.proc.is_alive()]
            for worker in dead:
                reap(worker, now)

            # Keep the pool sized to the remaining work.
            outstanding = len(jobs) - len(done)
            with pool_lock:
                alive = len(pool)
            while alive < min(workers, outstanding):
                if spawn() is None:
                    break
                alive += 1

            # Dispatch ready jobs to idle workers.
            with pool_lock:
                idle = [w for w in pool if w.current is None and w.kill_reason is None]
            for worker in idle:
                ready = [p for p in queue if p.ready_at <= now]
                if not ready:
                    break
                pending = ready[0]
                queue.remove(pending)
                if pending.started_first is None:
                    pending.started_first = now
                worker.current = pending
                worker.started_at = now
                worker.last_beat = now
                active_plan = (
                    plan_json if plan_json is not None and pending.attempt in fault_attempts
                    else None
                )
                try:
                    worker.conn.send({
                        "type": "job",
                        "job": pending.job.to_json(),
                        "attempt": pending.attempt,
                        "deadline": job_deadline,
                        "checkpoint": checkpoint_path(pending.job),
                        "fault_plan": active_plan,
                    })
                    trace_event(
                        "suite.dispatch",
                        job=pending.job.id,
                        worker=worker.index,
                        attempt=pending.attempt,
                    )
                except (BrokenPipeError, OSError):
                    worker.current = None
                    queue.append(pending)  # the reaper will respawn

            if len(done) >= len(jobs):
                break

            # Drain messages (with a timeout so the loop stays live for
            # backoff expiry and death detection).
            with pool_lock:
                conns = {w.conn: w for w in pool}
            if not conns:
                if spawns >= max_spawns and queue:
                    # Crash-looping pool: degrade whatever is left
                    # rather than spinning forever.
                    for pending in list(queue):
                        queue.remove(pending)
                        pending.events.append("worker pool exhausted its respawn budget")
                        degrade(pending, now)
                    continue
                time.sleep(heartbeat_interval)
                continue
            for conn in mp_connection.wait(list(conns), timeout=0.1):
                worker = conns[conn]
                try:
                    while conn.poll():
                        handle_message(worker, conn.recv(), time.monotonic())
                except (EOFError, OSError):
                    # Pipe torn: the process is dead or dying.  Make it
                    # unambiguous, the next iteration reaps it.
                    if worker.proc.is_alive() and worker.pid is not None:
                        try:
                            os.kill(worker.pid, getattr(signal, "SIGKILL", signal.SIGTERM))
                        except (OSError, ProcessLookupError):
                            pass
    finally:
        stop_watchdog.set()
        watchdog_thread.join(timeout=2.0)
        with pool_lock:
            leftovers = list(pool)
            pool.clear()
        for worker in leftovers:
            try:
                worker.conn.send({"type": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        for worker in leftovers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        if journal is not None:
            journal.close()
        if scratch_owned and scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    elapsed = time.monotonic() - started
    report = SuiteReport(
        outcomes=tuple(done[job.id] for job in jobs),
        elapsed=elapsed,
        workers=workers,
        spawned=spawns,
    )
    metrics = current_metrics()
    if metrics is not None:
        metrics.inc("suite.jobs", len(jobs))
        metrics.inc("suite.spawns", spawns)
        metrics.inc(
            "suite.retries", sum(max(0, o.attempts - 1) for o in report.outcomes)
        )
        metrics.inc("suite.faults", len(report.by_status(FAULT)))
        metrics.set_gauge("suite.workers", workers)
        metrics.observe("suite.seconds", elapsed)
    return report
