"""Structured exhaustion records.

Every bounded computation in the library used to report resource
exhaustion as a bare boolean (``truncated`` / ``exhaustive``).  That
collapses four very different outcomes — the state budget filled up, the
depth horizon was reached, a wall-clock deadline expired, the run was
cancelled — into one bit, which makes it impossible to *react* sensibly:
a states-truncated run should be retried with a bigger budget, a
deadline-truncated run should not.

:class:`Exhaustion` is the structured replacement.  It records *which*
limits tripped (in the order they were first hit), how far the run got
(states explored, deepest level reached, elapsed wall-clock time) and an
optional free-form detail (e.g. the message of an injected fault).
Everything that used to expose a boolean keeps it as a backward
compatible property (``truncated`` is ``exhaustion is not None``,
``exhaustive`` its negation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: The exploration filled its ``max_states`` budget.
STATES = "states"
#: The exploration reached its ``max_depth`` horizon.
DEPTH = "depth"
#: A wall-clock :class:`~repro.runtime.deadline.Deadline` expired.
DEADLINE = "deadline"
#: A :class:`~repro.runtime.deadline.CancelToken` was cancelled (or the
#: run was interrupted from the keyboard).
CANCELLED = "cancelled"
#: An injected or real transient fault interrupted successor generation.
FAULT = "fault"

#: Reasons that a larger budget can do something about.  Escalation
#: retries these; the others are terminal for the current run.
BUDGET_REASONS = frozenset({STATES, DEPTH})


@dataclass(frozen=True, slots=True)
class Exhaustion:
    """Why (and how far along) a bounded computation stopped early.

    Attributes:
        reasons: the limits that tripped, ordered by first occurrence.
            Always non-empty; entries are the module constants
            ``STATES``/``DEPTH``/``DEADLINE``/``CANCELLED``/``FAULT``.
        states: number of states explored when the record was taken.
        depth: deepest exploration level reached.
        elapsed: wall-clock seconds spent, when measured.
        detail: free-form extra information (fault message, ...).
    """

    reasons: tuple[str, ...]
    states: int = 0
    depth: int = 0
    elapsed: Optional[float] = None
    detail: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.reasons:
            raise ValueError("an Exhaustion needs at least one reason")

    @property
    def reason(self) -> str:
        """The first limit that tripped."""
        return self.reasons[0]

    @property
    def retriable(self) -> bool:
        """True when every tripped limit is a budget axis — i.e. a retry
        with a larger budget could turn the result exact."""
        return set(self.reasons) <= BUDGET_REASONS

    def describe(self) -> str:
        parts = "+".join(self.reasons)
        extra = f"; {self.states} states, depth {self.depth}"
        if self.elapsed is not None:
            extra += f", {self.elapsed:.2f}s"
        if self.detail:
            extra += f" ({self.detail})"
        return f"exhausted[{parts}{extra}]"

    def to_json(self) -> dict:
        """A JSON-serializable view (inverse of :meth:`from_json`).

        Used by the suite journal, where qualified verdicts must survive
        a round-trip through an append-only JSONL file.
        """
        return {
            "reasons": list(self.reasons),
            "states": self.states,
            "depth": self.depth,
            "elapsed": self.elapsed,
            "detail": self.detail,
        }

    @staticmethod
    def from_json(data: Optional[dict]) -> Optional["Exhaustion"]:
        """Rebuild a record from :meth:`to_json` output (``None`` maps
        to ``None``, mirroring an exact result)."""
        if data is None:
            return None
        return Exhaustion(
            tuple(data["reasons"]),
            states=int(data.get("states", 0)),
            depth=int(data.get("depth", 0)),
            elapsed=data.get("elapsed"),
            detail=data.get("detail"),
        )

    @staticmethod
    def single(
        reason: str,
        states: int = 0,
        depth: int = 0,
        elapsed: Optional[float] = None,
        detail: Optional[str] = None,
    ) -> "Exhaustion":
        return Exhaustion((reason,), states, depth, elapsed, detail)

    def verdict(self, kind: str) -> dict:
        """A degraded, verdict-shaped result dict carrying this record.

        The shape matches what a completed job of the same ``kind``
        journals (``exact``/``violated``/``states``/``exhaustion``/
        ``summary``), so consumers — the suite journal, the service
        protocol, ``repro-spi stats`` — never need a special case for
        "the run never verdicted".  ``violated`` is ``False``: no
        verdict is not a violation, it is an honest "don't know".
        """
        return {
            "kind": kind,
            "exact": False,
            "violated": False,
            "states": self.states,
            "exhaustion": self.to_json(),
            "summary": f"no verdict: {self.describe()}",
        }

    @staticmethod
    def merge(*records: Optional["Exhaustion"]) -> Optional["Exhaustion"]:
        """Combine the exhaustion of several sub-computations.

        ``None`` inputs (exact sub-results) are ignored; the merge is
        ``None`` only when every input was.  Reasons are deduplicated in
        first-seen order, counters take the maximum, elapsed times add
        up (they measure disjoint work).
        """
        present = [r for r in records if r is not None]
        if not present:
            return None
        reasons: list[str] = []
        for record in present:
            for reason in record.reasons:
                if reason not in reasons:
                    reasons.append(reason)
        elapsed_parts = [r.elapsed for r in present if r.elapsed is not None]
        detail = next((r.detail for r in present if r.detail), None)
        return Exhaustion(
            tuple(reasons),
            states=max(r.states for r in present),
            depth=max(r.depth for r in present),
            elapsed=sum(elapsed_parts) if elapsed_parts else None,
            detail=detail,
        )
