"""Wall-clock deadlines and cooperative cancellation.

Bounded explorations cap *states* and *depth*, but neither limit bounds
wall-clock time: a pathological system can spend minutes inside a single
budget.  A :class:`Deadline` adds the missing axis, and a
:class:`CancelToken` lets another thread (or a signal handler) request a
clean stop.  Both are *cooperative*: the exploration loops poll a
:class:`RunControl` between state expansions and, when interrupted,
return a partial result carrying a structured
:class:`~repro.runtime.exhaustion.Exhaustion` — never an exception.

Threading a control argument through every verdict helper would be
invasive, so an *ambient* control is also supported: wrap any sequence
of checks in :func:`governed` and every exploration underneath inherits
the deadline/token without signature changes.  An explicit ``control=``
argument always wins over the ambient one.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from repro.runtime.exhaustion import CANCELLED, DEADLINE

#: Monotonic-clock callable; injectable for deterministic tests.
Clock = Callable[[], float]


@dataclass(frozen=True, slots=True)
class Deadline:
    """An absolute point on a monotonic clock.

    Build one with :meth:`after` (relative seconds) rather than the raw
    constructor; the ``clock`` is injectable so tests can drive expiry
    deterministically.
    """

    expires_at: float
    clock: Clock = time.monotonic

    @classmethod
    def after(cls, seconds: float, clock: Clock = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(clock() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left, clamped to ``0.0`` once expired.

        The clamp matters because callers feed this straight into
        ``select``/``poll``/``socket.settimeout`` timeouts, where a
        negative value either raises or (worse) means "block forever".
        Use :meth:`expired` to distinguish "just now" from "long past" —
        both read as ``0.0`` here.
        """
        return max(0.0, self.expires_at - self.clock())

    def expired(self) -> bool:
        return self.expires_at - self.clock() <= 0.0


class CancelToken:
    """A one-way flag a caller can raise to stop in-flight explorations.

    Cooperative: nothing is interrupted forcibly, the exploration loops
    poll the token and wind down cleanly with a partial result.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        self._cancelled = True
        if reason is not None:
            self.reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled


@dataclass(frozen=True, slots=True)
class RunControl:
    """Everything an exploration polls to decide whether to keep going.

    Beyond interruption, a control can request *periodic checkpoint
    autosave*: when both ``checkpoint_every`` and ``on_checkpoint`` are
    set, the LTS exploration loop hands a resumable snapshot of the
    in-flight graph to ``on_checkpoint`` every ``checkpoint_every``
    newly recorded states.  A SIGKILL then loses at most one interval
    of work — the property the supervised suite runner builds on.  The
    callback is typed loosely (it receives a
    :class:`~repro.semantics.lts.Graph`) to keep this module free of
    semantics imports.
    """

    deadline: Optional[Deadline] = None
    token: Optional[CancelToken] = None
    checkpoint_every: Optional[int] = None
    on_checkpoint: Optional[Callable[[Any], None]] = None

    def interruption(self) -> Optional[str]:
        """The exhaustion reason to record, or ``None`` to continue.

        Cancellation wins over deadline expiry when both apply — an
        explicit request is more informative than a timer.
        """
        if self.token is not None and self.token.cancelled:
            return CANCELLED
        if self.deadline is not None and self.deadline.expired():
            return DEADLINE
        return None


#: The control that never interrupts; used when nothing was requested.
NO_CONTROL = RunControl()

_ambient: list[RunControl] = []


def current_control() -> RunControl:
    """The innermost ambient control (``NO_CONTROL`` outside any)."""
    return _ambient[-1] if _ambient else NO_CONTROL


def resolve_control(control: Optional[RunControl]) -> RunControl:
    """An explicit control if given, else the ambient one."""
    return control if control is not None else current_control()


@contextmanager
def governed(
    deadline: Optional[Deadline] = None,
    token: Optional[CancelToken] = None,
    control: Optional[RunControl] = None,
) -> Iterator[RunControl]:
    """Install an ambient :class:`RunControl` for the enclosed block.

    Every exploration and verdict loop running inside the block polls
    this control unless handed an explicit one.  Nestable; the innermost
    governs.
    """
    ctl = control if control is not None else RunControl(deadline, token)
    _ambient.append(ctl)
    try:
        yield ctl
    finally:
        _ambient.pop()
