"""Atomic file replacement for checkpoint and sidecar writes.

Every durable artifact the runtime leaves next to a run — exploration
checkpoints, ``--stats`` JSON sidecars, service status snapshots — must
never be observable half-written: a SIGKILL mid-write that leaves a
truncated checkpoint poisons a later ``--resume``, which defeats the
whole point of checkpointing.  (The append-only journal is the one
exception: it is a *log*, repaired by torn-tail truncation on reload,
not replaced wholesale — see :mod:`repro.runtime.journal`.)

The recipe is the classic one, centralized here so every writer gets it
right: write to a ``.tmp`` sibling *in the same directory* (``rename``
is only atomic within a filesystem), flush, ``fsync`` the file, then
``os.replace`` over the destination.  Readers see either the complete
old content or the complete new content, never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Callable, IO


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    _atomic_write(path, "wb", lambda handle: handle.write(data))


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str, payload: Any, indent: int = 2) -> None:
    """Atomically replace ``path`` with ``payload`` rendered as JSON
    (trailing newline included, matching the CLI's sidecar format)."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


def atomic_dump(path: str, write: Callable[[IO[bytes]], None]) -> None:
    """Atomically replace ``path`` with whatever ``write`` streams into
    the (binary) temp handle — for payloads too large or too stateful to
    build in memory first (pickled checkpoints)."""
    _atomic_write(path, "wb", write)


def _atomic_write(path: str, mode: str, write: Callable[[IO], None]) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    # tempfile (vs a fixed ``path + ".tmp"``) keeps two concurrent
    # writers — e.g. a checkpoint autosave racing a final save — from
    # scribbling into each other's temp file; the loser's replace just
    # wins last.
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already replaced or gone
            pass
        raise
