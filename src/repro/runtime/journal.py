"""Crash-safe append-only JSONL result journal.

The supervised suite runner streams one JSON record per verdicted job
into a journal file, so that a killed *supervisor* — not just a killed
worker — can resume a batch: on restart, every job with a journaled
record is skipped and only the un-verdicted remainder runs.

Durability model:

* **Appends are fsync'd.**  Each record is one ``json.dumps`` line
  written, flushed and ``os.fsync``'d before :meth:`Journal.append`
  returns; a record the caller saw acknowledged survives a crash.
* **Reloads tolerate torn tails.**  A crash mid-append can leave a
  partial final line (no terminating newline).  :func:`read_journal`
  silently drops exactly that — an *incomplete final line* — and
  returns every fully-written record before it.  Invalid *complete*
  lines are not a torn tail; they mean the file was damaged some other
  way and raise :class:`JournalError` rather than silently dropping
  history.
* **Reopens self-repair.**  Opening a :class:`Journal` for append first
  truncates a torn tail, so the next record starts on a fresh line
  instead of concatenating onto garbage.

Records are flat JSON objects; the journal itself imposes no schema
beyond "one object per line" (the suite runner keys on ``type`` and
``job`` fields, see :mod:`repro.runtime.supervisor`).
"""

from __future__ import annotations

import json
import os
from typing import Iterator, Optional

from repro.core.errors import ReproError


class JournalError(ReproError):
    """A journal file is damaged beyond torn-tail repair."""


def _trim_torn_tail(path: str) -> int:
    """Truncate an unterminated final line; returns the bytes dropped."""
    try:
        handle = open(path, "r+b")
    except FileNotFoundError:
        return 0
    with handle:
        data = handle.read()
        if not data or data.endswith(b"\n"):
            return 0
        cut = data.rfind(b"\n") + 1  # 0 when the whole file is one torn line
        handle.truncate(cut)
        return len(data) - cut


class Journal:
    """Append-only, fsync'd JSONL writer (also a context manager).

    ``fresh=True`` discards any existing file first — the caller is
    starting a new batch, not resuming one.
    """

    def __init__(self, path: str, fresh: bool = False, fsync: bool = True) -> None:
        self.path = path
        self._fsync = fsync
        if fresh:
            self.repaired_bytes = 0
            self._handle = open(path, "w", encoding="utf-8")
        else:
            self.repaired_bytes = _trim_torn_tail(path)
            self._handle = open(path, "a", encoding="utf-8")

    def append(self, record: dict) -> None:
        """Durably append one record (flushed and fsync'd)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _complete_lines(text: str) -> Iterator[tuple[str, bool]]:
    """Yield ``(line, is_complete)`` — the final line is incomplete when
    the text does not end in a newline."""
    lines = text.split("\n")
    terminated = text.endswith("\n")
    for index, line in enumerate(lines):
        if not line:
            continue
        yield line, index < len(lines) - 1 or terminated


def read_journal(path: str, strict: bool = False) -> list[dict]:
    """Load every fully-written record from a journal.

    A missing file reads as an empty journal (nothing was verdicted).
    An incomplete final line — the signature of a crash mid-append — is
    skipped, unless ``strict`` is set.  A malformed *complete* line (or
    a non-object record) always raises :class:`JournalError`: that is
    corruption, not a torn tail.
    """
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            text = handle.read()
    except FileNotFoundError:
        return []
    records: list[dict] = []
    for number, (line, complete) in enumerate(_complete_lines(text), start=1):
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError(f"record is {type(record).__name__}, not an object")
        except ValueError as err:
            if not complete:
                if strict:
                    raise JournalError(f"{path}: torn final line {number}")
                continue
            raise JournalError(f"{path}: corrupt record on line {number}: {err}")
        records.append(record)
    return records


def journaled_results(path: str) -> dict[str, dict]:
    """Job id -> latest ``result`` record, for resume filtering."""
    results: dict[str, dict] = {}
    for record in read_journal(path):
        if record.get("type") == "result" and isinstance(record.get("job"), str):
            results[record["job"]] = record
    return results


class JournalIndex:
    """Incremental job-id -> ``result``-record lookup over a *growing*
    journal another process is appending to.

    The cluster router uses this as its idempotency oracle: before
    re-driving a request whose shard died mid-flight, it asks the dead
    shard's journal whether the job already completed — a journaled
    verdict is returned to the client as-is instead of being recomputed
    (and re-journaled) on another shard.

    Unlike :func:`journaled_results`, a lookup does not re-read the
    whole file: :meth:`refresh` resumes from the byte offset of the
    previous read and only parses appended data.  The reader must
    tolerate every state a ``kill -9`` of the writer can leave:

    * **torn final line** — buffered until its newline arrives (the
      writer fsyncs whole lines, but a reader can race mid-append); it
      is never parsed as a record;
    * **corrupt complete line** — skipped, not fatal: for *dedupe* the
      safe failure direction is a miss (recompute) rather than an
      exception that wedges failover;
    * **truncation/replacement** — a shard restart repairs torn tails
      by truncating, shrinking the file; a shrink below our offset
      resets the index and re-reads from the start.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0
        self._tail = b""
        self._results: dict[str, dict] = {}
        self._claims: dict[str, dict] = {}

    def refresh(self) -> None:
        """Absorb any bytes appended since the last refresh."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size < self._offset:
                    # The file shrank (torn-tail repair on reopen, or a
                    # wholesale replacement): start over.
                    self._offset = 0
                    self._tail = b""
                    self._results = {}
                    self._claims = {}
                if size == self._offset:
                    return
                handle.seek(self._offset)
                data = handle.read()
        except FileNotFoundError:
            self._offset = 0
            self._tail = b""
            self._results = {}
            self._claims = {}
            return
        self._offset += len(data)
        buffer = self._tail + data
        lines = buffer.split(b"\n")
        self._tail = lines.pop()  # b"" when the data ended on a newline
        for line in lines:
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8", errors="replace"))
            except ValueError:
                continue  # damaged line: a dedupe miss, never a crash
            if not isinstance(record, dict) or not isinstance(record.get("job"), str):
                continue
            if record.get("type") == "result":
                self._results[record["job"]] = record
            elif record.get("type") == "claim":
                self._claims[record["job"]] = record

    def result(self, job_id: str) -> Optional[dict]:
        """The journaled ``result`` record for ``job_id``, if any
        (refreshes first)."""
        self.refresh()
        return self._results.get(job_id)

    def completed(self, job_id: str) -> bool:
        """Has ``job_id`` a journaled verdict already?"""
        return self.result(job_id) is not None

    def ids(self) -> frozenset[str]:
        """Every job id with a journaled verdict (refreshes first).

        This is what a standby router rebuilds its completed-work
        picture from after adopting a fleet: anything a client re-drives
        that is *not* in some shard's ``ids()`` genuinely never
        finished.
        """
        self.refresh()
        return frozenset(self._results)

    def records(self) -> dict[str, dict]:
        """Job id -> latest ``result`` record (refreshes first; the
        returned dict is a snapshot copy)."""
        self.refresh()
        return dict(self._results)

    def known_result(self, job_id: str) -> Optional[dict]:
        """The ``result`` record for ``job_id`` as of the last refresh
        (deliberately refresh-free, like :meth:`pending_claim` — for
        routing decisions that must be consistent with the claim
        table)."""
        return self._results.get(job_id)

    def pending_claim(self, job_id: str) -> Optional[dict]:
        """The latest ``claim`` record for ``job_id`` with no verdict
        yet — evidence that some shard incarnation *admitted* the job
        and may be computing it right now.

        Deliberately does **not** refresh: the routing hot path calls
        this immediately after a dedupe sweep already refreshed every
        shard index, and a stale miss only costs the shard-side
        coalescer one extra arrival.
        """
        if job_id in self._results:
            return None
        return self._claims.get(job_id)

    def __contains__(self, job_id: str) -> bool:
        return self.completed(job_id)

    def __len__(self) -> int:
        return len(self._results)
