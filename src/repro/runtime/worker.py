"""Verification jobs and the pool-worker process entry point.

A :class:`Job` is a *description* of one bounded verification run — an
exploration, a property check against an attacker, or a Definition-4
implementation check — over a named system (a protocol-zoo entry, a
``.spi`` process file, inline source, or a system file).  Descriptions
are plain JSON, so they cross the spawn boundary to worker processes,
live in suite files, and key the crash-safe result journal.

:func:`run_job` executes a job in-process and returns a JSON-ready
result dict; :func:`worker_main` is the long-lived worker loop the
supervisor spawns (see :mod:`repro.runtime.supervisor`): it pulls job
messages off a pipe, executes them, and streams back ``started`` /
``heartbeat`` / ``result`` / ``error`` messages.

Worker-side resilience:

* every job runs under a cooperative soft deadline (the supervisor adds
  a hard-kill backstop on top);
* ``explore`` jobs autosave periodic checkpoints
  (``RunControl.checkpoint_every``), so a crashed attempt resumes from
  the last interval instead of restarting — a corrupt autosave file
  degrades to a from-scratch restart, never an error;
* an active :class:`~repro.runtime.faults.FaultPlan` can be attached
  per-attempt for deterministic crash/fault testing (``exit_at`` kills
  the process mid-job; ``fail_at`` exercises in-process degradation);
* a failing job turns into an ``error`` message, never a dead worker —
  the process survives to take the next job.
"""

from __future__ import annotations

import os
import threading
import traceback
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.errors import ReproError
from repro.runtime.deadline import Deadline, RunControl, governed
from repro.runtime.faults import FaultPlan, inject_faults

#: Recognized job kinds.
KINDS = frozenset({"explore", "secrecy", "authentication", "freshness", "check"})

#: When this environment variable is truthy, every violation verdict is
#: independently replayed (reduction suspended, state cache off) before
#: it is reported; a violation that cannot be certified raises
#: :class:`~repro.semantics.replay.CertificationError`, which the
#: supervisor/server retry machinery degrades to a retryable fault.
CERTIFY_ENV = "REPRO_CERTIFY"


def certify_enabled() -> bool:
    """Is violation certification requested for this process?"""
    return os.environ.get(CERTIFY_ENV, "") not in ("", "0")

#: Per-kind target schemas (one of the listed key sets must match).
_TARGET_KEYS = ("zoo", "spi", "source", "sysfile", "impl", "spec")


class JobError(ReproError):
    """A job description is malformed or names an unknown system."""


@dataclass(frozen=True)
class Job:
    """One verification job, fully described by JSON-serializable data.

    Attributes:
        id: unique key within a suite; journal records and checkpoint
            files are named after it.
        kind: ``explore`` | ``secrecy`` | ``authentication`` |
            ``freshness`` | ``check``.
        target: what to verify — ``{"zoo": name}``, ``{"spi": path}``,
            ``{"source": text}``, ``{"sysfile": path}``, or (``check``
            only) ``{"impl": path, "spec": path}``.
        max_states / max_depth: the exploration budget.
        secret: secret base name (``secrecy``; default ``KAB`` for zoo
            targets).
        sender: authenticated sender role (``authentication``; default
            ``A``).
        checkpoint_every: states between checkpoint autosaves for
            ``explore`` jobs run under a supervisor.
    """

    id: str
    kind: str
    target: Mapping[str, str]
    max_states: int = 2000
    max_depth: int = 64
    secret: Optional[str] = None
    sender: Optional[str] = None
    checkpoint_every: Optional[int] = 400

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise JobError(f"job {self.id!r}: unknown kind {self.kind!r}")
        if not self.id:
            raise JobError("a job needs a non-empty id")
        unknown = set(self.target) - set(_TARGET_KEYS)
        if unknown or not self.target:
            raise JobError(
                f"job {self.id!r}: bad target keys {sorted(self.target or ())!r}"
            )
        if self.kind == "check" and not {"impl", "spec"} <= set(self.target):
            raise JobError(f"job {self.id!r}: check needs impl and spec system files")

    def to_json(self) -> dict:
        data = {
            "id": self.id,
            "kind": self.kind,
            "target": dict(self.target),
            "max_states": self.max_states,
            "max_depth": self.max_depth,
        }
        for key in ("secret", "sender", "checkpoint_every"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    @staticmethod
    def from_json(data: Mapping) -> "Job":
        try:
            return Job(
                id=str(data["id"]),
                kind=str(data["kind"]),
                target=dict(data["target"]),
                max_states=int(data.get("max_states", 2000)),
                max_depth=int(data.get("max_depth", 64)),
                secret=data.get("secret"),
                sender=data.get("sender"),
                checkpoint_every=data.get("checkpoint_every", 400),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise JobError(f"malformed job description: {err}")


# ----------------------------------------------------------------------
# Job execution
# ----------------------------------------------------------------------


def _read_spi(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _zoo_spec(job: Job):
    from repro.protocols.zoo import ZOO

    name = job.target["zoo"]
    builder = ZOO.get(name)
    if builder is None:
        raise JobError(f"job {job.id!r}: unknown zoo protocol {name!r}")
    return builder()


def _explore_system(job: Job):
    """Materialize the system an ``explore`` job walks."""
    from repro.semantics.system import instantiate
    from repro.syntax.parser import parse_process

    if "zoo" in job.target:
        from repro.equivalence.testing import compose
        from repro.protocols.library import narration_configuration

        spec = _zoo_spec(job)
        return compose(
            narration_configuration(spec, observed_role="B", observed_datum="PAYLOAD")
        )
    if "source" in job.target:
        return instantiate(parse_process(job.target["source"]))
    if "spi" in job.target:
        return instantiate(parse_process(_read_spi(job.target["spi"])))
    raise JobError(f"job {job.id!r}: explore needs a zoo/spi/source target")


def _run_explore(job: Job, control: RunControl, checkpoint_path: Optional[str]) -> dict:
    from repro.runtime.checkpoint import Checkpoint, CheckpointError
    from repro.semantics.diagnostics import statistics
    from repro.semantics.lts import Budget, explore, resume_exploration

    from repro.obs.metrics import current_metrics

    budget = Budget(job.max_states, job.max_depth)
    sink = None
    if checkpoint_path is not None and job.checkpoint_every:

        def sink(graph) -> None:
            Checkpoint(graph, budget).save(checkpoint_path)
            metrics = current_metrics()
            if metrics is not None:
                metrics.inc("checkpoint.saves")

        control = RunControl(
            deadline=control.deadline,
            token=control.token,
            checkpoint_every=job.checkpoint_every,
            on_checkpoint=sink,
        )
    resumed = False
    graph = None
    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        try:
            saved = Checkpoint.load(checkpoint_path)
        except CheckpointError:
            saved = None  # corrupt autosave -> restart from scratch
        if saved is not None:
            graph = resume_exploration(saved.graph, budget, control)
            resumed = True
    if graph is None:
        graph = explore(_explore_system(job), budget, control)
    if sink is not None and graph.truncated:
        sink(graph)  # keep the final frontier resumable too
    return {
        "kind": "explore",
        "states": graph.state_count(),
        "transitions": graph.transition_count(),
        "deadlocks": len(graph.deadlocks()),
        "exact": not graph.truncated,
        "violated": False,
        "resumed": resumed,
        "exhaustion": graph.exhaustion.to_json() if graph.exhaustion else None,
        "summary": statistics(graph).describe(),
    }


#: The intruder each zoo property kind is checked against (also the
#: witness recipe vocabulary the replayer rebuilds from).
_ZOO_INTRUDERS = {
    "secrecy": "eavesdropper",
    "authentication": "impersonator",
    "freshness": "replayer",
}


def _property_verdict(job: Job, control: RunControl):
    """Dispatch a secrecy/authentication/freshness job to the right
    analysis: intruder-based for zoo targets (as in the zoo benchmark),
    most-general-attacker for system files (as in ``repro-spi
    analyze``).  Returns the verdict plus the witness-sealing recipe
    describing how the checked system was built."""
    from repro.core.terms import Name
    from repro.semantics.lts import Budget

    budget = Budget(job.max_states, job.max_depth)
    if "zoo" in job.target:
        from repro.analysis.intruder import eavesdropper, impersonator, replayer
        from repro.analysis.properties import authentication, freshness
        from repro.analysis.secrecy import keeps_secret
        from repro.protocols.library import narration_configuration

        spec = _zoo_spec(job)
        config = narration_configuration(
            spec, observed_role="B", observed_datum="PAYLOAD"
        )
        wire = Name(spec.channel)
        recipe = {
            "source": "zoo",
            "protocol": job.target["zoo"],
            "observed_role": "B",
            "observed_datum": "PAYLOAD",
            "intruder": _ZOO_INTRUDERS[job.kind],
        }
        if job.kind == "secrecy":
            recipe["messages"] = 6
            return (
                keeps_secret(
                    config.with_part("E", eavesdropper(wire, messages=6)),
                    job.secret or "KAB",
                    budget=budget,
                    control=control,
                ),
                recipe,
            )
        if job.kind == "authentication":
            return (
                authentication(
                    config.with_part("E", impersonator(wire)),
                    job.sender or "A",
                    budget=budget,
                    control=control,
                ),
                recipe,
            )
        return (
            freshness(
                config.with_part("E", replayer(wire)), budget=budget, control=control
            ),
            recipe,
        )
    if "sysfile" in job.target:
        from repro.analysis.environment import (
            env_authentication,
            env_freshness,
            env_secrecy,
        )
        from repro.syntax.sysfile import load_system_file

        sysfile = load_system_file(job.target["sysfile"])
        config = sysfile.configuration
        recipe = {"source": "sysfile", "path": job.target["sysfile"]}
        if job.kind == "secrecy":
            if not job.secret:
                raise JobError(f"job {job.id!r}: sysfile secrecy needs a secret")
            return (
                env_secrecy(config, job.secret, budget=budget, control=control),
                recipe,
            )
        if job.kind == "authentication":
            return (
                env_authentication(
                    config,
                    job.sender or "A",
                    observe=sysfile.observe.base,
                    budget=budget,
                    control=control,
                ),
                recipe,
            )
        return (
            env_freshness(
                config, observe=sysfile.observe.base, budget=budget, control=control
            ),
            recipe,
        )
    raise JobError(f"job {job.id!r}: {job.kind} needs a zoo or sysfile target")


def _run_property(job: Job, control: RunControl) -> dict:
    verdict, recipe = _property_verdict(job, control)
    detail = getattr(verdict, "violation", None)
    leak = getattr(verdict, "leak", None)
    if detail is None and leak is not None:
        from repro.syntax.pretty import render_term

        detail = f"leaked {render_term(leak)}"
    result = {
        "kind": job.kind,
        "holds": verdict.holds,
        "exact": verdict.exhaustive,
        "violated": not verdict.holds,
        "detail": detail,
        "exhaustion": verdict.exhaustion.to_json() if verdict.exhaustion else None,
        "summary": verdict.describe(),
    }
    witness = getattr(verdict, "witness", None)
    if witness is not None:
        result["witness"] = witness.sealed(recipe).to_json()
    return result


def _run_check(job: Job, control: RunControl) -> dict:
    from repro.analysis.attacks import securely_implements
    from repro.analysis.intruder import standard_attackers
    from repro.semantics.lts import Budget
    from repro.syntax.sysfile import load_system_file

    impl = load_system_file(job.target["impl"])
    spec = load_system_file(job.target["spec"])
    if set(impl.configuration.private) != set(spec.configuration.private):
        raise JobError(f"job {job.id!r}: the two system files declare different channels")
    roles = [label for _, _, label in impl.configuration.subroles]
    roles = roles or list(impl.configuration.labels())
    with governed(control=control):
        verdict = securely_implements(
            impl.configuration,
            spec.configuration,
            standard_attackers(list(impl.configuration.private)),
            observe=impl.observe,
            roles=tuple(roles) + ("E",),
            budget=Budget(job.max_states, job.max_depth),
        )
    result = {
        "kind": "check",
        "secure": verdict.secure,
        "exact": verdict.exhaustive,
        "violated": not verdict.secure,
        "attackers_checked": verdict.attackers_checked,
        "tests_checked": verdict.tests_checked,
        "exhaustion": verdict.exhaustion.to_json() if verdict.exhaustion else None,
        "summary": verdict.describe(),
    }
    attack = verdict.attack
    if attack is not None and attack.witness is not None:
        recipe = {
            "source": "check",
            "impl": job.target["impl"],
            "spec": job.target["spec"],
            "observe": impl.observe.base,
            "roles": list(roles) + ["E"],
            "attacker": attack.attacker_name,
            "test": attack.test.name,
        }
        result["witness"] = attack.witness.sealed(recipe).to_json()
    return result


def run_job(
    job: Job,
    deadline: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
) -> dict:
    """Execute one job in-process; returns a JSON-serializable result.

    ``deadline`` is the cooperative per-job wall-clock limit (expiry
    qualifies the verdict, it does not fail the job).  For ``explore``
    jobs, ``checkpoint_path`` enables periodic autosave *and* resume
    from a previous attempt's autosave.
    """
    import time

    from repro.obs.metrics import Metrics, collecting, current_metrics
    from repro.obs.stats import job_stats_block
    from repro.obs.trace import trace_span

    control = RunControl(
        deadline=Deadline.after(deadline) if deadline is not None else None
    )
    outer = current_metrics()
    started = time.monotonic()
    with collecting(Metrics()) as metrics:
        with trace_span("job", job=job.id, job_kind=job.kind):
            if job.kind == "explore":
                result = _run_explore(job, control, checkpoint_path)
            elif job.kind == "check":
                result = _run_check(job, control)
            else:
                result = _run_property(job, control)
        if certify_enabled() and result.get("violated"):
            from repro.semantics.replay import CertificationError, replay_result

            report = replay_result(result)
            if not report.ok:
                metrics.inc("witness.failed")
                raise CertificationError(
                    f"job {job.id!r}: {report.describe()}"
                )
            metrics.inc("witness.replayed")
            result["certified"] = True
    elapsed = time.monotonic() - started
    stats = job_stats_block(metrics, elapsed)
    # Resumed explorations only metered the *new* work; the graph totals
    # are authoritative when the result carries them.
    if isinstance(result.get("states"), int):
        stats["states"] = result["states"]
        stats["states_per_s"] = (
            round(result["states"] / elapsed, 2) if elapsed > 0 else None
        )
    if isinstance(result.get("transitions"), int):
        stats["transitions"] = result["transitions"]
    result["stats"] = stats
    if outer is not None:
        outer.absorb(metrics)
    return result


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------


def worker_main(conn, worker_id: int, heartbeat_interval: float = 0.25) -> None:
    """Long-lived pool worker: serve job messages until shutdown/EOF.

    Protocol (dicts over the pipe):

    * in  — ``{"type": "job", "job": <Job.to_json>, "attempt": n,
      "deadline": s|None, "checkpoint": path|None,
      "fault_plan": <FaultPlan.to_json>|None}`` or ``{"type": "shutdown"}``;
    * out — ``{"type": "started"|"heartbeat"|"result"|"error", ...}``.

    Heartbeats come from a daemon thread, so they prove *process*
    liveness (spawned, importing, computing) independently of job
    progress.  Any failure of a job is reported as an ``error`` message
    and the worker lives on; only shutdown, pipe EOF, or a hard crash
    (signal, OOM kill, injected ``exit_at``) end the process.
    """
    import signal

    try:
        # The supervisor owns orderly shutdown; a Ctrl-C aimed at it
        # must not also detonate inside every worker.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    send_lock = threading.Lock()

    def send(message: dict) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                # The supervisor is gone; there is nobody to serve.
                os._exit(0)

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            send({"type": "heartbeat", "worker": worker_id})

    threading.Thread(target=beat, daemon=True, name="heartbeat").start()

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, dict) or message.get("type") == "shutdown":
                break
            job = Job.from_json(message["job"])
            attempt = int(message.get("attempt", 1))
            send({"type": "started", "worker": worker_id, "job": job.id, "attempt": attempt})
            plan = message.get("fault_plan")
            harness = inject_faults(FaultPlan.from_json(plan)) if plan else nullcontext()
            try:
                with harness:
                    result = run_job(
                        job,
                        deadline=message.get("deadline"),
                        checkpoint_path=message.get("checkpoint"),
                    )
                send({
                    "type": "result",
                    "worker": worker_id,
                    "job": job.id,
                    "attempt": attempt,
                    "result": result,
                })
            except Exception as err:
                send({
                    "type": "error",
                    "worker": worker_id,
                    "job": job.id,
                    "attempt": attempt,
                    "error": f"{type(err).__name__}: {err}",
                    "traceback": traceback.format_exc(limit=8),
                })
    except KeyboardInterrupt:  # pragma: no cover - race with SIG_IGN
        pass
    finally:
        stop.set()
