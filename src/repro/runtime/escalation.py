"""Adaptive budget escalation.

Fixed budgets force an unpleasant choice: small ones truncate real
verdicts, big ones waste minutes on protocols that finish in a hundred
states.  Escalation resolves it: start small, and while the result is
exhausted *for a budget reason* (states or depth — the retriable ones),
retry with geometrically grown budgets until the result is exact or a
hard ceiling (states, depth, attempts, estimated memory, or the
governing deadline) is hit.

Two entry points:

* :func:`explore_escalating` — escalate a state-space exploration,
  **reusing prior work**: each retry resumes from the previous attempt's
  frontier (:func:`repro.semantics.lts.resume_exploration`) instead of
  re-exploring from scratch, and can checkpoint between attempts.
* :func:`escalate` — escalate any budgeted check (a callable taking a
  :class:`Budget`), for verdicts whose internals cannot be resumed.

Both return the final result paired with an :class:`EscalationReport`
describing every attempt, so callers (and benchmarks) can see what the
retry policy cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, TypeVar

from repro.core.errors import ReproError
from repro.runtime.deadline import RunControl, resolve_control
from repro.runtime.exhaustion import BUDGET_REASONS, Exhaustion
from repro.semantics.lts import Budget, DEFAULT_BUDGET, Graph, explore, resume_exploration
from repro.semantics.system import System

T = TypeVar("T")


class EscalationError(ReproError):
    """Escalation was asked to judge a result it cannot interpret."""


def estimate_graph_memory_mb(graph: Graph) -> float:
    """Rough resident-size estimate of an explored graph, in MiB.

    Canonical keys dominate; systems and transitions are charged a flat
    per-object overhead.  This is a *ceiling heuristic* for escalation,
    not an accounting tool.
    """
    key_bytes = sum(len(key) for key in graph.states)
    edge_count = sum(len(out) for out in graph.edges.values())
    return (2 * key_bytes + 600 * len(graph.states) + 200 * edge_count) / (1024 * 1024)


@dataclass(frozen=True, slots=True)
class EscalationPolicy:
    """How budgets grow and where they stop.

    Attributes:
        state_factor: multiplier for ``max_states`` per attempt.
        depth_factor: multiplier for ``max_depth`` per attempt (kept
            gentler by default — depth growth multiplies the frontier).
        max_attempts: total attempts, the initial one included.
        state_ceiling / depth_ceiling: hard caps on the grown budget.
        memory_ceiling_mb: stop when the partial graph's estimated size
            exceeds this (``None`` disables the check; only
            :func:`explore_escalating` can apply it — generic verdicts
            expose no graph to measure).
    """

    state_factor: float = 4.0
    depth_factor: float = 2.0
    max_attempts: int = 6
    state_ceiling: int = 200_000
    depth_ceiling: int = 1024
    memory_ceiling_mb: Optional[float] = None

    def next_budget(self, budget: Budget) -> Optional[Budget]:
        """The grown budget, or ``None`` when the ceilings allow no
        further growth."""
        grown = Budget(
            min(max(int(budget.max_states * self.state_factor), budget.max_states + 1),
                self.state_ceiling),
            min(max(int(budget.max_depth * self.depth_factor), budget.max_depth + 1),
                self.depth_ceiling),
        )
        if grown == budget:
            return None
        return Budget(
            max(grown.max_states, budget.max_states),
            max(grown.max_depth, budget.max_depth),
        )


DEFAULT_POLICY = EscalationPolicy()

#: Reasons an escalation loop gives up (``EscalationReport.stopped``).
STOP_CEILING = "ceiling"
STOP_ATTEMPTS = "attempts"
STOP_MEMORY = "memory"
STOP_INTERRUPTED = "interrupted"


@dataclass(frozen=True, slots=True)
class Attempt:
    """One budgeted run inside an escalation loop."""

    budget: Budget
    exhaustion: Optional[Exhaustion]
    elapsed: float

    @property
    def exact(self) -> bool:
        return self.exhaustion is None


@dataclass(frozen=True, slots=True)
class EscalationReport:
    """What the retry policy did and why it stopped.

    ``exact`` means the final attempt completed within its budget;
    otherwise ``stopped`` names the giving-up reason (``"ceiling"``,
    ``"attempts"``, ``"memory"``, or ``"interrupted"`` when the last
    exhaustion was not retriable — deadline, cancellation, fault).
    """

    attempts: tuple[Attempt, ...]
    exact: bool
    stopped: Optional[str] = None

    @property
    def total_elapsed(self) -> float:
        return sum(attempt.elapsed for attempt in self.attempts)

    def describe(self) -> str:
        ladder = " -> ".join(
            f"{a.budget.max_states}s/{a.budget.max_depth}d" for a in self.attempts
        )
        outcome = (
            "exact" if self.exact else f"gave up ({self.stopped})"
        )
        return (
            f"escalation {outcome} after {len(self.attempts)} attempt(s) "
            f"[{ladder}], {self.total_elapsed:.2f}s total"
        )


def _giving_up_reason(
    exhaustion: Optional[Exhaustion],
    attempts_used: int,
    policy: EscalationPolicy,
    budget: Budget,
) -> Optional[str]:
    """Why the loop must stop now, or ``None`` to escalate once more."""
    if exhaustion is None:
        return None
    if not set(exhaustion.reasons) <= BUDGET_REASONS:
        return STOP_INTERRUPTED
    if attempts_used >= policy.max_attempts:
        return STOP_ATTEMPTS
    if policy.next_budget(budget) is None:
        return STOP_CEILING
    return None


def explore_escalating(
    system: System,
    budget: Budget = DEFAULT_BUDGET,
    policy: EscalationPolicy = DEFAULT_POLICY,
    control: Optional[RunControl] = None,
    checkpoint_path: Optional[str] = None,
) -> tuple[Graph, EscalationReport]:
    """Explore with escalating budgets, resuming between attempts.

    Each truncated attempt's frontier seeds the next, so the total work
    is close to a single run at the final budget.  With
    ``checkpoint_path`` the partial graph is saved after every truncated
    attempt, making the whole loop kill-resumable.
    """
    ctl = resolve_control(control)
    attempts: list[Attempt] = []
    graph: Optional[Graph] = None
    while True:
        started = time.monotonic()
        graph = (
            explore(system, budget, ctl)
            if graph is None
            else resume_exploration(graph, budget, ctl)
        )
        attempts.append(Attempt(budget, graph.exhaustion, time.monotonic() - started))
        if graph.exhaustion is None:
            return graph, EscalationReport(tuple(attempts), exact=True)
        if checkpoint_path is not None:
            from repro.runtime.checkpoint import Checkpoint

            Checkpoint(graph, budget).save(checkpoint_path)
        stopped = _giving_up_reason(graph.exhaustion, len(attempts), policy, budget)
        if stopped is None and policy.memory_ceiling_mb is not None:
            if estimate_graph_memory_mb(graph) >= policy.memory_ceiling_mb:
                stopped = STOP_MEMORY
        if stopped is not None:
            return graph, EscalationReport(tuple(attempts), exact=False, stopped=stopped)
        budget = policy.next_budget(budget)  # type: ignore[assignment]


_MISSING = object()


def result_exhaustion(result: Any) -> Optional[Exhaustion]:
    """Best-effort extraction of a result's exhaustion record.

    Understands anything with an ``exhaustion`` attribute, the
    ``exhaustive``/``truncated`` boolean conventions, and the
    ``(value, exhaustive)`` tuples some primitives return.  Booleans are
    mapped to a bare budget-reason record (``states+depth``) so the
    escalation loop treats them as retriable.
    """
    probed = getattr(result, "exhaustion", _MISSING)
    if probed is not _MISSING:
        return probed
    exhaustive = getattr(result, "exhaustive", None)
    if exhaustive is None:
        truncated = getattr(result, "truncated", None)
        if truncated is not None:
            exhaustive = not truncated
    if exhaustive is None and isinstance(result, tuple) and result:
        last = result[-1]
        if isinstance(last, bool):
            exhaustive = last
    if exhaustive is None:
        raise EscalationError(
            f"cannot judge exactness of {type(result).__name__!r}; pass exact=..."
        )
    return None if exhaustive else Exhaustion(("states", "depth"))


def escalate(
    run: Callable[[Budget], T],
    budget: Budget = DEFAULT_BUDGET,
    policy: EscalationPolicy = DEFAULT_POLICY,
    control: Optional[RunControl] = None,
    exact: Optional[Callable[[T], bool]] = None,
) -> tuple[T, EscalationReport]:
    """Run a budgeted check with geometrically growing budgets.

    ``run`` is invoked with the current budget; its result is judged by
    ``exact`` (default: :func:`result_exhaustion`-based).  Unlike
    :func:`explore_escalating` nothing is reused between attempts — use
    this for verdicts whose exploration is internal.
    """
    ctl = resolve_control(control)
    attempts: list[Attempt] = []
    while True:
        started = time.monotonic()
        result = run(budget)
        elapsed = time.monotonic() - started
        if exact is not None:
            exhaustion = None if exact(result) else Exhaustion(("states", "depth"))
        else:
            exhaustion = result_exhaustion(result)
        attempts.append(Attempt(budget, exhaustion, elapsed))
        if exhaustion is None:
            return result, EscalationReport(tuple(attempts), exact=True)
        if ctl.interruption() is not None:
            return result, EscalationReport(
                tuple(attempts), exact=False, stopped=STOP_INTERRUPTED
            )
        stopped = _giving_up_reason(exhaustion, len(attempts), policy, budget)
        if stopped is not None:
            return result, EscalationReport(tuple(attempts), exact=False, stopped=stopped)
        budget = policy.next_budget(budget)  # type: ignore[assignment]
