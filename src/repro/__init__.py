"""repro — authentication primitives for protocol specifications.

A complete, executable reproduction of

    C. Bodei, P. Degano, R. Focardi, C. Priami.
    "Authentication Primitives for Protocol Specifications", PACT 2003.

The library implements the paper's extension of the spi calculus with
two authentication primitives:

* **partner authentication** — channels localized by *relative
  addresses* (``c@l``) or location variables (``c@lam``), pinned to one
  partner for a whole session by the abstract machine;
* **message authentication** — every datum carries the location of its
  creator, testable with the *address matching* operator ``[M =~ N]``.

On top of the calculus it provides the paper's verification story:
may-testing (Definition 3), secure implementation (Definition 4) over
attacker/tester families, barbed weak simulation (the proof technique of
Propositions 2 and 4), automatic attack search with narration
reconstruction, and an Alice&Bob narration compiler.

Quickstart::

    from repro import (
        Configuration, Name, abstract_protocol, crypto_protocol,
        securely_implements, standard_attackers,
    )

    c = Name("c")
    spec = Configuration(
        parts=(("P", abstract_protocol()),), private=(c,),
        subroles=(("P", (0,), "A"), ("P", (1,), "B")),
    )
    impl = Configuration(
        parts=(("P2", crypto_protocol()),), private=(c,),
        subroles=(("P2", (0,), "A"), ("P2", (1,), "B")),
    )
    verdict = securely_implements(impl, spec, standard_attackers([c]))
    assert verdict.secure
"""

from repro.core.addresses import Location, RelativeAddress
from repro.core.errors import (
    AddressError,
    BudgetExceededError,
    EquivalenceError,
    InstantiationError,
    NarrationError,
    ParseError,
    ProcessError,
    ReproError,
    SemanticsError,
    SubstitutionError,
    TermError,
)
from repro.core.processes import (
    AddrMatch,
    Case,
    Channel,
    Input,
    IntCase,
    LocVar,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
    Split,
    chan,
    parallel,
    restrict,
)
from repro.core.terms import (
    At,
    Localized,
    Name,
    Pair,
    SharedEnc,
    Succ,
    Term,
    Var,
    Zero,
    enc,
    names,
    nat,
    nat_value,
    origin,
    variables,
)
from repro.analysis.attacks import (
    Attack,
    ImplementationVerdict,
    find_attack,
    origin_tester,
    same_origin_tester,
    securely_implements,
    standard_testers,
)
from repro.analysis.intruder import (
    AttackerBudget,
    enumerate_attackers,
    forwarder,
    impersonator,
    replayer,
    standard_attackers,
)
from repro.analysis.knowledge import Knowledge, synthesizable
from repro.analysis.properties import (
    Activation,
    PropertyVerdict,
    authentication,
    freshness,
)
from repro.analysis.audit import AuditReport, audit
from repro.analysis.environment import (
    EnvVerdict,
    env_authentication,
    env_explore,
    env_freshness,
    env_secrecy,
)
from repro.analysis.secrecy import SecrecyVerdict, keeps_secret, secrecy_protocol
from repro.analysis.sessions import HookingReport, communication_partners, hooking_report
from repro.analysis.narration import (
    Message,
    NarrationSpec,
    compile_narration,
    enc_msg,
    pair_msg,
    ref,
)
from repro.equivalence.barbs import barbs, converges, exhibits
from repro.equivalence.bisimulation import BisimulationResult, weakly_bisimilar
from repro.equivalence.musttesting import (
    MustVerdict,
    must_pass_system,
    must_passes,
    must_preorder,
)
from repro.equivalence.simulation import (
    SimulationResult,
    weakly_simulated,
)
from repro.equivalence.testing import (
    Configuration,
    PreorderVerdict,
    Test,
    compose,
    may_preorder,
    part_locations,
    passes,
)
from repro.runtime import (
    Attempt,
    CancelToken,
    Checkpoint,
    CheckpointError,
    Deadline,
    EscalationPolicy,
    EscalationReport,
    Exhaustion,
    FaultError,
    FaultInjector,
    FaultPlan,
    Job,
    JobError,
    JobOutcome,
    Journal,
    JournalError,
    RunControl,
    SuiteReport,
    SupervisorError,
    escalate,
    explore_escalating,
    governed,
    inject_faults,
    journaled_results,
    load_checkpoint,
    read_journal,
    run_job,
    run_suite,
    zoo_jobs,
)
from repro.protocols.library import (
    encrypted_transport,
    narration_configuration,
    nonce_handshake,
    observer,
    plain_transport,
    wide_mouthed_frog,
)
from repro.protocols.paper import (
    OBSERVE,
    abstract_multisession,
    abstract_protocol,
    challenge_response_multisession,
    crypto_multisession,
    crypto_protocol,
    plaintext_protocol,
)
from repro.protocols.reflection import bidirectional_pm3, reflecting_attacker
from repro.protocols.zoo import ZOO, needham_schroeder_sk, otway_rees, woo_lam, yahalom
from repro.protocols.startup import m_startup, startup
from repro.semantics.actions import Barb, Comm, Transition, input_barb, output_barb
from repro.semantics.lts import (
    Budget,
    Graph,
    ReachResult,
    explore,
    find_trace,
    narrate,
    reachable,
    resume_exploration,
    search,
)
from repro.semantics.diagnostics import GraphStatistics, statistics, to_dot, to_networkx
from repro.semantics.system import System, build_system, instantiate
from repro.semantics.transitions import successors
from repro.syntax.parser import parse_address, parse_process, parse_term
from repro.syntax.sysfile import SystemFile, load_system_file, parse_system_file
from repro.syntax.pretty import render_process, render_term

__version__ = "1.0.0"

__all__ = [
    # core
    "Location", "RelativeAddress", "Name", "Var", "Pair", "SharedEnc",
    "Localized", "At", "Term", "enc", "names", "variables", "origin",
    "Zero", "Succ", "nat", "nat_value",
    "Nil", "Output", "Input", "Restriction", "Parallel", "Match",
    "AddrMatch", "Replication", "Case", "IntCase", "Split", "Channel",
    "LocVar",
    "Process", "chan", "parallel", "restrict",
    # errors
    "ReproError", "AddressError", "TermError", "ProcessError",
    "SubstitutionError", "ParseError", "SemanticsError",
    "InstantiationError", "BudgetExceededError", "NarrationError",
    "EquivalenceError",
    # semantics
    "System", "instantiate", "build_system", "successors", "Budget",
    "Graph", "explore", "reachable", "search", "ReachResult",
    "resume_exploration", "find_trace", "narrate",
    "statistics", "to_dot", "to_networkx", "GraphStatistics",
    "Barb", "Comm", "Transition", "input_barb", "output_barb",
    # runtime
    "Exhaustion", "Deadline", "CancelToken", "RunControl", "governed",
    "FaultPlan", "FaultInjector", "FaultError", "inject_faults",
    "Checkpoint", "CheckpointError", "load_checkpoint",
    "EscalationPolicy", "EscalationReport", "Attempt", "escalate",
    "explore_escalating",
    "Journal", "JournalError", "read_journal", "journaled_results",
    "Job", "JobError", "run_job",
    "JobOutcome", "SuiteReport", "SupervisorError", "run_suite",
    "zoo_jobs",
    # equivalence
    "barbs", "exhibits", "converges", "Test", "Configuration",
    "compose", "part_locations", "passes", "may_preorder",
    "PreorderVerdict", "weakly_simulated", "SimulationResult",
    "weakly_bisimilar", "BisimulationResult",
    "must_passes", "must_pass_system", "must_preorder", "MustVerdict",
    # analysis
    "Knowledge", "synthesizable", "AttackerBudget", "standard_attackers",
    "enumerate_attackers", "forwarder", "replayer", "impersonator",
    "securely_implements", "find_attack", "Attack",
    "ImplementationVerdict", "origin_tester", "same_origin_tester",
    "standard_testers", "keeps_secret", "SecrecyVerdict",
    "authentication", "freshness", "PropertyVerdict", "Activation",
    "hooking_report", "communication_partners", "HookingReport",
    "env_explore", "env_secrecy", "env_authentication", "env_freshness",
    "EnvVerdict", "audit", "AuditReport",
    "secrecy_protocol", "NarrationSpec", "Message", "ref", "pair_msg",
    "enc_msg", "compile_narration",
    # protocols
    "startup", "m_startup", "OBSERVE", "abstract_protocol",
    "plaintext_protocol", "crypto_protocol", "abstract_multisession",
    "crypto_multisession", "challenge_response_multisession",
    "wide_mouthed_frog", "nonce_handshake", "plain_transport",
    "encrypted_transport", "narration_configuration", "observer",
    "bidirectional_pm3", "reflecting_attacker", "ZOO",
    "needham_schroeder_sk", "otway_rees", "yahalom", "woo_lam",
    # syntax
    "parse_process", "parse_term", "parse_address", "render_process",
    "render_term", "parse_system_file", "load_system_file", "SystemFile",
    "__version__",
]
