"""Tokenizer for the concrete syntax of the calculus.

The token stream feeds :mod:`repro.syntax.parser`.  The syntax is the
ASCII form emitted by :mod:`repro.syntax.pretty` (the paper's unicode
glyphs are accepted as aliases): ``nu``/``ν``, ``=~``/``≅``, ``*``/``•``
as the address separator, and ``||0`` / ``||1`` as address tags.

Lexical subtleties:

* ``||0`` is a single address-tag token, while a lone ``|`` is the
  parallel operator — the lexer resolves this greedily with lookahead;
* identifiers may carry a unique id suffix (``M#12``), so states printed
  during execution can be parsed back for debugging;
* ``0`` is its own token (the nil process).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from repro.core.errors import ParseError

#: Token kinds, used by the parser to dispatch.
KEYWORDS = frozenset({"nu", "case", "of", "in", "let"})

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<addrtag>\|\|[01])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(\#\d+)?)
  | (?P<zero>0)
  | (?P<simeq>=~|≅)
  | (?P<punct><|>|\(|\)|\{|\}|\[|\]|,|\.|\||!|=|@|\*|:|•|ν)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    """One lexeme with its source position (1-based line/column)."""

    kind: str
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "ident" and self.text == word


#: Sentinel kind for the end of input.
EOF = "eof"


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens; raises :class:`ParseError` on junk."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {source[pos]!r}", line, column)
        column = pos - line_start + 1
        text = match.group(0)
        if match.lastgroup == "ws":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos + text.rfind("\n") + 1
        else:
            kind = match.lastgroup or "punct"
            if kind == "punct":
                kind = _punct_kind(text)
            elif kind == "ident" and text in KEYWORDS:
                kind = text
            tokens.append(Token(kind, text, line, column))
        pos = match.end()
    tokens.append(Token(EOF, "", line, pos - line_start + 1))
    return tokens


_PUNCT_KINDS = {
    "<": "langle",
    ">": "rangle",
    "(": "lparen",
    ")": "rparen",
    "{": "lbrace",
    "}": "rbrace",
    "[": "lbrack",
    "]": "rbrack",
    ",": "comma",
    ".": "dot",
    "|": "pipe",
    "!": "bang",
    "=": "eq",
    "@": "at",
    "*": "bullet",
    ":": "colon",
    "•": "bullet",
    "ν": "nu",
}


def _punct_kind(text: str) -> str:
    return _PUNCT_KINDS[text]


def split_ident(text: str) -> tuple[str, int | None]:
    """Split ``M#12`` into ``("M", 12)``; plain idents get ``None``."""
    if "#" in text:
        base, _, uid = text.partition("#")
        return base, int(uid)
    return text, None
