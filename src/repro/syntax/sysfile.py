"""System files: a declarative format for whole configurations.

A *system file* describes a :class:`~repro.equivalence.testing.Configuration`
— labelled principals plus the private protocol channels — so that
complete verification scenarios can live on disk and drive the CLI::

    # the paper's P2
    channels: c

    role P = (nu KAB)(
        (nu M)(c<{M}KAB>.0)
        | c(z). case z of {w}KAB in observe<w>.0
    )

    subrole P ||0 A
    subrole P ||1 B

Grammar (line-oriented; ``#`` starts a comment):

* ``channels: n1 n2 ...`` — the private channel spellings (the set
  ``C`` of Definition 4);
* ``observe: name`` — the observation channel (optional; default
  ``observe``);
* ``role LABEL = PROCESS`` — a principal; the process source extends
  over following lines until the next directive or end of file, so
  multi-line processes need no escaping;
* ``subrole PARENT PATH LABEL`` — register a role label inside a part,
  with ``PATH`` a location suffix in address-tag notation (``||0||1``).

Roles compose left-associatively in declaration order, matching
:func:`~repro.equivalence.testing.compose`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ParseError
from repro.core.terms import Name
from repro.equivalence.testing import Configuration
from repro.syntax.parser import parse_process

_DIRECTIVE_RE = re.compile(
    r"^\s*(channels\s*:|observe\s*:|role\s+[A-Za-z_][A-Za-z0-9_]*\s*=|subrole\s)"
)
_ROLE_RE = re.compile(r"^\s*role\s+([A-Za-z_][A-Za-z0-9_]*)\s*=(.*)$", re.DOTALL)
_TAG_RE = re.compile(r"\|\|([01])")


@dataclass(frozen=True, slots=True)
class SystemFile:
    """A parsed system file."""

    configuration: Configuration
    observe: Name

    def labels(self) -> tuple[str, ...]:
        return self.configuration.labels()


def _strip_comment(line: str) -> str:
    if "#" in line:
        line = line[: line.index("#")]
    return line.rstrip()


def _split_directives(source: str) -> list[tuple[int, str]]:
    """Group the file into directive blocks.

    Returns ``(starting line number, full block text)`` pairs; lines
    that do not start a directive attach to the preceding block (they
    are continuation lines of a ``role`` process).
    """
    blocks: list[tuple[int, list[str]]] = []
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line.strip():
            continue
        if _DIRECTIVE_RE.match(line):
            blocks.append((line_no, [line]))
        else:
            if not blocks:
                raise ParseError(f"unexpected content {line.strip()!r}", line_no)
            blocks[-1][1].append(line)
    return [(line_no, "\n".join(lines)) for line_no, lines in blocks]


def parse_system_file(source: str) -> SystemFile:
    """Parse a system file into a configuration.

    Raises :class:`ParseError` (with the directive's line number) on
    malformed input.
    """
    channels: list[Name] = []
    observe = Name("observe")
    parts: list[tuple[str, object]] = []
    subroles: list[tuple[str, tuple[int, ...], str]] = []

    for line_no, block in _split_directives(source):
        head = block.strip()
        if head.startswith("channels"):
            _, _, rest = block.partition(":")
            channels.extend(Name(part) for part in rest.split())
            continue
        if head.startswith("observe"):
            _, _, rest = block.partition(":")
            names = rest.split()
            if len(names) != 1:
                raise ParseError("observe: expects exactly one channel", line_no)
            observe = Name(names[0])
            continue
        if head.startswith("subrole"):
            fields = block.split()
            if len(fields) != 4:
                raise ParseError("subrole expects: subrole PARENT PATH LABEL", line_no)
            _, parent, path_text, label = fields
            if not all(label != existing for existing, _, _ in subroles):
                raise ParseError(f"duplicate subrole {label!r}", line_no)
            if parent not in [p for p, _ in parts]:
                raise ParseError(f"subrole parent {parent!r} not declared", line_no)
            path = tuple(int(m.group(1)) for m in _TAG_RE.finditer(path_text))
            rebuilt = "".join(f"||{t}" for t in path)
            if rebuilt != path_text:
                raise ParseError(f"bad subrole path {path_text!r}", line_no)
            subroles.append((parent, path, label))
            continue
        match = _ROLE_RE.match(block)
        if match is None:
            raise ParseError(f"malformed directive {head.splitlines()[0]!r}", line_no)
        label, body = match.group(1), match.group(2)
        if label in [p for p, _ in parts]:
            raise ParseError(f"duplicate role {label!r}", line_no)
        if not body.strip():
            raise ParseError(f"role {label!r} has an empty process", line_no)
        try:
            parts.append((label, parse_process(body)))
        except ParseError as err:
            # Line/column are relative to the role body, so re-attach
            # the body as the excerpt source and name the directive.
            raise ParseError(
                f"role {label!r} (directive at line {line_no}): {err.message}",
                err.line,
                err.column,
                body,
            ) from None

    if not parts:
        raise ParseError("a system file needs at least one role", 1)
    configuration = Configuration(
        parts=tuple(parts), private=tuple(channels), subroles=tuple(subroles)
    )
    return SystemFile(configuration=configuration, observe=observe)


def load_system_file(path: str) -> SystemFile:
    """Read and parse a system file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_system_file(handle.read())
