"""Recursive-descent parser for the concrete syntax of the calculus.

Grammar (ASCII form; the pretty-printer's output parses back)::

    process  := seq ( '|' seq )*                      (left-associated)
    seq      := '0'
              | '!' '(' process ')'
              | '(' 'nu' NAME ')' '(' process ')'
              | '(' process ')'
              | channel '<' term '>' '.' seq          (output)
              | channel '(' IDENT ')' '.' seq         (input)
              | '[' term '=' term ']' seq             (match)
              | '[' term '=~' term ']' seq            (address match)
              | 'case' term 'of' '{' idents '}' term 'in' seq
              | 'let' '(' IDENT ',' IDENT ')' '=' term 'in' seq
    channel  := IDENT ( '@' index )?
    index    := address | IDENT                       (literal / loc-var)
    term     := IDENT
              | '(' term ',' term ')'                 (pair)
              | '{' terms '}' term                    (encryption)
              | '[' address ']' term?                 (localized literal)
              | '<' tags '>' term                     (runtime localized)
    address  := tags? ('*'|'•') tags?     with tags := ('||0'|'||1')+

Identifier classification follows binding: an identifier bound by an
enclosing input, ``case`` or ``let`` is a variable; anything else is a
name.  This matches the paper's convention (``x, y, z, w`` variables vs.
``a, b, c, k, m, n`` names) without reserving letters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.addresses import RelativeAddress
from repro.core.errors import ParseError
from repro.core.processes import (
    AddrMatch,
    Case,
    Channel,
    ChannelIndex,
    Input,
    IntCase,
    LocVar,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
    Split,
)
from repro.core.terms import At, Localized, Name, Pair, SharedEnc, Succ, Term, Var, Zero
from repro.syntax.lexer import EOF, Token, split_ident, tokenize


def parse_process(source: str) -> Process:
    """Parse a process from its concrete syntax.

    A :class:`ParseError` raised here carries the source text, so its
    rendered message includes the offending line with a caret under the
    column.
    """
    try:
        parser = _Parser(tokenize(source))
        proc = parser.process(bound=frozenset())
        parser.expect(EOF)
    except ParseError as err:
        raise err.with_source(source) from None
    return proc


def parse_term(source: str) -> Term:
    """Parse a closed term (identifiers become names)."""
    try:
        parser = _Parser(tokenize(source))
        term = parser.term(bound=frozenset())
        parser.expect(EOF)
    except ParseError as err:
        raise err.with_source(source) from None
    return term


def parse_address(source: str) -> RelativeAddress:
    """Parse a relative address such as ``||0||1*||1``."""
    return RelativeAddress.parse(source)


@dataclass
class _Parser:
    tokens: list[Token]
    pos: int = 0

    # -- token plumbing --------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def check(self, kind: str) -> bool:
        return self.peek().kind == kind

    def accept(self, kind: str) -> Token | None:
        if self.check(kind):
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self.advance()

    # -- processes -------------------------------------------------------

    def process(self, bound: frozenset[str]) -> Process:
        left = self.seq(bound)
        while self.accept("pipe"):
            right = self.seq(bound)
            left = Parallel(left, right)
        return left

    def seq(self, bound: frozenset[str]) -> Process:
        token = self.peek()
        if token.kind == "zero":
            self.advance()
            return Nil()
        if token.kind == "bang":
            self.advance()
            self.expect("lparen")
            body = self.process(bound)
            self.expect("rparen")
            return Replication(body)
        if token.kind == "lparen":
            # Either a restriction '(nu n)(P)' or a parenthesized process.
            if self.peek(1).kind == "nu":
                self.advance()
                self.advance()
                name_tok = self.expect("ident")
                base, uid = split_ident(name_tok.text)
                self.expect("rparen")
                self.expect("lparen")
                body = self.process(bound - {base})
                self.expect("rparen")
                return Restriction(Name(base, uid), body)
            self.advance()
            inner = self.process(bound)
            self.expect("rparen")
            return inner
        if token.kind == "lbrack":
            return self.match_process(bound)
        if token.kind == "case":
            return self.case_process(bound)
        if token.kind == "let":
            return self.let_process(bound)
        if token.kind == "ident":
            return self.prefix(bound)
        raise ParseError(
            f"expected a process, found {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )

    def prefix(self, bound: frozenset[str]) -> Process:
        subject_tok = self.expect("ident")
        base, uid = split_ident(subject_tok.text)
        subject: Term = Var(base, uid) if base in bound else Name(base, uid)
        index = self.channel_index()
        channel = Channel(subject, index)
        if self.accept("langle"):
            payload = self.term(bound)
            self.expect("rangle")
            self.expect("dot")
            continuation = self.seq(bound)
            return Output(channel, payload, continuation)
        self.expect("lparen")
        binder_tok = self.expect("ident")
        binder_base, binder_uid = split_ident(binder_tok.text)
        self.expect("rparen")
        self.expect("dot")
        continuation = self.seq(bound | {binder_base})
        return Input(channel, Var(binder_base, binder_uid), continuation)

    def channel_index(self) -> ChannelIndex:
        if not self.accept("at"):
            return None
        token = self.peek()
        if token.kind == "ident":
            self.advance()
            base, uid = split_ident(token.text)
            return LocVar(base, uid)
        if token.kind in ("addrtag", "bullet"):
            return self.address()
        raise ParseError(
            f"expected a channel index, found {token.text!r}", token.line, token.column
        )

    def match_process(self, bound: frozenset[str]) -> Process:
        self.expect("lbrack")
        left = self.term(bound)
        if self.accept("simeq"):
            right = self.term(bound)
            self.expect("rbrack")
            continuation = self.seq(bound)
            return AddrMatch(left, right, continuation)
        self.expect("eq")
        right = self.term(bound)
        self.expect("rbrack")
        continuation = self.seq(bound)
        return Match(left, right, continuation)

    def case_process(self, bound: frozenset[str]) -> Process:
        self.expect("case")
        scrutinee = self.term(bound)
        self.expect("of")
        if self.peek().is_keyword("zero") or self.peek().kind == "zero":
            return self.int_case_tail(bound, scrutinee)
        self.expect("lbrace")
        binders: list[Var] = []
        while True:
            token = self.expect("ident")
            base, uid = split_ident(token.text)
            binders.append(Var(base, uid))
            if not self.accept("comma"):
                break
        self.expect("rbrace")
        key = self.term(bound)
        self.expect("in")
        continuation = self.seq(bound | {v.ident for v in binders})
        return Case(scrutinee, tuple(binders), key, continuation)

    def int_case_tail(self, bound: frozenset[str], scrutinee: Term) -> Process:
        """``... of zero: P suc(x): Q`` (the keyword ``zero`` or the
        digit ``0`` are both accepted for the zero pattern)."""
        self.advance()  # the zero pattern
        self.expect("colon")
        zero_branch = self.seq(bound)
        suc_tok = self.expect("ident")
        if suc_tok.text != "suc":
            raise ParseError("expected 'suc' branch", suc_tok.line, suc_tok.column)
        self.expect("lparen")
        binder_tok = self.expect("ident")
        self.expect("rparen")
        self.expect("colon")
        base, uid = split_ident(binder_tok.text)
        succ_branch = self.seq(bound | {base})
        return IntCase(scrutinee, zero_branch, Var(base, uid), succ_branch)

    def let_process(self, bound: frozenset[str]) -> Process:
        self.expect("let")
        self.expect("lparen")
        first_tok = self.expect("ident")
        self.expect("comma")
        second_tok = self.expect("ident")
        self.expect("rparen")
        self.expect("eq")
        scrutinee = self.term(bound)
        self.expect("in")
        first_base, first_uid = split_ident(first_tok.text)
        second_base, second_uid = split_ident(second_tok.text)
        continuation = self.seq(bound | {first_base, second_base})
        return Split(
            scrutinee, Var(first_base, first_uid), Var(second_base, second_uid), continuation
        )

    # -- terms -----------------------------------------------------------

    def term(self, bound: frozenset[str]) -> Term:
        token = self.peek()
        if token.kind == "ident":
            # "zero" and "suc" are reserved term spellings (naturals of
            # the full calculus); they cannot be used as names.
            if token.text == "zero":
                self.advance()
                return Zero()
            if token.text == "suc" and self.peek(1).kind == "lparen":
                self.advance()
                self.expect("lparen")
                inner = self.term(bound)
                self.expect("rparen")
                return Succ(inner)
            self.advance()
            base, uid = split_ident(token.text)
            return Var(base, uid) if base in bound else Name(base, uid)
        if token.kind == "lparen":
            self.advance()
            first = self.term(bound)
            self.expect("comma")
            second = self.term(bound)
            self.expect("rparen")
            return Pair(first, second)
        if token.kind == "lbrace":
            self.advance()
            body: list[Term] = [self.term(bound)]
            while self.accept("comma"):
                body.append(self.term(bound))
            self.expect("rbrace")
            key = self.term(bound)
            return SharedEnc(tuple(body), key)
        if token.kind == "lbrack":
            self.advance()
            address = self.address()
            self.expect("rbrack")
            inner = None
            if self.peek().kind in ("ident", "lparen", "lbrace", "langle"):
                inner = self.term(bound)
            return At(address, inner)
        if token.kind == "langle":
            self.advance()
            tags: list[int] = []
            while self.check("addrtag"):
                tags.append(int(self.advance().text[-1]))
            self.expect("rangle")
            inner = self.term(bound)
            return Localized(tuple(tags), inner)
        raise ParseError(
            f"expected a term, found {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )

    def address(self) -> RelativeAddress:
        observer: list[int] = []
        while self.check("addrtag"):
            observer.append(int(self.advance().text[-1]))
        self.expect("bullet")
        target: list[int] = []
        while self.check("addrtag"):
            target.append(int(self.advance().text[-1]))
        return RelativeAddress(tuple(observer), tuple(target))
