"""Pretty-printing of terms and processes.

Two renderings are provided:

* :func:`render_term` / :func:`render_process` — a human-readable ASCII
  form that the parser in :mod:`repro.syntax.parser` accepts back
  (round-trip property, tested), with an optional ``unicode`` flag that
  switches to the paper's notation (ν, τ, •, ∥);
* :func:`canonical_process` — a canonical form in which every bound
  identity (name/variable uid) is renumbered in traversal order.  Two
  alpha-equivalent states render identically, which the state-space
  exploration uses for deduplication.
"""

from __future__ import annotations

from repro.core.addresses import RelativeAddress, location_str
from repro.core.processes import (
    AddrMatch,
    Case,
    Channel,
    Input,
    IntCase,
    LocVar,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
    Split,
)
from repro.core.terms import At, Localized, Name, Pair, SharedEnc, Succ, Term, Var, Zero


def render_term(term: Term, unicode: bool = False) -> str:
    """Render a term in concrete syntax."""
    if isinstance(term, Name):
        return term.render()
    if isinstance(term, Var):
        return term.render()
    if isinstance(term, Pair):
        return f"({render_term(term.first, unicode)}, {render_term(term.second, unicode)})"
    if isinstance(term, Zero):
        return "zero"
    if isinstance(term, Succ):
        return f"suc({render_term(term.term, unicode)})"
    if isinstance(term, SharedEnc):
        body = ", ".join(render_term(part, unicode) for part in term.body)
        return f"{{{body}}}{render_term(term.key, unicode)}"
    if isinstance(term, Localized):
        return f"{location_str(term.creator)}{render_term(term.term, unicode)}"
    if isinstance(term, At):
        addr = term.address.render(unicode=unicode)
        if term.term is None:
            return f"[{addr}]"
        return f"[{addr}]{render_term(term.term, unicode)}"
    raise TypeError(f"unknown term {term!r}")


def render_channel(ch: Channel, unicode: bool = False) -> str:
    subject = render_term(ch.subject, unicode)
    if ch.index is None:
        return subject
    if isinstance(ch.index, RelativeAddress):
        return f"{subject}@{ch.index.render(unicode=unicode)}"
    if isinstance(ch.index, LocVar):
        return f"{subject}@{ch.index.render()}"
    return f"{subject}@{location_str(ch.index)}"


def render_process(proc: Process, unicode: bool = False) -> str:
    """Render a process in concrete syntax (parseable when ASCII)."""
    return _render(proc, unicode, top=True)


def _render(proc: Process, unicode: bool, top: bool = False) -> str:
    nu = "ν" if unicode else "nu"
    bang = "!"
    if isinstance(proc, Nil):
        return "0"
    if isinstance(proc, Output):
        head = f"{render_channel(proc.channel, unicode)}<{render_term(proc.payload, unicode)}>"
        return _with_continuation(head, proc.continuation, unicode)
    if isinstance(proc, Input):
        head = f"{render_channel(proc.channel, unicode)}({proc.binder.render()})"
        return _with_continuation(head, proc.continuation, unicode)
    if isinstance(proc, Restriction):
        return f"({nu} {proc.name.render()})({_render(proc.body, unicode)})"
    if isinstance(proc, Parallel):
        inner = f"{_render(proc.left, unicode)} | {_render(proc.right, unicode)}"
        return inner if top else f"({inner})"
    if isinstance(proc, Match):
        head = f"[{render_term(proc.left, unicode)} = {render_term(proc.right, unicode)}]"
        return f"{head} {_render(proc.continuation, unicode)}"
    if isinstance(proc, AddrMatch):
        op = "≅" if unicode else "=~"
        head = f"[{render_term(proc.left, unicode)} {op} {render_term(proc.right, unicode)}]"
        return f"{head} {_render(proc.continuation, unicode)}"
    if isinstance(proc, Replication):
        return f"{bang}({_render(proc.body, unicode)})"
    if isinstance(proc, Case):
        binders = ", ".join(b.render() for b in proc.binders)
        head = (
            f"case {render_term(proc.scrutinee, unicode)} of "
            f"{{{binders}}}{render_term(proc.key, unicode)} in"
        )
        return f"{head} {_render(proc.continuation, unicode)}"
    if isinstance(proc, IntCase):
        return (
            f"case {render_term(proc.scrutinee, unicode)} of "
            f"zero: {_render(proc.zero_branch, unicode)} "
            f"suc({proc.binder.render()}): {_render(proc.succ_branch, unicode)}"
        )
    if isinstance(proc, Split):
        head = (
            f"let ({proc.first.render()}, {proc.second.render()}) = "
            f"{render_term(proc.scrutinee, unicode)} in"
        )
        return f"{head} {_render(proc.continuation, unicode)}"
    raise TypeError(f"unknown process {proc!r}")


def _with_continuation(head: str, continuation: Process, unicode: bool) -> str:
    if isinstance(continuation, Nil):
        return f"{head}.0"
    return f"{head}.{_render(continuation, unicode)}"


# ----------------------------------------------------------------------
# Canonical rendering (alpha-invariant)
# ----------------------------------------------------------------------


def canonical_process(proc: Process) -> str:
    """Render ``proc`` with uids renumbered in first-occurrence order.

    The result is identical for alpha-equivalent processes that differ
    only in the fresh uids chosen during execution, so it serves as a
    deduplication key for explored states.
    """
    renumber: dict[tuple[str, str, int | None], int] = {}

    def canon_id(kind: str, ident: str, uid: int | None) -> str:
        # Free names (uid None) keep their spelling: it is their identity.
        # Every bound identity — instantiated names, variables, location
        # variables — renames positionally so alpha-variants coincide.
        # (Degenerate shadowing of two raw same-spelled uid-less binders
        # would share a number; instantiated systems never produce it.)
        if kind == "n" and uid is None:
            return ident
        key = (kind, ident, uid)
        if key not in renumber:
            renumber[key] = len(renumber) + 1
        return f"{kind}{renumber[key]}"

    def term(t: Term) -> str:
        if isinstance(t, Name):
            # The creator location is part of a name's identity, so it
            # must survive canonicalization (uids alone are renumbered).
            rendered = canon_id("n", t.base, t.uid)
            return rendered if t.creator is None else rendered + location_str(t.creator)
        if isinstance(t, Var):
            return canon_id("v", t.ident, t.uid)
        if isinstance(t, Pair):
            return f"({term(t.first)}, {term(t.second)})"
        if isinstance(t, Zero):
            return "zero"
        if isinstance(t, Succ):
            return f"suc({term(t.term)})"
        if isinstance(t, SharedEnc):
            return "{" + ", ".join(term(p) for p in t.body) + "}" + term(t.key)
        if isinstance(t, Localized):
            return f"{location_str(t.creator)}{term(t.term)}"
        if isinstance(t, At):
            addr = t.address.render()
            return f"[{addr}]" + ("" if t.term is None else term(t.term))
        raise TypeError(f"unknown term {t!r}")

    def channel(ch: Channel) -> str:
        subject = term(ch.subject)
        if ch.index is None:
            return subject
        if isinstance(ch.index, RelativeAddress):
            return f"{subject}@{ch.index.render()}"
        if isinstance(ch.index, LocVar):
            return f"{subject}@{canon_id('l', ch.index.ident, ch.index.uid)}"
        return f"{subject}@{location_str(ch.index)}"

    def go(p: Process) -> str:
        if isinstance(p, Nil):
            return "0"
        if isinstance(p, Output):
            return f"{channel(p.channel)}<{term(p.payload)}>.{go(p.continuation)}"
        if isinstance(p, Input):
            binder = canon_id("v", p.binder.ident, p.binder.uid)
            return f"{channel(p.channel)}({binder}).{go(p.continuation)}"
        if isinstance(p, Restriction):
            return f"(nu {canon_id('n', p.name.base, p.name.uid)})({go(p.body)})"
        if isinstance(p, Parallel):
            return f"({go(p.left)} | {go(p.right)})"
        if isinstance(p, Match):
            return f"[{term(p.left)} = {term(p.right)}] {go(p.continuation)}"
        if isinstance(p, AddrMatch):
            return f"[{term(p.left)} =~ {term(p.right)}] {go(p.continuation)}"
        if isinstance(p, Replication):
            return f"!({go(p.body)})"
        if isinstance(p, Case):
            binders = ", ".join(canon_id("v", b.ident, b.uid) for b in p.binders)
            return (
                f"case {term(p.scrutinee)} of {{{binders}}}{term(p.key)} in "
                f"{go(p.continuation)}"
            )
        if isinstance(p, IntCase):
            binder = canon_id("v", p.binder.ident, p.binder.uid)
            return (
                f"case {term(p.scrutinee)} of zero: {go(p.zero_branch)} "
                f"suc({binder}): {go(p.succ_branch)}"
            )
        if isinstance(p, Split):
            first = canon_id("v", p.first.ident, p.first.uid)
            second = canon_id("v", p.second.ident, p.second.uid)
            return f"let ({first}, {second}) = {term(p.scrutinee)} in {go(p.continuation)}"
        raise TypeError(f"unknown process {p!r}")

    return go(proc)
