"""Command-line interface to the calculus.

The subcommands cover the workflows::

    repro-spi parse   FILE           # parse & pretty-print (+ tree view)
    repro-spi run     FILE           # narrated execution, first-choice
    repro-spi explore FILE           # bounded exploration, stats, dot
    repro-spi analyze SYSFILE        # MGA properties of a system file
    repro-spi secrecy TARGET         # one secrecy verdict, exit-coded
    repro-spi authentication TARGET  # one authentication verdict
    repro-spi check   IMPL SPEC      # Definition 4 between system files
    repro-spi suite   [FILE...]      # supervised parallel job batch
    repro-spi stats   JOURNAL        # per-job metrics of a suite journal
    repro-spi serve                  # long-running verification server
    repro-spi cluster                # sharded fault-tolerant cluster
    repro-spi submit  KIND [TARGET]  # one request against a server

``parse``/``run``/``explore`` take a bare process in the concrete
syntax (``-`` reads stdin, ``-e SOURCE`` passes it inline);
``analyze``/``check`` take *system files* (see
:mod:`repro.syntax.sysfile`) describing whole configurations;
``secrecy``/``authentication`` take either a system file path or a
protocol-zoo name.

Observability (see :mod:`repro.obs`): ``explore``, ``analyze``,
``secrecy``, ``authentication``, ``check`` and ``suite`` accept
``--trace FILE`` (structured JSONL trace events), ``--stats [FILE]``
(collect metrics; print them, or write JSON — for ``suite`` the file
also carries per-job and aggregate :class:`~repro.obs.stats.SuiteStats`
blocks) and ``--profile [FILE]`` (cProfile the run; ``.prof`` files
take the binary dump, anything else a text table).  The same commands
accept ``--no-state-cache`` to bypass the hash-consed canonical state
cache (see ``docs/performance.md``); verdicts and graphs are identical
either way.  ``--reduce {none,por,sym,full}`` selects the state-space
reduction mode (partial-order and/or symmetry pruning, default
``full``); verdicts are identical in every mode, only the number of
explored states changes.

``explore``/``analyze``/``check`` share the resilient-runtime flags:
``--deadline SECONDS`` bounds wall-clock time (a partial, qualified
result is printed instead of an error), ``--escalate`` retries truncated
runs with geometrically growing budgets, and ``explore`` additionally
supports ``--checkpoint PATH`` / ``--resume PATH`` to persist and
continue interrupted explorations (``--checkpoint-every N`` autosaves
every N explored states, not just at the end).

``suite`` runs a batch of verification jobs on a pool of supervised
worker processes (see :mod:`repro.runtime.supervisor`): crashed, hung or
OOM-killed workers are restarted and their jobs retried from the last
checkpoint; verdicts stream to a crash-safe ``--journal`` so an
interrupted batch continues with ``--resume`` (add ``--retry-faults``
to also re-run jobs whose journaled verdict was a degraded fault).  A
first SIGINT/SIGTERM *drains* the batch — in-flight jobs finish and are
journaled, queued jobs are left for ``--resume`` — and exits 130; a
second one aborts immediately.

``serve`` / ``submit`` are the service pair (see
:mod:`repro.service`): a long-running server with admission control,
per-protocol circuit breakers and graceful SIGTERM drain, and a
retrying client for it.  ``docs/service.md`` has the wire protocol.
``cluster`` scales ``serve`` out: a health-checked router shards
requests by protocol key across N supervised ``serve`` backends, with
crash respawn, failover, and journal-keyed exactly-once re-drive
(``docs/cluster.md``); ``submit --cluster DIR`` targets it via the
cluster's discovery file.

Exit status: 0 on success, 1 when a check finds an attack or a property
violation, 2 on errors (usage, parse, missing/corrupt files, an
unreachable server), 3 when a served verdict came back degraded or the
server was draining, 130 when interrupted (including a drained
``suite``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Optional, Sequence

from repro.core.errors import ReproError
from repro.runtime.deadline import Deadline, RunControl, governed
from repro.semantics.diagnostics import statistics, to_dot
from repro.semantics.lts import Budget, explore, resume_exploration
from repro.semantics.system import System, instantiate
from repro.semantics.transitions import successors
from repro.syntax.parser import parse_process
from repro.syntax.pretty import render_process
from repro.syntax.sysfile import load_system_file


def _read_source(args: argparse.Namespace) -> str:
    if args.expr is not None:
        return args.expr
    if args.file == "-":
        return sys.stdin.read()
    with open(args.file, "r", encoding="utf-8") as handle:
        return handle.read()


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "file", nargs="?", default="-", help="source file ('-' for stdin)"
    )
    parser.add_argument(
        "-e", "--expr", default=None, help="inline source (overrides FILE)"
    )


def _add_runtime_arguments(
    parser: argparse.ArgumentParser, checkpointing: bool = False
) -> None:
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock limit; expiry yields a partial, qualified result",
    )
    parser.add_argument(
        "--escalate",
        action="store_true",
        help="retry truncated runs with geometrically growing budgets",
    )
    if checkpointing:
        parser.add_argument(
            "--checkpoint",
            default=None,
            metavar="PATH",
            help="save the frontier of a truncated exploration here",
        )
        parser.add_argument(
            "--checkpoint-every",
            type=int,
            default=None,
            metavar="STATES",
            help="autosave --checkpoint every N explored states, "
            "not only at the end",
        )
        parser.add_argument(
            "--resume",
            default=None,
            metavar="PATH",
            help="continue an exploration from a saved checkpoint",
        )


def _add_certify_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--certify",
        action="store_true",
        help="require every violation verdict to carry a witness that "
        "replays under the unreduced, uncached semantics; a violation "
        "whose witness fails to replay degrades to a retryable fault "
        "instead of being reported (see docs/verification.md)",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-state-cache",
        action="store_true",
        help="disable the hash-consed canonical state cache (escape "
        "hatch; results are byte-identical either way, just slower)",
    )
    parser.add_argument(
        "--reduce",
        choices=("none", "por", "sym", "full"),
        default=None,
        help="state-space reduction mode: partial-order ('por'), "
        "symmetry ('sym'), both ('full', the default) or neither "
        "('none'); verdicts are identical in every mode, only the "
        "number of explored states changes (see docs/performance.md)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write structured JSONL trace events (spans, counters) here",
    )
    parser.add_argument(
        "--stats",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="collect run metrics; print them ('-', the default) or "
        "write them to FILE as JSON",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="cProfile the run; '-' prints a table, *.prof dumps "
        "pstats data, anything else gets the table as text",
    )


def _control(args: argparse.Namespace, on_checkpoint=None) -> Optional[RunControl]:
    deadline = getattr(args, "deadline", None)
    every = getattr(args, "checkpoint_every", None) if on_checkpoint else None
    if deadline is None and every is None:
        return None
    return RunControl(
        deadline=Deadline.after(deadline) if deadline is not None else None,
        checkpoint_every=every,
        on_checkpoint=on_checkpoint if every else None,
    )


def _load_system(args: argparse.Namespace) -> System:
    return instantiate(parse_process(_read_source(args)))


def _show_tree(system: System, out) -> None:
    from repro.core.addresses import location_str

    print("tree of sequential processes:", file=out)
    for loc, leaf in system.leaves():
        print(f"  {location_str(loc):14s} {render_process(leaf)}", file=out)


def cmd_parse(args: argparse.Namespace, out) -> int:
    proc = parse_process(_read_source(args))
    print(render_process(proc, unicode=args.unicode), file=out)
    if args.tree:
        _show_tree(instantiate(proc), out)
    return 0


def cmd_run(args: argparse.Namespace, out) -> int:
    system = _load_system(args)
    _show_tree(system, out)
    for step_no in range(1, args.steps + 1):
        options = successors(system)
        if not options:
            print(f"stuck after {step_no - 1} steps", file=out)
            return 0
        chosen = options[0]
        if len(options) > 1:
            print(f"step {step_no} ({len(options)} choices, taking the first):", file=out)
        else:
            print(f"step {step_no}:", file=out)
        print(f"  {chosen.describe(system)}", file=out)
        system = chosen.target
    print(f"stopped after {args.steps} steps (budget)", file=out)
    return 0


def cmd_explore(args: argparse.Namespace, out) -> int:
    from repro.runtime.checkpoint import Checkpoint
    from repro.runtime.escalation import explore_escalating

    budget = Budget(max_states=args.max_states, max_depth=args.max_depth)
    if args.checkpoint_every is not None and args.checkpoint is None:
        raise ReproError("--checkpoint-every needs --checkpoint PATH to write to")
    sink = None
    if args.checkpoint is not None and args.checkpoint_every:
        sink = lambda graph: Checkpoint(graph, budget).save(args.checkpoint)
    ctl = _control(args, on_checkpoint=sink)
    if args.resume is not None:
        checkpoint = Checkpoint.load(args.resume)
        print(
            f"resuming from {args.resume} "
            f"({checkpoint.graph.state_count()} states explored)",
            file=out,
        )
        graph = resume_exploration(checkpoint.graph, budget, ctl)
    elif args.escalate:
        system = _load_system(args)
        graph, report = explore_escalating(
            system, budget, control=ctl, checkpoint_path=args.checkpoint
        )
        print(report.describe(), file=out)
    else:
        system = _load_system(args)
        graph = explore(system, budget, ctl)
    if args.checkpoint is not None and not args.escalate:
        if graph.truncated:
            Checkpoint(graph, budget).save(args.checkpoint)
            print(f"checkpoint written to {args.checkpoint}", file=out)
        else:
            print("exploration exact; no checkpoint needed", file=out)
    print(statistics(graph).describe(), file=out)
    if args.dot is not None:
        dot = to_dot(graph)
        if args.dot == "-":
            print(dot, file=out)
        else:
            with open(args.dot, "w", encoding="utf-8") as handle:
                handle.write(dot + "\n")
            print(f"dot graph written to {args.dot}", file=out)
    return 0


def cmd_analyze(args: argparse.Namespace, out) -> int:
    from repro.analysis.environment import (
        env_authentication,
        env_freshness,
        env_secrecy,
    )
    from repro.runtime.escalation import escalate

    sysfile = load_system_file(args.sysfile)
    budget = Budget(max_states=args.max_states, max_depth=args.max_depth)
    cfg = sysfile.configuration

    violated = False

    def run_check(label, check):
        nonlocal violated
        if args.escalate:
            verdict, report = escalate(check, budget)
            print(f"{label}: {verdict.describe()}", file=out)
            if len(report.attempts) > 1 or not report.exact:
                print(f"  {report.describe()}", file=out)
        else:
            verdict = check(budget)
            print(f"{label}: {verdict.describe()}", file=out)
        if not verdict.holds:
            violated = True

    with governed(control=_control(args)):
        if args.sender is not None:
            run_check(
                f"authentication({args.sender})",
                lambda b: env_authentication(
                    cfg, args.sender, observe=sysfile.observe.base, budget=b
                ),
            )
        run_check(
            "freshness",
            lambda b: env_freshness(cfg, observe=sysfile.observe.base, budget=b),
        )
        for secret in args.secret or []:
            run_check(
                f"secrecy({secret})",
                lambda b, s=secret: env_secrecy(cfg, s, budget=b),
            )
    return 1 if violated else 0


def cmd_property(args: argparse.Namespace, out) -> int:
    """``secrecy`` / ``authentication``: one exit-coded property verdict.

    The target is a system file path when one exists at that path, a
    protocol-zoo name otherwise.  Execution goes through
    :func:`repro.runtime.worker.run_job`, so the verdict matches what a
    ``suite`` job over the same target would journal — stat block
    included.
    """
    import os

    from repro.runtime.worker import Job, run_job

    if os.path.exists(args.target):
        target = {"sysfile": args.target}
    else:
        from repro.protocols.zoo import ZOO

        if args.target not in ZOO:
            raise ReproError(
                f"{args.target!r} is neither a system file nor one of the "
                f"zoo protocols ({', '.join(sorted(ZOO))})"
            )
        target = {"zoo": args.target}
    job = Job(
        id=f"{args.command}:{args.target}",
        kind=args.command,
        target=target,
        max_states=args.max_states,
        max_depth=args.max_depth,
        secret=getattr(args, "secret", None),
        sender=getattr(args, "sender", None),
    )
    from repro.semantics.replay import CertificationError

    try:
        result = run_job(job, deadline=args.deadline)
    except CertificationError as err:
        # --certify found a violation whose witness does not replay
        # under the unreduced, uncached semantics.  That is a fault in
        # the search, not a verdict: exit 3 (degraded), never a silent
        # 0 or a confident 1.
        print(f"certification failed: {err}", file=out)
        return 3
    print(result["summary"], file=out)
    if result.get("certified"):
        print(
            "certified: witness replayed independently "
            "(reduction and state cache disabled)",
            file=out,
        )
    return 1 if result["violated"] else 0


def cmd_stats(args: argparse.Namespace, out) -> int:
    """``stats``: render a suite journal's per-job metrics as a table.

    A missing, empty, or wholly torn journal is an *empty* run, not an
    error: operators point dashboards at journals that may not exist
    yet (a cluster that has served no traffic), and a cron'd ``stats``
    call must not page anyone over that.  The table renders with zero
    rows and the exit status is 0.
    """
    import json

    import os

    from repro.obs.stats import SuiteStats, render_job_table
    from repro.runtime.journal import journaled_results

    if os.path.exists(args.journal):
        records = list(journaled_results(args.journal).values())
    else:
        records = []
    print(render_job_table(records), file=out)
    if args.json is not None:
        payload = SuiteStats.from_records(records).to_json()
        if args.json == "-":
            print(json.dumps(payload, indent=2), file=out)
        else:
            from repro.runtime.atomic import atomic_write_json

            atomic_write_json(args.json, payload)
            print(f"stats JSON written to {args.json}", file=out)
    return 0


def cmd_check(args: argparse.Namespace, out) -> int:
    from repro.analysis.attacks import securely_implements
    from repro.analysis.intruder import standard_attackers

    impl = load_system_file(args.impl)
    spec = load_system_file(args.spec)
    if set(impl.configuration.private) != set(spec.configuration.private):
        raise ReproError("the two system files declare different channels")
    from repro.runtime.escalation import escalate

    budget = Budget(max_states=args.max_states, max_depth=args.max_depth)
    roles = [label for _, _, label in impl.configuration.subroles]
    roles = roles or list(impl.configuration.labels())

    def run(b: Budget):
        return securely_implements(
            impl.configuration,
            spec.configuration,
            standard_attackers(list(impl.configuration.private)),
            observe=impl.observe,
            roles=tuple(roles) + ("E",),
            budget=b,
        )

    with governed(control=_control(args)):
        if args.escalate:
            verdict, report = escalate(run, budget)
            if len(report.attempts) > 1 or not report.exact:
                print(report.describe(), file=out)
        else:
            verdict = run(budget)
    print(verdict.describe(), file=out)
    from repro.runtime.worker import certify_enabled

    if not verdict.secure and certify_enabled():
        from repro.semantics.replay import replay_witness

        attack = verdict.attack
        witness = attack.witness if attack is not None else None
        if witness is None:
            print("certification failed: attack carries no witness", file=out)
            return 3
        recipe = {
            "source": "check",
            "impl": args.impl,
            "spec": args.spec,
            "observe": impl.observe.base,
            "roles": tuple(roles) + ("E",),
            "attacker": attack.attacker_name,
            "test": attack.test.name,
        }
        report = replay_witness(witness.sealed(recipe).to_json())
        if not report.ok:
            print(f"certification failed: {report.describe()}", file=out)
            return 3
        print(report.describe(), file=out)
    return 0 if verdict.secure else 1


def _suite_jobs(args: argparse.Namespace) -> list:
    """Assemble the job list from positional files, --zoo and --suite-file."""
    import json

    from repro.runtime.supervisor import zoo_jobs
    from repro.runtime.worker import Job, JobError

    jobs = []
    for path in args.files:
        jobs.append(
            Job(
                id=f"explore:{path}",
                kind="explore",
                target={"spi": path},
                max_states=args.max_states,
                max_depth=args.max_depth,
                checkpoint_every=args.checkpoint_every or 400,
            )
        )
    if args.zoo:
        protocols = None if "all" in args.zoo else args.zoo
        jobs.extend(
            zoo_jobs(
                max_states=args.max_states,
                max_depth=args.max_depth,
                protocols=protocols,
            )
        )
    if args.suite_file is not None:
        try:
            with open(args.suite_file, "r", encoding="utf-8") as handle:
                described = json.load(handle)
        except ValueError as err:
            raise ReproError(f"suite file {args.suite_file!r} is not JSON: {err}")
        if not isinstance(described, list):
            raise JobError(f"suite file {args.suite_file!r} must hold a JSON list")
        jobs.extend(Job.from_json(entry) for entry in described)
    if not jobs:
        raise ReproError("nothing to run: give .spi files, --zoo, or --suite-file")
    return jobs


def cmd_suite(args: argparse.Namespace, out) -> int:
    from repro.runtime.faults import FaultPlan
    from repro.runtime.lifecycle import drain_signals
    from repro.runtime.supervisor import run_suite

    if args.resume and args.journal is None:
        raise ReproError("--resume needs --journal PATH to resume from")
    if args.retry_faults and not args.resume:
        raise ReproError("--retry-faults only means something with --resume")
    plan = None
    if args.inject_crash_at or args.inject_fail_at:
        plan = FaultPlan(
            fail_at=tuple(args.inject_fail_at or ()),
            exit_at=tuple(args.inject_crash_at or ()),
        )
    # First SIGINT/SIGTERM drains (in-flight jobs finish and are
    # journaled; queued jobs wait for --resume), a second one aborts.
    with drain_signals() as drain:
        report = run_suite(
            _suite_jobs(args),
            workers=args.jobs,
            retries=args.retries,
            job_deadline=args.job_deadline,
            max_rss_mb=args.max_rss,
            journal_path=args.journal,
            resume=args.resume,
            retry_faults=args.retry_faults,
            checkpoint_dir=args.checkpoint_dir,
            fault_plan=plan,
            on_outcome=lambda outcome: print(outcome.describe(), file=out),
            drain=drain,
            verdict_store=args.verdict_store,
        )
    print(report.describe(), file=out)
    # Stash the report for --stats post-processing (see _dispatch).
    args.suite_report = report
    if report.drained:
        return 130
    return 1 if report.violations else 0


def _parse_tcp(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ReproError(f"bad --tcp address {spec!r} (expected HOST:PORT)")


def cmd_serve(args: argparse.Namespace, out) -> int:
    """``serve``: run the verification service until drained.

    Prints one ``listening on ...`` line per bound endpoint (so
    launchers can wait for readiness and discover an ephemeral TCP
    port), then serves until SIGINT/SIGTERM, draining gracefully:
    listeners close, queued requests are shed with ``draining``
    responses (journaled, so a batch ``--resume`` completes them),
    in-flight jobs get ``--drain-grace`` seconds, and the exit status
    is 0.
    """
    from repro.runtime.lifecycle import drain_signals
    from repro.service.server import Server, ServerConfig

    host, port = _parse_tcp(args.tcp) if args.tcp is not None else (None, None)
    server = Server(ServerConfig(
        socket_path=args.socket,
        host=host,
        port=port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        retries=args.retries,
        job_deadline=args.job_deadline,
        max_rss_mb=args.max_rss,
        journal_path=args.journal,
        checkpoint_dir=args.checkpoint_dir,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        breaker_max=args.breaker_max or None,  # 0 = unbounded
        rebuild_breakers=args.rebuild_breakers,
        drain_grace=args.drain_grace,
        allow_fault_injection=args.allow_fault_injection,
        dedupe=args.dedupe,
        verdict_store=args.verdict_store,
    ))
    server.bind()
    if args.socket is not None:
        print(f"listening on unix:{args.socket}", file=out, flush=True)
    if server.tcp_address is not None:
        bound_host, bound_port = server.tcp_address
        print(f"listening on tcp:{bound_host}:{bound_port}", file=out, flush=True)
    with drain_signals(on_signal=lambda signum: server.request_drain()):
        code = server.serve_forever()
    print("drained", file=out, flush=True)
    return code


def cmd_cluster(args: argparse.Namespace, out) -> int:
    """``cluster``: run a fault-tolerant sharded cluster until drained.

    Spawns and supervises ``--shards`` local ``serve`` backends under
    ``--dir`` (sockets, journals, logs, and the ``cluster.json``
    discovery file all live there), routes requests to them by protocol
    key over a consistent-hash ring, health-checks them, respawns
    crashes with backoff, and fails over in-flight requests with
    journal-keyed exactly-once dedupe.  See docs/cluster.md.
    """
    import signal as _signal

    from repro.runtime.lifecycle import drain_signals
    from repro.service.router import Router, RouterConfig, run_standby

    host, port = _parse_tcp(args.tcp) if args.tcp is not None else (None, None)
    chaos = None
    if args.chaos_plan is not None:
        from repro.service.chaos import load_chaos_plan

        chaos = load_chaos_plan(args.chaos_plan)
    config = RouterConfig(
        dir=args.dir,
        socket_path=args.socket,
        host=host,
        port=port,
        shards=args.shards,
        remote=tuple(args.remote or ()),
        workers_per_shard=args.workers_per_shard,
        queue_limit=args.queue_limit,
        retries=args.retries,
        job_deadline=args.job_deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        shard_drain_grace=args.shard_drain_grace,
        drain_grace=args.drain_grace,
        health_interval=args.health_interval,
        health_timeout=args.health_timeout,
        health_failures=args.health_failures,
        health_cooldown=args.health_cooldown,
        respawn_base=args.respawn_base,
        respawn_cap=args.respawn_cap,
        allow_fault_injection=args.allow_fault_injection,
        chaos=chaos,
        heartbeat_interval=args.heartbeat_interval,
        takeover_after=args.takeover_after,
        verdict_store=args.verdict_store,
        cross_check=args.cross_check,
    )
    if args.standby:
        print(f"standby watching {args.dir}", file=out, flush=True)
        code = run_standby(config)
        print("drained", file=out, flush=True)
        return code
    router = Router(config)
    router.bind()
    if args.socket is not None:
        print(f"listening on unix:{args.socket}", file=out, flush=True)
    if router.tcp_address is not None:
        bound_host, bound_port = router.tcp_address
        print(f"listening on tcp:{bound_host}:{bound_port}", file=out, flush=True)
    with drain_signals(on_signal=lambda signum: router.request_drain()):
        try:
            _signal.signal(_signal.SIGHUP, lambda *_: router.signal_resize())
        except (ValueError, OSError, AttributeError):
            pass  # not the main thread, or no SIGHUP on this platform
        code = router.serve_forever()
    print("drained", file=out, flush=True)
    return code


def _cluster_router_address(cluster_dir: str) -> Any:
    """Resolve the router address from a cluster directory's
    ``cluster.json`` discovery file."""
    import json
    import os

    path = os.path.join(cluster_dir, "cluster.json")
    try:
        with open(path, encoding="utf-8") as handle:
            discovery = json.load(handle)
    except (OSError, ValueError) as err:
        raise ReproError(f"cannot read cluster discovery file {path}: {err}")
    router = discovery.get("router") or {}
    if router.get("socket"):
        return ("unix", router["socket"])
    if router.get("tcp"):
        host, port = router["tcp"]
        return ("tcp", (host, int(port)))
    raise ReproError(f"{path} names no router endpoint")


def cmd_cluster_resize(args: argparse.Namespace, out) -> int:
    """``cluster-resize``: reshard a running cluster to N shards.

    Sends the router a ``resize`` control frame; the router adds (or
    drains and retires) shards live, remapping only the ring arcs that
    moved.  Exit codes: 0 resized, 2 unreachable, 3 refused (draining
    or bad count).
    """
    import json

    from repro.service.client import ServiceClient, ServiceUnavailable

    address = _cluster_router_address(args.dir)
    try:
        reply = ServiceClient(address, timeout=args.timeout, retries=0).call(
            {"kind": "resize", "shards": args.shards}
        )
    except ServiceUnavailable as err:
        print(f"error: {err}", file=out)
        return 2
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True), file=out)
    if reply.get("status") != "ok":
        if not args.json:
            print(
                f"refused: {reply.get('error', reply.get('status'))}", file=out
            )
        return 3
    resize = reply.get("resize") or {}
    if not args.json:
        print(
            f"resized to {resize.get('shards', args.shards)} shard(s): "
            f"added {sorted(resize.get('added', []))}, "
            f"removed {sorted(resize.get('removed', []))}",
            file=out,
        )
    return 0


def cmd_cluster_status(args: argparse.Namespace, out) -> int:
    """``cluster-status``: one-shot health report for a running cluster.

    Reads the router address from ``DIR/cluster.json``, asks it for
    ``status``, and renders the router and per-shard rows as a table
    (or the raw frame with ``--json``).  Exit codes: 0 reachable,
    2 unreachable router / unreadable discovery.
    """
    import json

    from repro.service.client import ServiceClient, ServiceUnavailable

    address = _cluster_router_address(args.dir)
    try:
        reply = ServiceClient(address, timeout=args.timeout, retries=0).call(
            {"kind": "status"}
        )
    except ServiceUnavailable as err:
        print(f"error: router unreachable: {err}", file=out)
        return 2
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True), file=out)
        return 0
    cluster = reply.get("cluster") or {}
    ring = reply.get("ring") or {}
    print(
        f"router pid {cluster.get('pid')} role {cluster.get('role', 'primary')}"
        f" uptime {cluster.get('uptime', 0):.1f}s"
        f" draining={cluster.get('draining')}",
        file=out,
    )
    print(
        f"shards {cluster.get('healthy', 0)}/{cluster.get('shards', 0)} healthy"
        f" (ring members: {', '.join(ring.get('members', [])) or 'none'};"
        f" retired: {', '.join(cluster.get('retired', [])) or 'none'})",
        file=out,
    )
    crosscheck = reply.get("crosscheck")
    if crosscheck:
        print(
            f"cross-check rate {crosscheck.get('rate', 0):g}: "
            f"{crosscheck.get('sampled', 0)} sampled, "
            f"{crosscheck.get('agreed', 0)} agreed, "
            f"{crosscheck.get('divergent', 0)} divergent, "
            f"{crosscheck.get('errors', 0)} error(s); "
            f"quarantined: "
            f"{', '.join(crosscheck.get('quarantined', [])) or 'none'}",
            file=out,
        )
    rows = [
        ("SHARD", "ADDRESS", "PID", "ALIVE", "RESTARTS", "INFLIGHT",
         "HEALTHY", "BREAKER", "LAST_ERROR"),
    ]
    for shard_id, shard in sorted((reply.get("shards") or {}).items()):
        health = shard.get("health") or {}
        breaker = (health.get("breaker") or {}).get("state", "?")
        error = health.get("last_error") or ""
        rows.append((
            shard_id + (" (retiring)" if shard.get("retiring") else ""),
            str(shard.get("address", "?")),
            str(shard.get("pid", "-")),
            str(shard.get("alive", "-")),
            str(shard.get("restarts", 0)),
            str(shard.get("inflight", 0)),
            str(health.get("healthy", "?")),
            breaker,
            error[:40],
        ))
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    for row in rows:
        print(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip(),
            file=out,
        )
    return 0


def cmd_witness(args: argparse.Namespace, out) -> int:
    """``witness replay``: independently re-check a stored witness.

    Reads a witness JSON file (as attached to violation verdicts under
    ``--certify``), rebuilds the initial system from the witness's own
    recipe, and replays every recorded step against the *unreduced*,
    *uncached* transition relation before confirming the violated
    property at the end of the trace.  Exit codes: 0 the witness
    replays, 1 it does not (with the reason), 2 unreadable file.
    """
    import json

    from repro.semantics.replay import replay_witness

    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as err:
        raise ReproError(f"cannot read witness file {args.file!r}: {err}")
    # A verdict result object and a bare witness are both accepted —
    # operators paste whichever they have in front of them.  A bare
    # witness is recognised by its own step list; anything else
    # carrying a "witness" object is treated as a wrapper.
    if (
        isinstance(data, dict)
        and "steps" not in data
        and isinstance(data.get("witness"), dict)
    ):
        data = data["witness"]
    if args.max_nodes is not None:
        report = replay_witness(data, max_nodes=args.max_nodes)
    else:
        report = replay_witness(data)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True), file=out)
    else:
        print(report.describe(), file=out)
    return 0 if report.ok else 1


def cmd_store(args: argparse.Namespace, out) -> int:
    """``store``: inspect or maintain a persistent verdict store.

    ``stats`` renders occupancy (segments, records, keys, engine
    versions); ``compact`` rewrites the store as one segment, dropping
    superseded duplicates and stale-engine records; ``verify`` audits
    every record (checksums, and witness replay for current-engine
    violations); ``invalidate`` wipes it (rarely needed — an engine-
    version bump already hides every stored record from lookups).
    See docs/store.md.
    """
    import json

    from repro.service.store import VerdictStore

    store = VerdictStore(args.dir)
    if args.action == "verify":
        report = store.verify(replay=not args.no_replay)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True), file=out)
        else:
            print(
                f"{report['records']} record(s) in {report['segments']} "
                f"segment(s): {report['corrupt']} corrupt, "
                f"{report['torn']} torn tail(s), "
                f"{report['stale_engine']} stale-engine, "
                f"{report['witnesses']} witness(es) "
                f"({report['witness_ok']} ok, "
                f"{report['witness_failed']} failed)",
                file=out,
            )
            for failure in report["failures"]:
                print(f"  {failure}", file=out)
        return 0 if report["ok"] else 1
    if args.action == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True), file=out)
        else:
            print(
                f"{stats['directory']}: {stats['keys']} verdict(s) under engine "
                f"{stats['engine']} ({stats['records']} record(s) in "
                f"{stats['segments']} segment(s), {stats['bytes']} bytes)",
                file=out,
            )
            for engine, count in sorted(stats["engines"].items()):
                stale = "" if engine == stats["engine"] else "  (stale)"
                print(f"  engine {engine}: {count} record(s){stale}", file=out)
        return 0
    if args.action == "compact":
        report = store.compact()
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True), file=out)
        else:
            print(
                f"compacted {report['before']['segments']} segment(s) "
                f"({report['before']['records']} record(s)) to "
                f"{report['after']['segments']} segment(s) "
                f"({report['after']['records']} record(s)); "
                f"dropped {report['dropped_records']}",
                file=out,
            )
        return 0
    wiped = store.invalidate()
    if args.json:
        print(json.dumps({"invalidated": wiped}, indent=2), file=out)
    else:
        print(f"invalidated {wiped} record(s)", file=out)
    return 0


def _submit_target(args: argparse.Namespace) -> dict:
    """Lower the submit positionals to a request ``target`` object,
    mirroring how ``secrecy``/``explore``/``check`` interpret theirs."""
    import os

    if args.kind == "check" or args.kind == "may-preorder":
        if args.target is None or args.spec is None:
            raise ReproError(f"{args.kind} needs TARGET (impl) and --spec")
        return {"impl": args.target, "spec": args.spec}
    if args.target is None:
        raise ReproError(f"{args.kind} needs a TARGET (zoo name or file path)")
    if os.path.exists(args.target):
        key = "spi" if args.kind == "explore" else "sysfile"
        return {key: args.target}
    return {"zoo": args.target}


def cmd_submit(args: argparse.Namespace, out) -> int:
    """``submit``: one request against a running server.

    Exit codes: 0 verdict obtained and no violation, 1 violation found,
    2 unreachable server / request error, 3 degraded or expired verdict
    or server draining.
    """
    import json

    from repro.runtime.deadline import Deadline
    from repro.service.client import ServiceClient, cluster_addresses

    refresh = None
    if args.cluster is not None:
        address = _cluster_router_address(args.cluster)
        # Follow the topology between retries: a standby takeover
        # rewrites cluster.json, and a client pinned to the dead
        # primary's address would burn its whole retry budget there.
        refresh = lambda: cluster_addresses(args.cluster)  # noqa: E731
    elif args.socket is not None:
        address = ("unix", args.socket)
    elif args.tcp is not None:
        address = ("tcp", _parse_tcp(args.tcp))
    else:
        raise ReproError(
            "submit needs --socket PATH, --tcp HOST:PORT, or --cluster DIR"
        )
    client = ServiceClient(
        address, timeout=args.timeout, retries=args.connect_retries,
        refresh=refresh,
    )
    deadline = Deadline.after(args.deadline) if args.deadline is not None else None
    if args.kind in ("ping", "status"):
        reply = client.call({"kind": args.kind}, deadline=deadline)
    else:
        reply = client.submit(
            args.kind,
            _submit_target(args),
            deadline=deadline,
            id=args.id,
            max_states=args.max_states,
            max_depth=args.max_depth,
            secret=args.secret,
            sender=args.sender,
        )
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True), file=out)
    status = reply.get("status")
    result = reply.get("result") or {}
    if status == "pong":
        if not args.json:
            print(f"pong from pid {reply.get('pid')}", file=out)
        return 0
    if status == "status":
        if not args.json:
            if "cluster" in reply:
                cluster = reply.get("cluster") or {}
                print(
                    f"cluster pid {cluster.get('pid')}: "
                    f"{cluster.get('healthy', 0)}/{cluster.get('shards', 0)} "
                    f"shard(s) healthy, "
                    f"draining={cluster.get('draining')}",
                    file=out,
                )
            else:
                pool = reply.get("pool") or {}
                queue = reply.get("queue") or {}
                print(
                    f"workers {pool.get('busy', 0)}/{pool.get('alive', 0)} busy, "
                    f"queue {queue.get('depth', 0)}/{queue.get('limit', 0)}, "
                    f"{len(reply.get('breakers') or {})} breaker(s) tripped, "
                    f"draining={reply.get('server', {}).get('draining')}",
                    file=out,
                )
        return 0
    if status == "ok":
        if not args.json:
            print(result.get("summary", "ok"), file=out)
        return 1 if result.get("violated") else 0
    if status == "degraded":
        if not args.json:
            print(f"degraded: {reply.get('error')}", file=out)
        return 3
    if status == "expired":
        if not args.json:
            print(f"expired: {reply.get('error')}", file=out)
        return 3
    if status == "draining":
        if not args.json:
            print(f"draining: {reply.get('error')}", file=out)
        return 3
    raise ReproError(f"request failed: {reply.get('error', status)}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spi",
        description="spi calculus with authentication primitives (PACT 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_parse = sub.add_parser("parse", help="parse and pretty-print a process")
    _add_source_arguments(p_parse)
    p_parse.add_argument("--unicode", action="store_true", help="use the paper's glyphs")
    p_parse.add_argument("--tree", action="store_true", help="show the location tree")
    p_parse.set_defaults(handler=cmd_parse)

    p_run = sub.add_parser("run", help="execute a system step by step")
    _add_source_arguments(p_run)
    p_run.add_argument("--steps", type=int, default=20, help="max steps (default 20)")
    p_run.set_defaults(handler=cmd_run)

    p_explore = sub.add_parser("explore", help="explore the state space")
    _add_source_arguments(p_explore)
    p_explore.add_argument("--max-states", type=int, default=2000)
    p_explore.add_argument("--max-depth", type=int, default=64)
    p_explore.add_argument("--dot", default=None, help="write Graphviz output ('-' = stdout)")
    _add_runtime_arguments(p_explore, checkpointing=True)
    _add_obs_arguments(p_explore)
    p_explore.set_defaults(handler=cmd_explore)

    p_analyze = sub.add_parser(
        "analyze", help="check MGA properties of a system file"
    )
    p_analyze.add_argument("sysfile", help="system file (see repro.syntax.sysfile)")
    p_analyze.add_argument("--sender", default=None, help="role for authentication")
    p_analyze.add_argument(
        "--secret", action="append", default=None, help="secret base name (repeatable)"
    )
    p_analyze.add_argument("--max-states", type=int, default=4000)
    p_analyze.add_argument("--max-depth", type=int, default=18)
    _add_runtime_arguments(p_analyze)
    _add_obs_arguments(p_analyze)
    p_analyze.set_defaults(handler=cmd_analyze)

    for kind, blurb in (
        ("secrecy", "does the target keep its secret? (exit 1 = leak)"),
        ("authentication", "is the sender authenticated? (exit 1 = violation)"),
    ):
        p_prop = sub.add_parser(kind, help=blurb)
        p_prop.add_argument(
            "target", help="system file path, or a protocol-zoo name"
        )
        if kind == "secrecy":
            p_prop.add_argument(
                "--secret",
                default=None,
                metavar="NAME",
                help="secret base name (required for system files; "
                "default KAB for zoo targets)",
            )
        else:
            p_prop.add_argument(
                "--sender",
                default=None,
                metavar="ROLE",
                help="authenticated sender role (default A)",
            )
        p_prop.add_argument("--max-states", type=int, default=4000)
        p_prop.add_argument("--max-depth", type=int, default=24)
        p_prop.add_argument(
            "--deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock limit; expiry qualifies the verdict",
        )
        _add_certify_argument(p_prop)
        _add_obs_arguments(p_prop)
        p_prop.set_defaults(handler=cmd_property)

    p_check = sub.add_parser(
        "check", help="Definition 4: does IMPL securely implement SPEC?"
    )
    p_check.add_argument("impl", help="implementation system file")
    p_check.add_argument("spec", help="specification system file")
    p_check.add_argument("--max-states", type=int, default=2000)
    p_check.add_argument("--max-depth", type=int, default=24)
    _add_certify_argument(p_check)
    _add_runtime_arguments(p_check)
    _add_obs_arguments(p_check)
    p_check.set_defaults(handler=cmd_check)

    p_suite = sub.add_parser(
        "suite", help="run a batch of verification jobs under supervision"
    )
    p_suite.add_argument(
        "files", nargs="*", help=".spi process files to explore (one job each)"
    )
    p_suite.add_argument(
        "--zoo",
        action="append",
        default=None,
        metavar="PROTOCOL",
        help="add secrecy+authentication jobs for this zoo protocol "
        "(repeatable; 'all' = the whole zoo)",
    )
    p_suite.add_argument(
        "--suite-file",
        default=None,
        metavar="PATH",
        help="JSON list of job descriptions (see repro.runtime.worker.Job)",
    )
    p_suite.add_argument(
        "--jobs", type=int, default=2, metavar="N", help="worker processes (default 2)"
    )
    p_suite.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="K",
        help="extra attempts per job after a crash/OOM/hang (default 2)",
    )
    p_suite.add_argument(
        "--job-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock limit (expiry qualifies the verdict; "
        "a hung worker is killed at 1.5x this plus a grace period)",
    )
    p_suite.add_argument(
        "--max-rss",
        type=float,
        default=None,
        metavar="MB",
        help="kill and retry any worker whose resident set exceeds this",
    )
    p_suite.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="stream verdicts to this crash-safe JSONL journal",
    )
    p_suite.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs already verdicted in --journal",
    )
    p_suite.add_argument(
        "--retry-faults",
        action="store_true",
        help="with --resume, re-run jobs whose journaled verdict was a "
        "degraded fault (completes a drained or crash-looped run)",
    )
    p_suite.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="keep exploration autosaves here (default: temporary)",
    )
    p_suite.add_argument(
        "--verdict-store",
        default=None,
        metavar="DIR",
        help="persistent cross-run verdict cache: serve already-stored "
        "verdicts without dispatching a worker (attempts=0) and write "
        "budget-pure verdicts through (see docs/store.md)",
    )
    p_suite.add_argument("--max-states", type=int, default=4000)
    p_suite.add_argument("--max-depth", type=int, default=40)
    p_suite.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="STATES",
        help="states between exploration autosaves (default 400)",
    )
    p_suite.add_argument(
        "--inject-crash-at",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help="test instrumentation: hard-kill the worker at successor "
        "call N on each job's first attempt",
    )
    p_suite.add_argument(
        "--inject-fail-at",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help="test instrumentation: fail successor call N on each "
        "job's first attempt",
    )
    _add_certify_argument(p_suite)
    _add_obs_arguments(p_suite)
    p_suite.set_defaults(handler=cmd_suite)

    p_stats = sub.add_parser(
        "stats", help="render a suite journal's per-job metrics as a table"
    )
    p_stats.add_argument("journal", help="suite journal (JSONL) to aggregate")
    p_stats.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="also emit the aggregate as JSON ('-' = stdout)",
    )
    p_stats.set_defaults(handler=cmd_stats)

    p_serve = sub.add_parser(
        "serve", help="run the verification service (see docs/service.md)"
    )
    p_serve.add_argument(
        "--socket", default=None, metavar="PATH", help="bind this Unix socket"
    )
    p_serve.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="bind this TCP endpoint (port 0 picks an ephemeral port, "
        "announced on stdout)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="supervised worker processes (default 2)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="admission queue depth; beyond it requests are shed with "
        "fast 'overloaded' responses (default 64)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=1, metavar="K",
        help="extra attempts per request after a worker crash (default 1)",
    )
    p_serve.add_argument(
        "--job-deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request budget (a request's own deadline wins)",
    )
    p_serve.add_argument(
        "--max-rss", type=float, default=None, metavar="MB",
        help="kill and replace any worker whose resident set exceeds this",
    )
    p_serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal every verdict/shed/degrade here (suite-journal "
        "schema; 'suite --resume' over it completes shed work)",
    )
    p_serve.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="keep exploration autosaves here across worker crashes",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive worker crashes on one protocol that open its "
        "circuit breaker (default 3)",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="how long an open breaker waits before letting one probe "
        "request through (default 30)",
    )
    p_serve.add_argument(
        "--breaker-max", type=int, default=1024, metavar="N",
        help="most breakers kept on the board; idle CLOSED breakers are "
        "evicted LRU beyond this, open ones never (default 1024, "
        "0 = unbounded)",
    )
    p_serve.add_argument(
        "--rebuild-breakers",
        action="store_true",
        help="replay the journal at startup to rebuild circuit-breaker "
        "state (used by cluster shards so an open breaker survives "
        "the crash that killed the process)",
    )
    p_serve.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="how long a drain waits for in-flight jobs before killing "
        "their workers (default 10)",
    )
    p_serve.add_argument(
        "--allow-fault-injection",
        action="store_true",
        help="test instrumentation: accept fault_plan fields in requests",
    )
    p_serve.add_argument(
        "--dedupe",
        action="store_true",
        help="idempotent admission: serve repeats of a journaled verdict "
        "from the journal and coalesce duplicate in-flight request ids "
        "(cluster shards run with this so a router re-drive can never "
        "recompute a verdict; needs --journal)",
    )
    p_serve.add_argument(
        "--verdict-store",
        default=None,
        metavar="DIR",
        help="persistent cross-run verdict cache: a stored verdict "
        "short-circuits admission before the worker pool (cached: true, "
        "store.hit metric) and completions write budget-pure verdicts "
        "through; survives restarts, invalidated only by an engine-"
        "version bump (see docs/store.md)",
    )
    _add_certify_argument(p_serve)
    # The cross-check shard runs `serve --reduce none --no-state-cache`;
    # the obs flags ride along for parity with the other run commands.
    _add_obs_arguments(p_serve)
    p_serve.set_defaults(handler=cmd_serve)

    p_cluster = sub.add_parser(
        "cluster",
        help="run a fault-tolerant sharded cluster (see docs/cluster.md)",
    )
    p_cluster.add_argument(
        "--dir", required=True, metavar="DIR",
        help="cluster working directory: shard sockets, journals, logs "
        "and the cluster.json discovery file live here",
    )
    p_cluster.add_argument(
        "--socket", default=None, metavar="PATH",
        help="bind the router on this Unix socket",
    )
    p_cluster.add_argument(
        "--tcp", default=None, metavar="HOST:PORT",
        help="bind the router on this TCP endpoint (port 0 picks an "
        "ephemeral port, announced on stdout)",
    )
    p_cluster.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="local serve shards to spawn and supervise (default 3)",
    )
    p_cluster.add_argument(
        "--remote", action="append", default=None, metavar="ADDR",
        help="register a pre-started remote shard (host:port or socket "
        "path); repeatable, not supervised",
    )
    p_cluster.add_argument(
        "--workers-per-shard", type=int, default=2, metavar="N",
        help="worker processes per local shard (default 2)",
    )
    p_cluster.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="admission queue depth per shard (default 64)",
    )
    p_cluster.add_argument(
        "--retries", type=int, default=1, metavar="K",
        help="per-shard retry budget after a worker crash (default 1)",
    )
    p_cluster.add_argument(
        "--job-deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request budget on every shard",
    )
    p_cluster.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="per-protocol breaker threshold on every shard (default 3)",
    )
    p_cluster.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="per-protocol breaker cooldown on every shard (default 30)",
    )
    p_cluster.add_argument(
        "--health-interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between health pings to each shard (default 1)",
    )
    p_cluster.add_argument(
        "--health-timeout", type=float, default=2.0, metavar="SECONDS",
        help="per-ping timeout (default 2)",
    )
    p_cluster.add_argument(
        "--health-failures", type=int, default=2, metavar="N",
        help="consecutive failed pings that eject a shard from the ring "
        "(default 2)",
    )
    p_cluster.add_argument(
        "--health-cooldown", type=float, default=2.0, metavar="SECONDS",
        help="how long an ejected shard waits before its recovery probe "
        "(default 2)",
    )
    p_cluster.add_argument(
        "--respawn-base", type=float, default=0.25, metavar="SECONDS",
        help="respawn backoff for a crashed shard's first death "
        "(doubles per consecutive death, default 0.25)",
    )
    p_cluster.add_argument(
        "--respawn-cap", type=float, default=8.0, metavar="SECONDS",
        help="respawn backoff ceiling (default 8)",
    )
    p_cluster.add_argument(
        "--shard-drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="per-shard --drain-grace when the cluster drains (default 10)",
    )
    p_cluster.add_argument(
        "--drain-grace", type=float, default=15.0, metavar="SECONDS",
        help="how long the router waits for in-flight forwards before "
        "terminating shards (default 15)",
    )
    p_cluster.add_argument(
        "--allow-fault-injection",
        action="store_true",
        help="test instrumentation: shards accept fault_plan fields",
    )
    p_cluster.add_argument(
        "--chaos-plan", default=None, metavar="FILE",
        help="test instrumentation: interpose a deterministic network "
        "fault-injection proxy on every router->shard hop, driven by "
        "this JSON NetFaultPlan schedule (see docs/chaos.md; requires "
        "--allow-fault-injection)",
    )
    p_cluster.add_argument(
        "--standby",
        action="store_true",
        help="run as a warm spare instead of the primary: watch the "
        "primary's heartbeat in DIR/cluster.json and take over its "
        "shards when it dies (see docs/cluster.md)",
    )
    p_cluster.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
        help="how often the primary refreshes the discovery heartbeat "
        "(default 1)",
    )
    p_cluster.add_argument(
        "--takeover-after", type=float, default=5.0, metavar="SECONDS",
        help="standby only: heartbeat staleness that triggers the "
        "ping-confirmed takeover (default 5)",
    )
    p_cluster.add_argument(
        "--verdict-store",
        default=None,
        metavar="DIR",
        help="one shared persistent verdict-cache directory passed to "
        "every shard: cluster-wide repeat traffic, failover re-drives "
        "and resharding moves become store hits (see docs/store.md)",
    )
    p_cluster.add_argument(
        "--cross-check",
        type=float,
        default=0.0,
        metavar="RATE",
        help="re-run this fraction (0..1) of ok verdicts on a dedicated "
        "cross-check shard with reduction and the state cache disabled; "
        "a divergence is journaled to DIR/crosscheck.jsonl and "
        "quarantines the protocol (see docs/cluster.md)",
    )
    p_cluster.set_defaults(handler=cmd_cluster)

    p_resize = sub.add_parser(
        "cluster-resize",
        help="reshard a running cluster to N shards (live, minimal remap)",
    )
    p_resize.add_argument(
        "dir", metavar="DIR",
        help="cluster working directory (the router address is read "
        "from its cluster.json)",
    )
    p_resize.add_argument(
        "shards", type=int, metavar="N", help="target local shard count"
    )
    p_resize.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="how long to wait for the resize to complete (default 120; "
        "a shrink drains the retiring shards first)",
    )
    p_resize.add_argument(
        "--json", action="store_true", help="print the raw response frame"
    )
    p_resize.set_defaults(handler=cmd_cluster_resize)

    p_cstatus = sub.add_parser(
        "cluster-status",
        help="show a running cluster's router and shard health",
    )
    p_cstatus.add_argument(
        "dir", metavar="DIR",
        help="cluster working directory (the router address is read "
        "from its cluster.json)",
    )
    p_cstatus.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="status request timeout (default 10)",
    )
    p_cstatus.add_argument(
        "--json", action="store_true", help="print the raw response frame"
    )
    p_cstatus.set_defaults(handler=cmd_cluster_status)

    p_store = sub.add_parser(
        "store",
        help="inspect or maintain a persistent verdict store "
        "(see docs/store.md)",
    )
    p_store.add_argument(
        "action",
        choices=["stats", "compact", "verify", "invalidate"],
        help="stats: occupancy report; compact: rewrite as one segment "
        "dropping duplicates and stale-engine records; verify: audit "
        "record checksums and replay stored witnesses (exit 1 on any "
        "failure); invalidate: wipe the store",
    )
    p_store.add_argument(
        "dir", metavar="DIR", help="verdict store directory (--verdict-store)"
    )
    p_store.add_argument(
        "--no-replay",
        action="store_true",
        help="verify only: check witness checksums without the full "
        "independent replay (fast integrity sweep)",
    )
    p_store.add_argument(
        "--json", action="store_true", help="emit the raw report as JSON"
    )
    p_store.set_defaults(handler=cmd_store)

    p_witness = sub.add_parser(
        "witness",
        help="work with attack witnesses (see docs/verification.md)",
    )
    witness_sub = p_witness.add_subparsers(dest="witness_command", required=True)
    p_replay = witness_sub.add_parser(
        "replay",
        help="independently replay a witness file against the "
        "unreduced, uncached semantics (exit 0 = replays, 1 = not)",
    )
    p_replay.add_argument(
        "file", help="witness JSON file (or a verdict result carrying one)"
    )
    p_replay.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="backtracking budget for resolving uid-shape ambiguity "
        "(default 50000)",
    )
    p_replay.add_argument(
        "--json", action="store_true", help="emit the replay report as JSON"
    )
    p_replay.set_defaults(handler=cmd_witness)

    p_submit = sub.add_parser(
        "submit", help="submit one request to a running server"
    )
    p_submit.add_argument(
        "kind",
        choices=[
            "ping", "status", "secrecy", "authentication", "freshness",
            "explore", "check", "may-preorder",
        ],
        help="request kind ('may-preorder' is the Definition-4 check)",
    )
    p_submit.add_argument(
        "target", nargs="?", default=None,
        help="zoo protocol name or file path (impl file for check)",
    )
    p_submit.add_argument(
        "--spec", default=None, metavar="PATH",
        help="specification system file (check/may-preorder)",
    )
    p_submit.add_argument(
        "--socket", default=None, metavar="PATH", help="server Unix socket"
    )
    p_submit.add_argument(
        "--tcp", default=None, metavar="HOST:PORT", help="server TCP endpoint"
    )
    p_submit.add_argument(
        "--cluster", default=None, metavar="DIR",
        help="cluster working directory; the router address is read "
        "from its cluster.json discovery file",
    )
    p_submit.add_argument("--id", default=None, help="request id (default: derived)")
    p_submit.add_argument("--max-states", type=int, default=4000)
    p_submit.add_argument("--max-depth", type=int, default=40)
    p_submit.add_argument("--secret", default=None, metavar="NAME")
    p_submit.add_argument("--sender", default=None, metavar="ROLE")
    p_submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="total budget: propagated to the server and bounding retries",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-attempt socket timeout (default 60)",
    )
    p_submit.add_argument(
        "--connect-retries", type=int, default=3, metavar="N",
        help="extra attempts on connection errors or overload sheds "
        "(default 3, with jittered backoff)",
    )
    p_submit.add_argument(
        "--json", action="store_true", help="print the raw response frame"
    )
    p_submit.set_defaults(handler=cmd_submit)

    return parser


def _emit_stats(args: argparse.Namespace, metrics, out) -> None:
    """Post-run ``--stats`` output: text to ``out`` or JSON to a file.

    For ``suite`` the payload additionally carries the aggregate and
    per-job :class:`~repro.obs.stats.SuiteStats` blocks assembled from
    the run's outcomes.
    """
    import json

    report = getattr(args, "suite_report", None)
    if args.stats == "-":
        if report is not None:
            print(report.stats().describe(), file=out)
        print(metrics.describe(), file=out)
        return
    from repro.runtime.atomic import atomic_write_json

    payload = {"metrics": metrics.to_json()}
    if report is not None:
        payload.update(report.stats().to_json())
    atomic_write_json(args.stats, payload)
    print(f"stats written to {args.stats}", file=out)


def _dispatch(args: argparse.Namespace, out) -> int:
    """Run the subcommand handler inside the requested observability
    contexts (``--trace`` / ``--stats`` / ``--profile``), honouring
    ``--no-state-cache`` and ``--reduce``."""
    reduce_mode = getattr(args, "reduce", None)
    if reduce_mode is not None:
        import os

        from repro.semantics import canonical, reduction

        # Same double bookkeeping as --no-state-cache below: the env
        # var makes spawned suite/serve/cluster workers inherit the
        # mode, the in-process switch covers this interpreter, and both
        # are restored because tests call main() repeatedly.  An
        # explicit flag also outranks the REPRO_NO_REDUCTION escape
        # hatch, which is cleared for the duration so workers agree
        # with the parent.
        previous_mode = reduction.set_reduction_mode(reduce_mode)
        previous_env = os.environ.get(canonical.REDUCTION_ENV)
        previous_off = os.environ.get(canonical.NO_REDUCTION_ENV)
        os.environ[canonical.REDUCTION_ENV] = reduce_mode
        os.environ.pop(canonical.NO_REDUCTION_ENV, None)
        try:
            args = argparse.Namespace(**{**vars(args), "reduce": None})
            return _dispatch(args, out)
        finally:
            reduction.set_reduction_mode(previous_mode)
            if previous_env is None:
                os.environ.pop(canonical.REDUCTION_ENV, None)
            else:
                os.environ[canonical.REDUCTION_ENV] = previous_env
            if previous_off is not None:
                os.environ[canonical.NO_REDUCTION_ENV] = previous_off
    if getattr(args, "certify", False):
        import os

        from repro.runtime.worker import CERTIFY_ENV

        # The env var is the whole mechanism: run_job consults it in
        # this interpreter, spawned suite/serve workers inherit it,
        # cluster shards get it through their serve subprocesses, and
        # cmd_check's in-process certify path reads it back via
        # certify_enabled().  Restored afterwards because tests call
        # main() repeatedly in one interpreter.
        previous_env = os.environ.get(CERTIFY_ENV)
        os.environ[CERTIFY_ENV] = "1"
        try:
            args = argparse.Namespace(**{**vars(args), "certify": False})
            return _dispatch(args, out)
        finally:
            if previous_env is None:
                os.environ.pop(CERTIFY_ENV, None)
            else:
                os.environ[CERTIFY_ENV] = previous_env
    if getattr(args, "no_state_cache", False):
        import os

        from repro.semantics import canonical

        # The environment variable rides across the spawn boundary so
        # suite worker processes make the same choice; both it and the
        # in-process switch are restored afterwards because tests call
        # main() repeatedly in one interpreter.
        was_enabled = canonical.set_cache_enabled(False)
        previous_env = os.environ.get(canonical.DISABLE_ENV)
        os.environ[canonical.DISABLE_ENV] = "1"
        try:
            return _dispatch_observed(args, out)
        finally:
            canonical.set_cache_enabled(was_enabled)
            if previous_env is None:
                os.environ.pop(canonical.DISABLE_ENV, None)
            else:
                os.environ[canonical.DISABLE_ENV] = previous_env
    return _dispatch_observed(args, out)


def _dispatch_observed(args: argparse.Namespace, out) -> int:
    trace_to = getattr(args, "trace", None)
    stats_to = getattr(args, "stats", None)
    profile_to = getattr(args, "profile", None)
    if trace_to is None and stats_to is None and profile_to is None:
        return args.handler(args, out)

    from contextlib import ExitStack

    from repro.obs import Tracer, collecting, profile, tracing

    metrics = None
    with ExitStack() as stack:
        if stats_to is not None:
            metrics = stack.enter_context(collecting())
        if trace_to is not None:
            tracer = stack.enter_context(Tracer.to_path(trace_to))
            stack.enter_context(tracing(tracer))
        if profile_to is not None:
            stack.enter_context(
                profile(None if profile_to == "-" else profile_to, stream=out)
            )
        code = args.handler(args, out)
    if metrics is not None:
        _emit_stats(args, metrics, out)
    if trace_to is not None:
        print(f"trace written to {trace_to}", file=out)
    return code


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the exit status instead of raising SystemExit
    so it is directly testable."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args, out)
    except (ReproError, OSError) as error:
        # Every library failure mode subclasses ReproError (parse errors,
        # corrupt checkpoints/journals, malformed jobs...): one line on
        # stderr, exit 2 — never a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Interrupts *inside* an exploration are absorbed cooperatively
        # (the loop returns a partial graph); reaching here means the
        # interrupt hit outside any recoverable loop.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
