"""A zoo of classic shared-key protocols, written as narrations.

These exercise the narration compiler and the analysis toolchain on the
protocols the literature actually studies — multi-role key transport
with trusted servers, run identifiers and nonce handshakes.  All use
only the calculus' primitives (names, pairs, shared-key encryption), as
in the original formulations.

Included:

* :func:`needham_schroeder_sk` — the Needham-Schroeder symmetric-key
  protocol.  The final decrement ``NB - 1`` (arithmetic the calculus
  does not compute) is replaced by the standard pairing stand-in
  ``{NB, NB}KAB``, which serves the same purpose: a reply that is
  provably derived from ``NB`` yet distinct from message 4.
* :func:`otway_rees` — Otway-Rees, with the run identifier ``M`` and
  both principals forwarding ciphertexts they cannot open.
* :func:`yahalom` — Yahalom, where A forwards B's ticket unopened.
* :func:`woo_lam` — Woo-Lam Pi one-way authentication through the
  server, exercising nested opaque forwarding.

Every builder takes a ``payload`` flag: with ``payload=True`` a final
message ``{M}KAB`` under the freshly-established session key is added,
giving the Definition-4 observation point (B republishes ``M``).
"""

from __future__ import annotations

from repro.analysis.narration import Message, NarrationSpec, enc_msg, pair_msg, ref


def _with_payload(spec: NarrationSpec, payload: bool) -> NarrationSpec:
    if not payload:
        return spec
    fresh = dict(spec.fresh)
    fresh["A"] = tuple(fresh.get("A", ())) + ("PAYLOAD",)
    return NarrationSpec(
        roles=spec.roles,
        channel=spec.channel,
        shared_keys=spec.shared_keys,
        fresh=fresh,
        public=spec.public,
        messages=spec.messages
        + (Message("A", "B", enc_msg(ref("PAYLOAD"), key="KAB")),),
        replicate=spec.replicate,
    )


def needham_schroeder_sk(payload: bool = True, replicate: bool = False) -> NarrationSpec:
    """Needham-Schroeder symmetric-key (1978), five messages.

    ::

        Message 1  A -> S : (A, (B, NA))
        Message 2  S -> A : {NA, B, KAB, {KAB, A}KBS}KAS
        Message 3  A -> B : {KAB, A}KBS
        Message 4  B -> A : {NB}KAB
        Message 5  A -> B : {NB, NB}KAB         (stand-in for {NB-1})

    A checks its nonce ``NA`` and the responder identity inside message
    2; B learns the session key from the ticket and challenges A with
    ``NB``; message 5 proves A holds ``KAB`` *now*.
    """
    spec = NarrationSpec(
        roles=("A", "S", "B"),
        channel="c",
        shared_keys={"KAS": ("A", "S"), "KBS": ("S", "B")},
        fresh={"A": ("NA",), "S": ("KAB",), "B": ("NB",)},
        public=("A_id", "B_id"),
        messages=(
            Message("A", "S", pair_msg(ref("A_id"), pair_msg(ref("B_id"), ref("NA")))),
            Message(
                "S",
                "A",
                enc_msg(
                    ref("NA"),
                    ref("B_id"),
                    ref("KAB"),
                    enc_msg(ref("KAB"), ref("A_id"), key="KBS"),
                    key="KAS",
                ),
            ),
            Message("A", "B", enc_msg(ref("KAB"), ref("A_id"), key="KBS")),
            Message("B", "A", enc_msg(ref("NB"), key="KAB")),
            Message("A", "B", enc_msg(ref("NB"), ref("NB"), key="KAB")),
        ),
        replicate=replicate,
    )
    return _with_payload(spec, payload)


def otway_rees(payload: bool = True, replicate: bool = False) -> NarrationSpec:
    """Otway-Rees (1987), four messages plus optional payload.

    ::

        Message 1  A -> B : (RUN, {NA, RUN}KAS)
        Message 2  B -> S : ((RUN, {NA, RUN}KAS), {NB, RUN}KBS)
        Message 3  S -> B : ({NA, KAB}KAS, {NB, KAB}KBS)
        Message 4  B -> A : {NA, KAB}KAS

    ``RUN`` is the public run identifier; B forwards A's request
    component unopened, and later forwards the server's A-ticket
    unopened — both exercises of opaque forwarding.  (The agent-name
    fields of the original are folded into ``RUN`` for brevity; they are
    public data with the same information content here.)
    """
    spec = NarrationSpec(
        roles=("A", "B", "S"),
        channel="c",
        shared_keys={"KAS": ("A", "S"), "KBS": ("B", "S")},
        fresh={"A": ("NA",), "B": ("NB",), "S": ("KAB",)},
        public=("RUN",),
        messages=(
            Message("A", "B", pair_msg(ref("RUN"), enc_msg(ref("NA"), ref("RUN"), key="KAS"))),
            Message(
                "B",
                "S",
                pair_msg(
                    pair_msg(ref("RUN"), enc_msg(ref("NA"), ref("RUN"), key="KAS")),
                    enc_msg(ref("NB"), ref("RUN"), key="KBS"),
                ),
            ),
            Message(
                "S",
                "B",
                pair_msg(
                    enc_msg(ref("NA"), ref("KAB"), key="KAS"),
                    enc_msg(ref("NB"), ref("KAB"), key="KBS"),
                ),
            ),
            Message("B", "A", enc_msg(ref("NA"), ref("KAB"), key="KAS")),
        ),
        replicate=replicate,
    )
    return _with_payload(spec, payload)


def yahalom(payload: bool = True, replicate: bool = False) -> NarrationSpec:
    """Yahalom (as in Burrows-Abadi-Needham 1990), four messages.

    ::

        Message 1  A -> B : (A_id, NA)
        Message 2  B -> S : (B_id, {A_id, NA, NB}KBS)
        Message 3  S -> A : ({B_id, KAB, NA, NB}KAS, {A_id, KAB}KBS)
        Message 4  A -> B : ({A_id, KAB}KBS, {NB}KAB)

    A forwards B's ticket unopened and proves knowledge of both the
    session key and B's nonce in one step.
    """
    spec = NarrationSpec(
        roles=("A", "B", "S"),
        channel="c",
        shared_keys={"KAS": ("A", "S"), "KBS": ("B", "S")},
        fresh={"A": ("NA",), "B": ("NB",), "S": ("KAB",)},
        public=("A_id", "B_id"),
        messages=(
            Message("A", "B", pair_msg(ref("A_id"), ref("NA"))),
            Message("B", "S", pair_msg(ref("B_id"), enc_msg(ref("A_id"), ref("NA"), ref("NB"), key="KBS"))),
            Message(
                "S",
                "A",
                pair_msg(
                    enc_msg(ref("B_id"), ref("KAB"), ref("NA"), ref("NB"), key="KAS"),
                    enc_msg(ref("A_id"), ref("KAB"), key="KBS"),
                ),
            ),
            Message(
                "A",
                "B",
                pair_msg(
                    enc_msg(ref("A_id"), ref("KAB"), key="KBS"),
                    enc_msg(ref("NB"), key="KAB"),
                ),
            ),
        ),
        replicate=replicate,
    )
    return _with_payload(spec, payload)


def woo_lam(payload: bool = True, replicate: bool = False) -> NarrationSpec:
    """Woo-Lam Pi (one-way authentication of A to B via the server).

    ::

        Message 1  A -> B : A_id
        Message 2  B -> A : NB
        Message 3  A -> B : {NB}KAS
        Message 4  B -> S : {A_id, {NB}KAS}KBS
        Message 5  S -> B : {NB}KBS

    B forwards A's response unopened inside message 4 (it cannot read
    ``KAS`` ciphertexts) and trusts the server's verdict in message 5,
    checking its own nonce.  The optional payload phase transports a
    datum under a pre-shared ``KAB`` so the configuration has the usual
    Definition-4 observation point.
    """
    shared = {"KAS": ("A", "S"), "KBS": ("B", "S")}
    fresh = {"B": ("NB",)}
    if payload:
        shared["KAB"] = ("A", "B")
    spec = NarrationSpec(
        roles=("A", "B", "S"),
        channel="c",
        shared_keys=shared,
        fresh=fresh,
        public=("A_id",),
        messages=(
            Message("A", "B", ref("A_id")),
            Message("B", "A", ref("NB")),
            Message("A", "B", enc_msg(ref("NB"), key="KAS")),
            Message("B", "S", enc_msg(ref("A_id"), enc_msg(ref("NB"), key="KAS"), key="KBS")),
            Message("S", "B", enc_msg(ref("NB"), key="KBS")),
        ),
        replicate=replicate,
    )
    return _with_payload(spec, payload)


#: Name -> builder, for sweep-style tests and benchmarks.
ZOO = {
    "needham-schroeder-sk": needham_schroeder_sk,
    "otway-rees": otway_rees,
    "yahalom": yahalom,
    "woo-lam": woo_lam,
}
