"""The reflection attack the paper flags as future work (end of Sec. 5).

    "Note that we are only considering protocols in which the roles of
    the initiator and responder are clearly separated.  If A and B could
    play both the two roles in parallel sessions, then the protocol
    above would suffer of a well-known reflection attack."

This module makes that remark executable.  In :func:`bidirectional_pm3`
both principals run the initiator role *and* the responder role under
the same long-term key.  The classic reflection then applies: the
attacker takes the responder's challenge ``N``, feeds it to the *same*
principal's initiator side, and reflects the answer ``{M', N}KAB`` back
to the responder — which accepts a message that its own side created.

The message-authentication tester detects this immediately: the
delivered datum originates at ``B``'s initiator, not at ``A``.
"""

from __future__ import annotations

from repro.core.processes import (
    Case,
    Channel,
    Input,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
)
from repro.core.terms import Name, SharedEnc, Var, fresh_uid
from repro.equivalence.testing import Configuration
from repro.protocols.paper import Continuation, observing_continuation


def initiator_role(channel: Name, key: Name) -> Process:
    """``(nu M) c(ns). c<{M, ns}KAB>`` — answer any challenge."""
    m = Name("M")
    ns = Var("ns", fresh_uid())
    return Restriction(
        m,
        Input(Channel(channel), ns, Output(Channel(channel), SharedEnc((m, ns), key), Nil())),
    )


def responder_role(
    channel: Name, key: Name, continuation: Continuation = observing_continuation
) -> Process:
    """``(nu N) c<N>. c(x). case x of {z, w}KAB in [w = N] B0(z)``."""
    n = Name("N")
    x = Var("x", fresh_uid())
    z = Var("z", fresh_uid())
    w = Var("w", fresh_uid())
    return Restriction(
        n,
        Output(
            Channel(channel),
            n,
            Input(
                Channel(channel),
                x,
                Case(x, (z, w), key, Match(w, n, continuation(z))),
            ),
        ),
    )


def bidirectional_pm3(
    continuation: Continuation = observing_continuation,
    channel: str = "c",
    replicate: bool = False,
) -> Configuration:
    """Pm3 with both principals playing both roles under one key.

    The tree shape is ``(nu KAB)((A_init | A_resp) | (B_init | B_resp))``;
    role labels for all four sides are registered so testers can ask
    about each possible origin.  Only ``B``'s responder observes.
    """
    c = Name(channel)
    kab = Name("KAB")

    def maybe_replicate(proc: Process) -> Process:
        return Replication(proc) if replicate else proc

    a_side = Parallel(
        maybe_replicate(initiator_role(c, kab)),
        maybe_replicate(responder_role(c, kab, lambda _z: Nil())),
    )
    b_side = Parallel(
        maybe_replicate(initiator_role(c, kab)),
        maybe_replicate(responder_role(c, kab, continuation)),
    )
    protocol = Restriction(kab, Parallel(a_side, b_side))
    return Configuration(
        parts=(("P", protocol),),
        private=(c,),
        subroles=(
            ("P", (0, 0), "A-init"),
            ("P", (0, 1), "A-resp"),
            ("P", (1, 0), "B-init"),
            ("P", (1, 1), "B-resp"),
        ),
    )


def reflecting_attacker(channel: Name) -> Process:
    """Pump the responder's own side: take the challenge, obtain an
    answer from *some* initiator, and deliver it back.

    The attacker itself is just a two-message relay — the reflection is
    in *who* it relays between, which the scheduler resolves; the attack
    exists because the relay CAN route the challenge to the victim's own
    initiator.
    """
    n = Var("rn", fresh_uid())
    reply = Var("rr", fresh_uid())
    return Input(
        Channel(channel),
        n,
        Output(
            Channel(channel),
            n,
            Input(Channel(channel), reply, Output(Channel(channel), reply, Nil())),
        ),
    )
