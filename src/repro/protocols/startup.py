"""The paper's ``startup`` and ``m_startup`` macros (Sections 5.1, 5.2).

``startup(tA, A, tB, B)`` abbreviates::

    (nu s)( s@tA<s>.A  |  s@tB(x).B )

a trusted exchange of locations over a fresh channel ``s``: after the
communication, a location-variable index ``tA`` occurring in ``A`` is
bound to the location of ``B``'s side and vice versa, so subsequent
localized channels of the two principals only talk to each other
(Proposition 1).

``m_startup`` replicates both sides::

    (nu s)( !s@tA<s>.A  |  !s@tB(x).B )

establishing many independent pairwise-hooked sessions; location
variables are freshened per copy, so two sessions never share a partner
binding (Proposition 3).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.processes import (
    Channel,
    Input,
    LocVar,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
)
from repro.core.terms import Name, Var, fresh_uid

#: The paper writes ``startup(***, A, ...)`` for "no localization" on a
#: side; pass ``None`` (aliased as NO_LOCALIZATION) for that.
NO_LOCALIZATION: Optional[LocVar] = None

StartupIndex = Union[LocVar, None]


def startup(
    index_a: StartupIndex,
    proc_a: Process,
    index_b: StartupIndex,
    proc_b: Process,
    session_channel: str = "s",
) -> Process:
    """Build ``startup(tA, A, tB, B)``.

    ``index_a``/``index_b`` are the location variables to bind on each
    side (``None`` for the paper's ``***`` — no localization).  The
    startup channel is fresh by construction: the restriction guarantees
    no environment can interfere with the exchange, which is what makes
    Proposition 1 hold in any context.
    """
    s = Name(session_channel)
    x = Var("startup_x", fresh_uid())
    side_a = Output(Channel(s, index_a), s, proc_a)
    side_b = Input(Channel(s, index_b), x, proc_b)
    return Restriction(s, Parallel(side_a, side_b))


def m_startup(
    index_a: StartupIndex,
    proc_a: Process,
    index_b: StartupIndex,
    proc_b: Process,
    session_channel: str = "s",
) -> Process:
    """Build the multisession ``m_startup(tA, A, tB, B)``.

    Each unfolding of the two replications creates one session; the
    abstract machine freshens location variables per copy, so the i-th
    instance of ``A`` is hooked to exactly one instance of ``B`` for the
    whole run (Proposition 3) — the source of the freshness guarantee
    that defeats cross-session replay.
    """
    s = Name(session_channel)
    x = Var("startup_x", fresh_uid())
    side_a = Replication(Output(Channel(s, index_a), s, proc_a))
    side_b = Replication(Input(Channel(s, index_b), x, proc_b))
    return Restriction(s, Parallel(side_a, side_b))
