"""Additional protocols built with the narration compiler.

These exercise the library beyond the paper's toy examples: a key
transport through a trusted server (wide-mouthed-frog style), a
two-message nonce handshake, and helpers to wrap any compiled narration
into a Definition-4 :class:`~repro.equivalence.testing.Configuration`
against the paper's abstract specifications.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.analysis.narration import (
    Message,
    NarrationSpec,
    compile_narration,
    enc_msg,
    ref,
)
from repro.core.processes import Channel, Nil, Output, Process
from repro.core.terms import Name, Term
from repro.equivalence.testing import Configuration

#: Observation channel used by all library continuations.
OBSERVE = Name("observe")


def observer(ident: str) -> Callable[[Mapping[str, Term]], Process]:
    """Continuation publishing the named datum on ``observe``.

    The published value carries its origin, so Definition-4 testers can
    check who really created it.
    """

    def continuation(known: Mapping[str, Term]) -> Process:
        return Output(Channel(OBSERVE), known[ident], Nil())

    return continuation


# ----------------------------------------------------------------------
# Library narrations
# ----------------------------------------------------------------------


def wide_mouthed_frog(replicate: bool = False) -> NarrationSpec:
    """A wide-mouthed-frog style session-key transport.

    ::

        Message 1  A -> S : {KAB}KAS     (A invents the session key)
        Message 2  S -> B : {KAB}KBS     (the server re-encrypts it)
        Message 3  A -> B : {M}KAB       (payload under the session key)

    ``B`` learns ``KAB`` from the server and uses the *learned* key to
    decrypt the payload — exercising decryption under received keys in
    the narration compiler.
    """
    return NarrationSpec(
        roles=("A", "S", "B"),
        channel="c",
        shared_keys={"KAS": ("A", "S"), "KBS": ("S", "B")},
        fresh={"A": ("KAB", "M")},
        messages=(
            Message("A", "S", enc_msg(ref("KAB"), key="KAS")),
            Message("S", "B", enc_msg(ref("KAB"), key="KBS")),
            Message("A", "B", enc_msg(ref("M"), key="KAB")),
        ),
        replicate=replicate,
    )


def nonce_handshake(replicate: bool = False) -> NarrationSpec:
    """The paper's challenge-response (Pm3) as a narration.

    ::

        Message 1  B -> A : N
        Message 2  A -> B : {M, N}KAB
    """
    return NarrationSpec(
        roles=("A", "B"),
        channel="c",
        shared_keys={"KAB": ("A", "B")},
        fresh={"A": ("M",), "B": ("N",)},
        messages=(
            Message("B", "A", ref("N")),
            Message("A", "B", enc_msg(ref("M"), ref("N"), key="KAB")),
        ),
        replicate=replicate,
    )


def plain_transport(replicate: bool = False) -> NarrationSpec:
    """The paper's P1/Pm1: one plaintext message, no protection."""
    return NarrationSpec(
        roles=("A", "B"),
        channel="c",
        fresh={"A": ("M",)},
        messages=(Message("A", "B", ref("M")),),
        replicate=replicate,
    )


def encrypted_transport(replicate: bool = False) -> NarrationSpec:
    """The paper's P2/Pm2: one message under a long-term shared key."""
    return NarrationSpec(
        roles=("A", "B"),
        channel="c",
        shared_keys={"KAB": ("A", "B")},
        fresh={"A": ("M",)},
        messages=(Message("A", "B", enc_msg(ref("M"), key="KAB")),),
        replicate=replicate,
    )


# ----------------------------------------------------------------------
# Configuration helpers
# ----------------------------------------------------------------------


def narration_configuration(
    spec: NarrationSpec,
    observed_role: str = "B",
    observed_datum: str = "M",
    continuations: Optional[Mapping[str, Callable[[Mapping[str, Term]], Process]]] = None,
) -> Configuration:
    """Compile a narration and wrap it as a testable configuration.

    By default the ``observed_role`` republishes ``observed_datum`` on
    ``observe`` as its continuation.  All narration channels are made
    private (the set ``C`` of Definition 4), and so are the long-term
    shared keys: free names are public in this model, so a key left
    free would be attacker knowledge.
    """
    conts = dict(continuations) if continuations else {
        observed_role: observer(observed_datum)
    }
    roles = compile_narration(spec, continuations=conts)
    parts = tuple((role, roles[role]) for role in spec.roles)
    keys = tuple(Name(key) for key in spec.shared_keys)
    return Configuration(parts=parts, private=spec.channels(), hidden=keys)
