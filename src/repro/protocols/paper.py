"""The protocols of Section 5 of the paper.

Single session (Section 5.1):

* :func:`abstract_protocol` — ``P``: the secure-by-construction
  specification.  ``A`` freshly creates ``M`` and sends it on ``c``;
  ``B`` receives only on ``c@lamB``, a channel that the startup phase
  pins to ``A``'s location.
* :func:`plaintext_protocol` — ``P1``: the insecure implementation that
  sends ``M`` in the clear on an ordinary channel (no localization, no
  cryptography).  Subject to the impersonation attack ``E(A) -> B : ME``.
* :func:`crypto_protocol` — ``P2``: sends ``{M}KAB`` under a key shared
  by ``A`` and ``B``.  Securely implements ``P`` for a single session
  (Proposition 2).

Multiple sessions (Section 5.2):

* :func:`abstract_multisession` — ``Pm``: the replicated specification.
* :func:`crypto_multisession` — ``Pm2``: replicated ``P2``; broken by a
  replay attack (``E`` intercepts ``{M}KAB`` and delivers it twice).
* :func:`challenge_response_multisession` — ``Pm3``: nonce
  challenge-response, ``B -> A : N`` then ``A -> B : {M, N}KAB``;
  securely implements ``Pm`` (Proposition 4).

Each builder takes the continuation ``B0`` as a function of the received
variable, defaulting to the paper's observing continuation
``B0(z) = observe<z>``, whose output is the only barb the testers of
Definition 4 can see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.processes import (
    Case,
    Channel,
    Input,
    LocVar,
    Match,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
)
from repro.core.terms import Name, SharedEnc, Term, Var, fresh_uid
from repro.protocols.startup import m_startup, startup

#: Type of protocol continuations: given the received value (a term,
#: usually a variable), produce the process that runs after the session.
Continuation = Callable[[Term], Process]

#: The canonical observation channel of the paper's examples.
OBSERVE = Name("observe")


def observing_continuation(value: Term) -> Process:
    """``B0(z) = observe<z>`` — republish the received datum."""
    return Output(Channel(OBSERVE), value, Nil())


@dataclass(frozen=True, slots=True)
class ProtocolPair:
    """A principal pair ``(A, B)`` plus the channels they use.

    ``channels`` lists the message-exchange channels (the set ``C`` of
    Definition 4) — the ones an attacker may use and a configuration
    must restrict.
    """

    initiator: Process
    responder: Process
    channels: tuple[Name, ...]

    def parts(self) -> tuple[tuple[str, Process], ...]:
        return (("A", self.initiator), ("B", self.responder))


# ----------------------------------------------------------------------
# Section 5.1 — single session
# ----------------------------------------------------------------------


def abstract_protocol(
    continuation: Continuation = observing_continuation,
    channel: str = "c",
) -> Process:
    """``P = startup(***, A, lamB, B)`` — authentic by construction.

    ``B`` only accepts the message on a channel localized to ``A``: the
    semantics rules make it impossible for any environment to make ``B``
    accept a datum whose origin is not ``A`` (Proposition 1).
    """
    c = Name(channel)
    lam_b = LocVar("lamB", fresh_uid())
    m = Name("M")
    z = Var("z", fresh_uid())
    side_a = Restriction(m, Output(Channel(c), m, Nil()))
    side_b = Input(Channel(c, lam_b), z, continuation(z))
    return startup(None, side_a, lam_b, side_b)


def plaintext_protocol(
    continuation: Continuation = observing_continuation,
    channel: str = "c",
) -> ProtocolPair:
    """``P1 = A1 | B1`` — M travels in the clear, nothing is localized."""
    c = Name(channel)
    m = Name("M")
    z = Var("z", fresh_uid())
    side_a = Restriction(m, Output(Channel(c), m, Nil()))
    side_b = Input(Channel(c), z, continuation(z))
    return ProtocolPair(side_a, side_b, (c,))


def crypto_protocol(
    continuation: Continuation = observing_continuation,
    channel: str = "c",
) -> Process:
    """``P2 = (nu KAB)(A2 | B2)`` — M protected by a shared key.

    Returns the full process (the key restriction spans both sides);
    the message channel is the free name ``channel``.
    """
    c = Name(channel)
    kab = Name("KAB")
    m = Name("M")
    z = Var("z", fresh_uid())
    w = Var("w", fresh_uid())
    side_a = Restriction(m, Output(Channel(c), SharedEnc((m,), kab), Nil()))
    side_b = Input(Channel(c), z, Case(z, (w,), kab, continuation(w)))
    return Restriction(kab, Parallel(side_a, side_b))


# ----------------------------------------------------------------------
# Section 5.2 — multiple sessions
# ----------------------------------------------------------------------


def abstract_multisession(
    continuation: Continuation = observing_continuation,
    channel: str = "c",
) -> Process:
    """``Pm = m_startup(***, A, lamB, B)`` — replicated specification."""
    c = Name(channel)
    lam_b = LocVar("lamB", fresh_uid())
    m = Name("M")
    z = Var("z", fresh_uid())
    side_a = Restriction(m, Output(Channel(c), m, Nil()))
    side_b = Input(Channel(c, lam_b), z, continuation(z))
    return m_startup(None, side_a, lam_b, side_b)


def crypto_multisession(
    continuation: Continuation = observing_continuation,
    channel: str = "c",
) -> Process:
    """``Pm2 = (nu KAB)(!A2 | !B2)`` — replicated P2; replay-broken."""
    c = Name(channel)
    kab = Name("KAB")
    m = Name("M")
    z = Var("z", fresh_uid())
    w = Var("w", fresh_uid())
    side_a = Replication(
        Restriction(m, Output(Channel(c), SharedEnc((m,), kab), Nil()))
    )
    side_b = Replication(Input(Channel(c), z, Case(z, (w,), kab, continuation(w))))
    return Restriction(kab, Parallel(side_a, side_b))


def challenge_response_multisession(
    continuation: Continuation = observing_continuation,
    channel: str = "c",
) -> Process:
    """``Pm3 = (nu KAB)(!A3 | !B3)`` — nonce challenge-response.

    ``A3 = (nu M) c(ns). c<{M, ns}KAB>`` and
    ``B3 = (nu N) c<N>. c(x). case x of {z, w}KAB in [w = N] B0(z)``.
    The nonce ties each message to one responder instance, restoring the
    freshness that plain ``Pm2`` lacks (Proposition 4).
    """
    c = Name(channel)
    kab = Name("KAB")
    m = Name("M")
    n = Name("N")
    ns = Var("ns", fresh_uid())
    x = Var("x", fresh_uid())
    z = Var("z", fresh_uid())
    w = Var("w", fresh_uid())
    side_a = Replication(
        Restriction(
            m,
            Input(
                Channel(c),
                ns,
                Output(Channel(c), SharedEnc((m, ns), kab), Nil()),
            ),
        )
    )
    side_b = Replication(
        Restriction(
            n,
            Output(
                Channel(c),
                n,
                Input(
                    Channel(c),
                    x,
                    Case(x, (z, w), kab, Match(w, n, continuation(z))),
                ),
            ),
        )
    )
    return Restriction(kab, Parallel(side_a, side_b))
