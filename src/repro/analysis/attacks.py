"""The Definition-4 driver: secure implementation checking & attack search.

``P securely implements P'`` (Definition 4) iff for every attacker ``X``
over the protocol channels, ``(nu C)(P | X) <=may (nu C)(P' | X)``.
This module checks the property over finite attacker and tester
families, and — when it fails — reconstructs a human-readable *attack
narration* in the paper's ``Message 1  E(A) -> B : ...`` style from the
distinguishing run.

Positive verdicts are additionally cross-checkable with the barbed weak
simulation of :mod:`repro.equivalence.simulation` (the technique the
paper uses to *prove* Propositions 2 and 4); :func:`securely_implements`
runs both when asked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.addresses import RelativeAddress
from repro.core.processes import AddrMatch, Channel, Input, Nil, Output, Process
from repro.core.terms import At, Name, Var, fresh_uid
from repro.equivalence.simulation import SimulationResult, weakly_simulated
from repro.equivalence.testing import (
    Configuration,
    Test,
    compose,
    part_locations,
    passes_result,
)
from repro.runtime.deadline import RunControl
from repro.runtime.exhaustion import Exhaustion
from repro.semantics.actions import output_barb
from repro.semantics.lts import Budget, DEFAULT_BUDGET, find_trace, narrate

if TYPE_CHECKING:
    from repro.analysis.witness import Witness

#: The default success channel testers signal on.
SUCCESS = Name("omega")


# ----------------------------------------------------------------------
# Tester generation
# ----------------------------------------------------------------------


def origin_tester(
    observe: Name, address: RelativeAddress, success: Name = SUCCESS
) -> Process:
    """``observe(z). [z =~ l] omega<ok>`` — "the datum came from ``l``".

    The tester of Section 5.1: it detects that the continuation was fed
    a message originating at a given location (e.g. the attacker's).
    """
    z = Var("z", fresh_uid())
    return Input(
        Channel(observe),
        z,
        AddrMatch(z, At(address), Output(Channel(success), Name("ok"), Nil())),
    )


def same_origin_tester(observe: Name, success: Name = SUCCESS) -> Process:
    """``observe(x). observe(y). [x =~ y] omega<ok>``.

    The tester of Section 5.2: it detects that two accepted messages
    share a creator — the signature of a replay.
    """
    x = Var("x", fresh_uid())
    y = Var("y", fresh_uid())
    return Input(
        Channel(observe),
        x,
        Input(
            Channel(observe),
            y,
            AddrMatch(x, y, Output(Channel(success), Name("ok"), Nil())),
        ),
    )


def standard_testers(
    config: Configuration,
    observe: Name,
    roles: Sequence[str],
    success: Name = SUCCESS,
) -> list[Test]:
    """The paper's tester family for a configuration.

    One origin tester per named role (is the delivered message really
    from ``A``? could it be from ``E``?...) plus the same-origin replay
    detector.  Address literals are computed for the composed tree
    shape, so the configurations compared against each other must share
    their part layout.
    """
    table = part_locations(config, with_tester=True)
    tester_loc = table["T"]
    tests: list[Test] = []
    for role in roles:
        address = RelativeAddress.between(observer=tester_loc, target=table[role])
        tests.append(
            Test(
                name=f"origin-is-{role}",
                tester=origin_tester(observe, address, success),
                barb=output_barb(success),
            )
        )
    tests.append(
        Test(
            name="same-origin-twice",
            tester=same_origin_tester(observe, success),
            barb=output_barb(success),
        )
    )
    return tests


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Attack:
    """A found implementation flaw, with its reconstructed narration.

    ``witness`` is the same distinguishing run in machine-checkable
    form (unsealed: the caller that knows how ``impl`` was built must
    seal it with a system recipe before serializing).  It covers the
    implementation side of Definition 4 only — that the tester's success
    barb is reachable; the specification side's *absence* of such a run
    is the search's claim and not replayable from one trace.
    """

    attacker_name: str
    attacker: Process
    test: Test
    narration: tuple[str, ...]
    witness: Optional["Witness"] = None

    def describe(self) -> str:
        lines = [
            f"attack with attacker {self.attacker_name!r}, "
            f"distinguishing test {self.test.name!r}:"
        ]
        lines.extend(f"  {line}" for line in self.narration)
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class ImplementationVerdict:
    """Outcome of a bounded Definition-4 check.

    ``secure`` means no attacker/tester pair in the families could
    distinguish the implementation from the specification.  The verdict
    carries how much was checked; ``exhaustive`` is False when some
    exploration hit its budget.
    """

    secure: bool
    attackers_checked: int
    tests_checked: int
    exhaustive: bool
    attack: Optional[Attack] = None
    simulations: tuple[SimulationResult, ...] = ()
    exhaustion: Optional[Exhaustion] = None

    def describe(self) -> str:
        if self.secure:
            if self.exhaustive:
                qualifier = ""
            elif self.exhaustion is not None:
                qualifier = f" (budget-limited: {'+'.join(self.exhaustion.reasons)})"
            else:
                qualifier = " (budget-limited)"
            return (
                f"securely implements: no distinguishing attack among "
                f"{self.attackers_checked} attackers x {self.tests_checked} "
                f"tests{qualifier}"
            )
        assert self.attack is not None
        return "NOT a secure implementation:\n" + self.attack.describe()


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------


def _narrate_attack(
    config: Configuration, test: Test, budget: Budget
) -> tuple[tuple[str, ...], Optional["Witness"]]:
    """Reconstruct the shortest run of ``config | tester`` that makes the
    test succeed: the role-named narration plus the machine-checkable
    witness built from the same trace."""
    from repro.analysis.witness import attack_witness
    from repro.equivalence.barbs import exhibits

    system = compose(config, test.tester)
    trace = find_trace(system, lambda s: exhibits(s, test.barb), budget)
    if trace is None:
        return ("(run reconstruction exceeded the budget)",), None
    witness = attack_witness(system, trace, test.name, test.barb.channel.base)
    return tuple(narrate(system, trace)), witness


def securely_implements(
    impl: Configuration,
    spec: Configuration,
    attackers: Sequence[tuple[str, Process]],
    tests: Optional[Sequence[Test]] = None,
    observe: Name = Name("observe"),
    roles: Sequence[str] = ("A", "B", "E"),
    budget: Budget = DEFAULT_BUDGET,
    check_simulation: bool = False,
    control: Optional[RunControl] = None,
) -> ImplementationVerdict:
    """Check Definition 4 over attacker and tester families.

    ``impl`` and ``spec`` are configurations *without* the attacker part;
    each attacker is composed in as role ``E``.  When ``tests`` is not
    given, the paper's standard tester family is generated per attacker
    (origin testers for ``roles`` plus the replay detector).

    With ``check_simulation=True`` a barbed-weak-simulation check of
    ``(nu C)(impl | X)`` against ``(nu C)(spec | X)`` is also run for
    every attacker and included in the verdict — the paper's positive
    proof technique, independent of the tester family.
    """
    from repro.obs.metrics import current_metrics
    from repro.obs.trace import trace_span

    tests_count = 0
    exhaustions: list[Optional[Exhaustion]] = []
    simulations: list[SimulationResult] = []
    metrics = current_metrics()
    if metrics is not None:
        metrics.inc("check.runs")
        metrics.inc("check.attackers", len(attackers))
    for attacker_name, attacker in attackers:
        impl_x = impl.with_part("E", attacker)
        spec_x = spec.with_part("E", attacker)
        suite = (
            list(tests)
            if tests is not None
            else standard_testers(impl_x, observe, roles=roles)
        )
        tests_count = max(tests_count, len(suite))
        for test in suite:
            impl_result = passes_result(impl_x, test, budget, control)
            exhaustions.append(impl_result.exhaustion)
            if not impl_result.found:
                continue
            spec_result = passes_result(spec_x, test, budget, control)
            exhaustions.append(spec_result.exhaustion)
            if spec_result.found:
                continue
            narration, witness = _narrate_attack(impl_x, test, budget)
            attack = Attack(
                attacker_name=attacker_name,
                attacker=attacker,
                test=test,
                narration=narration,
                witness=witness,
            )
            return ImplementationVerdict(
                secure=False,
                attackers_checked=len(attackers),
                tests_checked=tests_count,
                exhaustive=spec_result.exhaustive,
                attack=attack,
                exhaustion=spec_result.exhaustion,
            )
        if check_simulation:
            simulations.append(
                weakly_simulated(compose(impl_x), compose(spec_x), budget, control)
            )
    sim_ok = all(s.holds for s in simulations)
    merged = Exhaustion.merge(*exhaustions, *(s.exhaustion for s in simulations))
    return ImplementationVerdict(
        secure=sim_ok,
        attackers_checked=len(attackers),
        tests_checked=tests_count,
        exhaustive=merged is None,
        simulations=tuple(simulations),
        exhaustion=merged,
    )


def find_attack(
    impl: Configuration,
    spec: Configuration,
    attackers: Sequence[tuple[str, Process]],
    observe: Name = Name("observe"),
    roles: Sequence[str] = ("A", "B", "E"),
    budget: Budget = DEFAULT_BUDGET,
) -> Optional[Attack]:
    """Search the attacker family for a distinguishing attack."""
    verdict = securely_implements(
        impl, spec, attackers, observe=observe, roles=roles, budget=budget
    )
    return verdict.attack
