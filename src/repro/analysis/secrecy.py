"""Secrecy analysis — the other half of Section 5.1's remark.

The paper notes that localizing the *output* as well::

    A' = (nu M) c@l<M>        with l the address of B w.r.t. A

"would give a secrecy guarantee on the message, because A would be sure
that B is the only possible receiver of M".

This module makes the claim checkable: explore a configuration, collect
everything a designated spy role ever receives, close it under
Dolev-Yao analysis, and ask whether the secret becomes derivable.
:func:`secrecy_protocol` builds the doubly-localized variant of the
paper's abstract protocol; ``keeps_secret`` shows it keeps ``M`` from
every attacker while the plain abstract protocol (whose output anyone
may consume) does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.analysis.knowledge import Knowledge
from repro.core.addresses import is_prefix
from repro.core.processes import Channel, Input, LocVar, Nil, Output, Process, Restriction
from repro.core.terms import Name, Term, Var, fresh_uid
from repro.equivalence.testing import Configuration, compose
from repro.protocols.paper import Continuation, observing_continuation
from repro.protocols.startup import startup
from repro.runtime.deadline import RunControl
from repro.runtime.exhaustion import Exhaustion
from repro.semantics.lts import Budget, DEFAULT_BUDGET, explore

if TYPE_CHECKING:
    from repro.analysis.witness import Witness


@dataclass(frozen=True, slots=True)
class SecrecyVerdict:
    """Outcome of a secrecy check.

    ``holds`` means the spy could not derive any matching secret within
    the explored space; ``leak`` carries a derivable secret otherwise.
    ``exhaustive`` is False when the exploration was budget-truncated.
    """

    holds: bool
    exhaustive: bool
    heard: int
    leak: Optional[Term] = None
    exhaustion: Optional[Exhaustion] = None
    witness: Optional["Witness"] = None

    def describe(self) -> str:
        if self.holds:
            if self.exhaustive:
                qualifier = ""
            elif self.exhaustion is not None:
                qualifier = (
                    f" (within the exploration budget: "
                    f"{'+'.join(self.exhaustion.reasons)})"
                )
            else:
                qualifier = " (within the exploration budget)"
            return f"secret kept: spy heard {self.heard} messages{qualifier}"
        from repro.syntax.pretty import render_term

        return f"SECRET LEAKED: spy can derive {render_term(self.leak)}"


def keeps_secret(
    config: Configuration,
    secret: Callable[[Name], bool] | str,
    spy: str = "E",
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> SecrecyVerdict:
    """Can the ``spy`` role ever derive a secret?

    ``secret`` selects the sensitive names — either a predicate on
    :class:`Name` or a base spelling (every restricted name spelled so
    counts, across all replication instances).  The spy's knowledge is
    the Dolev-Yao closure of every message delivered *to* it anywhere in
    the explored state space (a sound over-approximation of any single
    run within the horizon).
    """
    if isinstance(secret, str):
        base = secret
        predicate: Callable[[Name], bool] = lambda n: n.base == base and n.uid is not None
    else:
        predicate = secret

    system = compose(config)
    spy_loc = system.location_of(spy)
    graph = explore(system, budget, control)

    heard: list[Term] = []
    secrets: set[Name] = set()
    for key in graph.states:
        for name in graph.states[key].private:
            if predicate(name):
                secrets.add(name)
        for transition, _ in graph.successors_of(key):
            action = transition.action
            if is_prefix(spy_loc, action.receiver):
                heard.append(action.value)

    knowledge = Knowledge.from_terms(heard)
    for name in sorted(secrets, key=lambda n: n.uid or 0):
        if knowledge.can_derive(name):
            witness = None
            if isinstance(secret, str):
                # Union-knowledge over all branches is an over-
                # approximation of any single run; the witness builder
                # re-searches for one concrete leaking path and may
                # come up empty within the budget (witness stays None
                # and --certify degrades the verdict to a fault).
                from repro.analysis.witness import secrecy_witness

                witness = secrecy_witness(system, spy_loc, secret, spy, budget)
            return SecrecyVerdict(
                holds=False,
                exhaustive=not graph.truncated,
                heard=len(heard),
                leak=name,
                exhaustion=graph.exhaustion,
                witness=witness,
            )
    return SecrecyVerdict(
        holds=True,
        exhaustive=not graph.truncated,
        heard=len(heard),
        exhaustion=graph.exhaustion,
    )


def secrecy_protocol(
    continuation: Continuation = observing_continuation,
    channel: str = "c",
) -> Process:
    """The doubly-localized abstract protocol of the Section 5.1 remark.

    ``startup(lamA, A', lamB, B)`` with ``A' = (nu M) c@lamA<M>``: the
    output itself is pinned to B, so no environment can even *receive*
    the message, let alone forge one — authentication and secrecy by
    construction.
    """
    c = Name(channel)
    lam_a = LocVar("lamA", fresh_uid())
    lam_b = LocVar("lamB", fresh_uid())
    m = Name("M")
    z = Var("z", fresh_uid())
    side_a = Restriction(m, Output(Channel(c, lam_a), m, Nil()))
    side_b = Input(Channel(c, lam_b), z, continuation(z))
    return startup(lam_a, side_a, lam_b, side_b)
