"""Dolev-Yao message derivation under perfect cryptography.

The attackers of Definition 4 are arbitrary processes over the protocol
channels; what they can *say* is bounded by what they can derive from
what they have heard.  This module implements the standard two-phase
closure:

* **analysis** — decompose what is known: project pairs, and decrypt
  ciphertexts whose key is (or becomes) known;
* **synthesis** — compose new messages: pair known messages and encrypt
  them under known keys.

Analysis is a finite fixpoint; synthesis is infinite and therefore
exposed as a *bounded enumeration* (:func:`synthesizable`) and a
*derivability check* (:meth:`Knowledge.can_derive`), which is decidable
by the usual subterm argument: a derivable term is built from analyzed
parts by composition only.

Localization wrappers are transparent to the attacker: knowledge is
about data, not about where data was created (an attacker cannot forge
origins — that is the whole point of the paper — but it can freely strip
and forward them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.terms import Localized, Name, Pair, SharedEnc, Succ, Term, Zero, payload


def _strip(term: Term) -> Term:
    """Remove localization wrappers, recursively."""
    term = payload(term)
    if isinstance(term, Pair):
        return Pair(_strip(term.first), _strip(term.second))
    if isinstance(term, Succ):
        return Succ(_strip(term.term))
    if isinstance(term, SharedEnc):
        return SharedEnc(tuple(_strip(part) for part in term.body), _strip(term.key))
    return term


@dataclass(frozen=True)
class Knowledge:
    """An analyzed, deduplicated set of known messages.

    Construct with :meth:`from_terms`; the constructor argument must
    already be analysis-closed (use the factory).
    """

    atoms: frozenset[Term]

    @classmethod
    def from_terms(cls, terms: Iterable[Term]) -> "Knowledge":
        """Build knowledge from heard messages, closing under analysis."""
        known: set[Term] = {_strip(t) for t in terms}
        changed = True
        while changed:
            changed = False
            for term in tuple(known):
                if isinstance(term, Pair):
                    for part in (term.first, term.second):
                        if part not in known:
                            known.add(part)
                            changed = True
                elif isinstance(term, Succ):
                    # the predecessor of a known numeral is known
                    if term.term not in known:
                        known.add(term.term)
                        changed = True
                elif isinstance(term, SharedEnc) and term.key in known:
                    for part in term.body:
                        if part not in known:
                            known.add(part)
                            changed = True
        return cls(frozenset(known))

    def adding(self, *terms: Term) -> "Knowledge":
        """Knowledge extended with newly heard messages."""
        return Knowledge.from_terms(set(self.atoms) | {_strip(t) for t in terms})

    def can_derive(self, goal: Term) -> bool:
        """Decide whether ``goal`` is synthesizable from this knowledge."""
        goal = _strip(goal)
        if goal in self.atoms:
            return True
        if isinstance(goal, Zero):
            return True  # 0 is a public constructor
        if isinstance(goal, Succ):
            return self.can_derive(goal.term)
        if isinstance(goal, Pair):
            return self.can_derive(goal.first) and self.can_derive(goal.second)
        if isinstance(goal, SharedEnc):
            return self.can_derive(goal.key) and all(
                self.can_derive(part) for part in goal.body
            )
        return False

    def names(self) -> frozenset[Name]:
        """The atomic names known (usable as keys or channel subjects)."""
        return frozenset(t for t in self.atoms if isinstance(t, Name))

    def __contains__(self, term: Term) -> bool:
        return self.can_derive(term)

    def __len__(self) -> int:
        return len(self.atoms)


def synthesizable(knowledge: Knowledge, depth: int) -> Iterator[Term]:
    """Enumerate messages derivable with at most ``depth`` compositions.

    Depth 0 yields the analyzed atoms themselves; each further level
    pairs and encrypts what the previous levels produced.  The output is
    deduplicated and ordered smallest-first, which keeps downstream
    attacker enumeration stable across runs.
    """
    seen: set[Term] = set()
    levels: list[list[Term]] = [sorted(knowledge.atoms, key=_term_order)]
    for term in levels[0]:
        seen.add(term)
        yield term
    keys = [t for t in knowledge.atoms if isinstance(t, Name)]
    for _ in range(depth):
        previous = [t for level in levels for t in level]
        fresh: list[Term] = []
        for left in previous:
            for right in previous:
                candidate: Term = Pair(left, right)
                if candidate not in seen:
                    seen.add(candidate)
                    fresh.append(candidate)
        for body in previous:
            for key in keys:
                candidate = SharedEnc((body,), key)
                if candidate not in seen:
                    seen.add(candidate)
                    fresh.append(candidate)
        fresh.sort(key=_term_order)
        levels.append(fresh)
        yield from fresh


def _term_order(term: Term) -> tuple[int, str]:
    """Deterministic ordering key: size first, then rendering."""
    from repro.syntax.pretty import render_term

    return (_size(term), render_term(term))


def _size(term: Term) -> int:
    if isinstance(term, Pair):
        return 1 + _size(term.first) + _size(term.second)
    if isinstance(term, Succ):
        return 1 + _size(term.term)
    if isinstance(term, SharedEnc):
        return 1 + sum(_size(p) for p in term.body) + _size(term.key)
    if isinstance(term, Localized):
        return _size(term.term)
    return 1
