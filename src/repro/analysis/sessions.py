"""Session-hooking analysis (Proposition 3 as a reusable report).

The multisession startup hooks each instance of one role to exactly one
instance of the other, and located channels then confine every later
message to the hooked pair.  This module extracts that structure from an
explored state space:

* :func:`communication_partners` — who talked to whom on a channel,
  instance by instance;
* :func:`hooking_report` — the full Proposition-3 check: sessions are
  pairwise-exclusive in *both* directions, plus the list of hooked
  pairs for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.addresses import Location, location_str
from repro.equivalence.testing import Configuration, compose
from repro.semantics import reduction
from repro.semantics.lts import Budget, DEFAULT_BUDGET, explore


@dataclass(frozen=True, slots=True)
class HookingReport:
    """Who hooked whom, and whether the hooking is pairwise.

    Attributes:
        pairs: every (sender-instance, receiver-instance) pair observed
            on the channel across the explored space.
        exclusive: True when the relation is a partial injection in both
            directions — each instance has at most one partner, which is
            the paper's "instances are hooked pairwise".
        exhaustive: False when the exploration hit its budget.
    """

    pairs: frozenset[tuple[Location, Location]]
    exclusive: bool
    exhaustive: bool

    def describe(self) -> str:
        lines = [
            f"{len(self.pairs)} hooked pair(s); "
            + ("pairwise-exclusive" if self.exclusive else "NOT pairwise-exclusive")
            + ("" if self.exhaustive else " (within budget)")
        ]
        for sender, receiver in sorted(self.pairs):
            lines.append(f"  {location_str(sender)} <-> {location_str(receiver)}")
        return "\n".join(lines)


def communication_partners(
    config: Configuration,
    channel: str,
    budget: Budget = DEFAULT_BUDGET,
) -> tuple[frozenset[tuple[Location, Location]], bool]:
    """All (sender, receiver) pairs seen on ``channel``.

    Returns the pair set and an exhaustiveness flag.  Pairs are
    aggregated over the whole explored space: with located channels a
    receiver's set is its hard-wired partner; with plain channels it
    reflects every scheduling the budget reached.
    """
    system = compose(config)
    # Per-instance pairings must stay location-exact: symmetry reduction
    # merges states that differ only by a permutation of replicated
    # copies, which would collapse distinct (sender, receiver) pairs and
    # could make a non-exclusive hooking look exclusive.
    with reduction.suspended():
        graph = explore(system, budget)
    pairs: set[tuple[Location, Location]] = set()
    for key in graph.states:
        for transition, _ in graph.successors_of(key):
            action = transition.action
            if action.channel.base == channel:
                pairs.add((action.sender, action.receiver))
    return frozenset(pairs), not graph.truncated


def hooking_report(
    config: Configuration,
    channel: str = "c",
    exclude_role: Optional[str] = "E",
    budget: Budget = DEFAULT_BUDGET,
) -> HookingReport:
    """Check that sessions on ``channel`` are hooked pairwise.

    Communications involving ``exclude_role`` (the attacker, by default)
    are ignored: the property is about the honest instances' bindings.
    Exclusivity fails exactly when some instance serves two partners —
    which located channels make impossible (Proposition 3) and plain
    channels do not.
    """
    system = compose(config)
    excluded: Optional[Location] = None
    if exclude_role is not None:
        try:
            excluded = system.location_of(exclude_role)
        except KeyError:
            excluded = None

    pairs, exhaustive = communication_partners(config, channel, budget)
    if excluded is not None:
        pairs = frozenset(
            (s, r)
            for s, r in pairs
            if s[: len(excluded)] != excluded and r[: len(excluded)] != excluded
        )

    senders: dict[Location, set[Location]] = {}
    receivers: dict[Location, set[Location]] = {}
    for sender, receiver in pairs:
        senders.setdefault(sender, set()).add(receiver)
        receivers.setdefault(receiver, set()).add(sender)
    exclusive = all(len(v) == 1 for v in senders.values()) and all(
        len(v) == 1 for v in receivers.values()
    )
    return HookingReport(pairs=pairs, exclusive=exclusive, exhaustive=exhaustive)
