"""Replayable violation witnesses.

Every negative verdict this library produces is intrinsically
*witnessed*: a secrecy leak, an authentication/freshness violation or a
Definition-4 attack is exhibited by a concrete run from the initial
system (the Woo-Lam narration of :mod:`repro.analysis.attacks` is the
canonical example).  This module upgrades the prose narration to a
machine-checkable record: a :class:`Witness` is a JSON-round-trippable,
checksummed, engine-stamped list of concrete steps, which the
deliberately minimal trusted core in :mod:`repro.semantics.replay`
re-derives against the unreduced, uncached transition relation.

Design constraints:

* **Uid-freedom.**  Restricted-name uids come from a process-global
  counter, so they are not stable across processes.  Steps therefore
  record *shapes* (:func:`term_shape`): names by base spelling plus
  creator location (which is structural — the absolute tree position of
  the restriction — and therefore deterministic), composites
  structurally.  Shape-ambiguous matches are resolved by the replayer's
  backtracking search.
* **Sealing split.**  Builders run where the violation is found and
  cannot know how the initial system was constructed; they emit an
  *unsealed* witness (``system`` recipe ``None``, no checksum).  The
  caller that owns the construction (the worker, the CLI) seals it with
  a recipe via :meth:`Witness.sealed`, which also stamps the checksum.
* **Best effort.**  A builder that exhausts its budget returns ``None``
  — under ``--certify`` a violation without a replayable witness
  degrades to a retryable fault rather than a silent wrong verdict.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.core.addresses import Location, is_prefix
from repro.core.errors import ReproError, TermError
from repro.core.terms import (
    At,
    Localized,
    Name,
    Pair,
    SharedEnc,
    Succ,
    Term,
    Var,
    Zero,
    localize,
    origin,
)
from repro.semantics.actions import Comm, Transition
from repro.semantics.lts import Budget, find_trace
from repro.semantics.system import System
from repro.semantics.transitions import pending_actions, successors

#: Recognized witness kinds.  The ``env-`` prefix selects the
#: environment-sensitive (most-general-attacker) semantics on replay.
WITNESS_KINDS = frozenset(
    {
        "secrecy",
        "authentication",
        "freshness",
        "env-secrecy",
        "env-authentication",
        "env-freshness",
        "attack",
    }
)

#: Schema version of serialized witnesses.
WITNESS_VERSION = 1


class WitnessError(ReproError):
    """A witness is structurally malformed or fails validation."""


def engine_version() -> str:
    """The engine stamp a witness carries (matches the verdict store's)."""
    import repro

    return repro.__version__


# ----------------------------------------------------------------------
# Term shapes — uid-free structural signatures
# ----------------------------------------------------------------------


def term_shape(term: Term) -> Any:
    """A JSON-ready, uid-free structural signature of a runtime value.

    Names are keyed by base spelling, boundness, and creator location;
    two names from different restriction instances (including distinct
    replication copies, whose copy index is part of the creator
    location) keep distinct shapes.
    """
    if isinstance(term, Name):
        shape: dict = {"t": "name", "b": term.base, "u": term.uid is not None}
        if term.creator is not None:
            shape["c"] = list(term.creator)
        return shape
    if isinstance(term, Pair):
        return {"t": "pair", "f": term_shape(term.first), "s": term_shape(term.second)}
    if isinstance(term, Zero):
        return {"t": "zero"}
    if isinstance(term, Succ):
        return {"t": "succ", "n": term_shape(term.term)}
    if isinstance(term, SharedEnc):
        return {
            "t": "enc",
            "b": [term_shape(part) for part in term.body],
            "k": term_shape(term.key),
        }
    if isinstance(term, Localized):
        return {"t": "loc", "c": list(term.creator), "v": term_shape(term.term)}
    if isinstance(term, At):
        return {
            "t": "at",
            "a": term.address.render(),
            "v": None if term.term is None else term_shape(term.term),
        }
    if isinstance(term, Var):  # defensive: open terms never flow at runtime
        return {"t": "var", "v": term.ident}
    raise WitnessError(f"cannot shape term {term!r}")


def step_record(action: Comm, label: str, env: Optional[str] = None) -> dict:
    """One serialized witness step: the action's full signature plus the
    human narration line (``env`` is the environment-step kind for
    ``env-*`` witnesses: ``tau``/``hear``/``say``)."""
    record = {
        "label": label,
        "ch": term_shape(action.channel),
        "val": term_shape(action.value),
        "s": list(action.sender),
        "r": list(action.receiver),
    }
    if env is not None:
        record["env"] = env
    return record


def _steps_from_trace(system: System, trace: Sequence[Transition]) -> tuple[dict, ...]:
    """Serialize a plain-semantics trace, narrating against each source."""
    steps = []
    state = system
    for transition in trace:
        steps.append(step_record(transition.action, transition.describe(state)))
        state = transition.target
    return tuple(steps)


# ----------------------------------------------------------------------
# The witness record
# ----------------------------------------------------------------------


def witness_checksum(payload: Mapping) -> str:
    """Checksum of a witness payload (all fields except ``checksum``),
    over the canonical sorted-compact JSON rendering — the same idiom as
    the verdict store's record checksums."""
    data = {key: value for key, value in payload.items() if key != "checksum"}
    encoded = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Witness:
    """The violating run, as concrete steps from the initial system.

    ``prop`` carries the violated property's parameters (secret base,
    sender role, observation channel...); ``system`` is the sealed
    construction recipe the replayer rebuilds the initial system from
    (``None`` while unsealed); ``checksum`` covers every other field.
    """

    kind: str
    prop: Mapping[str, Any]
    steps: tuple[Mapping[str, Any], ...]
    system: Optional[Mapping[str, Any]] = None
    engine: str = field(default_factory=engine_version)
    version: int = WITNESS_VERSION
    checksum: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in WITNESS_KINDS:
            raise WitnessError(f"unknown witness kind {self.kind!r}")

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "engine": self.engine,
            "kind": self.kind,
            "property": dict(self.prop),
            "system": None if self.system is None else dict(self.system),
            "steps": [dict(step) for step in self.steps],
            "checksum": self.checksum,
        }

    @staticmethod
    def from_json(data: Mapping) -> "Witness":
        if not isinstance(data, Mapping):
            raise WitnessError(f"a witness must be an object, got {type(data).__name__}")
        try:
            version = int(data["version"])
            engine = data["engine"]
            kind = data["kind"]
            prop = data["property"]
            system = data.get("system")
            steps = data["steps"]
            checksum = data.get("checksum")
        except (KeyError, TypeError, ValueError) as err:
            raise WitnessError(f"malformed witness: {err}")
        if version != WITNESS_VERSION:
            raise WitnessError(f"unsupported witness version {version!r}")
        if not isinstance(engine, str) or not isinstance(kind, str):
            raise WitnessError("witness engine/kind must be strings")
        if not isinstance(prop, Mapping) or not isinstance(steps, list):
            raise WitnessError("witness property must be an object, steps a list")
        if system is not None and not isinstance(system, Mapping):
            raise WitnessError("witness system recipe must be an object")
        for step in steps:
            if not isinstance(step, Mapping) or not {"ch", "val", "s", "r"} <= set(step):
                raise WitnessError(f"malformed witness step: {step!r}")
        if checksum is not None and not isinstance(checksum, str):
            raise WitnessError("witness checksum must be a string")
        return Witness(
            kind=kind,
            prop=dict(prop),
            steps=tuple(dict(step) for step in steps),
            system=None if system is None else dict(system),
            engine=engine,
            version=version,
            checksum=checksum,
        )

    def sealed(self, system: Mapping[str, Any]) -> "Witness":
        """This witness with the construction recipe and checksum set."""
        unsealed = replace(self, system=dict(system), checksum=None)
        return replace(unsealed, checksum=witness_checksum(unsealed.to_json()))

    def verify_checksum(self) -> bool:
        """True when the stored checksum matches the payload."""
        return self.checksum is not None and self.checksum == witness_checksum(
            self.to_json()
        )


# ----------------------------------------------------------------------
# Builders — plain-semantics witnesses
# ----------------------------------------------------------------------


def secrecy_witness(
    system: System,
    spy_loc: Location,
    secret_base: str,
    spy: str,
    budget: Budget,
) -> Optional[Witness]:
    """Shortest run along which the spy's *path* knowledge derives a
    secret.

    :func:`repro.analysis.secrecy.keeps_secret` unions the spy's hearing
    over every explored branch (a sound over-approximation); a witness
    must be one concrete run, so this is a product search over
    ``(system state, path knowledge)`` nodes.  Returns ``None`` when no
    single-path leak is found within the budget.
    """
    from repro.analysis.knowledge import Knowledge

    def leaks(state: System, knowledge: Knowledge) -> bool:
        return any(
            name.base == secret_base
            and name.uid is not None
            and knowledge.can_derive(name)
            for name in state.private
        )

    knowledge = Knowledge.from_terms(())
    if leaks(system, knowledge):
        return Witness(kind="secrecy", prop={"secret": secret_base, "spy": spy}, steps=())
    start = (system.canonical_key(), knowledge.atoms)
    seen = {start}
    queue: deque = deque([(system, knowledge, (), 0)])
    while queue:
        state, known, path, depth = queue.popleft()
        if depth >= budget.max_depth:
            continue
        for transition in successors(state):
            action = transition.action
            heard = is_prefix(spy_loc, action.receiver)
            extended = known.adding(action.value) if heard else known
            step = (state, transition)
            if leaks(transition.target, extended):
                trace = [*path, step]
                steps = tuple(
                    step_record(t.action, t.describe(source)) for source, t in trace
                )
                return Witness(
                    kind="secrecy",
                    prop={"secret": secret_base, "spy": spy},
                    steps=steps,
                )
            key = (transition.target.canonical_key(), extended.atoms)
            if key in seen or len(seen) >= budget.max_states:
                continue
            seen.add(key)
            queue.append((transition.target, extended, (*path, step), depth + 1))
    return None


def authentication_violation(
    state: System, sender_loc: Location, observe_base: str
) -> bool:
    """Does ``state`` offer an activated continuation holding a datum
    not created by the authenticated sender?"""
    for action in pending_actions(state):
        if not action.is_output or action.channel_subject.base != observe_base:
            continue
        try:
            value = localize(action.payload, action.act_loc)
        except TermError:
            continue
        creator = origin(value)
        if creator is None or not is_prefix(sender_loc, creator):
            return True
    return False


def freshness_violation(state: System, observe_base: str) -> bool:
    """Does ``state`` hold two co-existing activations with one creator
    — the single-run signature of a replay?"""
    per_creator: dict[Location, Location] = {}
    for action in pending_actions(state):
        if not action.is_output or action.channel_subject.base != observe_base:
            continue
        try:
            value = localize(action.payload, action.act_loc)
        except TermError:
            continue
        creator = origin(value)
        if creator is None:
            continue
        previous = per_creator.get(creator)
        if previous is not None and previous != action.act_loc:
            return True
        per_creator[creator] = action.act_loc
    return False


def authentication_witness(
    system: System, sender_role: str, observe_base: str, budget: Budget
) -> Optional[Witness]:
    """Shortest run to a state violating the Authentication property."""
    sender_loc = system.location_of(sender_role)
    trace = find_trace(
        system,
        lambda s: authentication_violation(s, sender_loc, observe_base),
        budget,
    )
    if trace is None:
        return None
    return Witness(
        kind="authentication",
        prop={"sender": sender_role, "observe": observe_base},
        steps=_steps_from_trace(system, trace),
    )


def freshness_witness(
    system: System, observe_base: str, budget: Budget
) -> Optional[Witness]:
    """Shortest run to a state violating the Freshness property."""
    trace = find_trace(
        system, lambda s: freshness_violation(s, observe_base), budget
    )
    if trace is None:
        return None
    return Witness(
        kind="freshness",
        prop={"observe": observe_base},
        steps=_steps_from_trace(system, trace),
    )


def attack_witness(
    system: System, trace: Sequence[Transition], test_name: str, barb_base: str
) -> Witness:
    """A Definition-4 attack run: the implementation-side trace that
    drives the distinguishing tester to its success barb (the
    specification side admits no such run — that half is the search's
    claim, not replayable from one trace)."""
    return Witness(
        kind="attack",
        prop={"test": test_name, "barb": barb_base},
        steps=_steps_from_trace(system, trace),
    )


# ----------------------------------------------------------------------
# Builders — environment-sensitive witnesses
# ----------------------------------------------------------------------


def env_witness(
    config,
    kind: str,
    goal: Callable,
    prop: Mapping[str, Any],
    env_role: str,
    synth_depth: int,
    budget: Budget,
) -> Optional[Witness]:
    """Shortest environment-sensitive run to a state satisfying ``goal``
    (a predicate on :class:`~repro.analysis.environment.EnvState`).

    The search expands the *full* hear/say/tau relation
    (``tau_visited=None`` disables partial-order reduction of the honest
    steps), so every recorded step is a genuine unreduced transition.
    """
    from repro.analysis.environment import env_initial, env_successors

    initial, env_loc, channels = env_initial(config, env_role)
    if goal(initial):
        return Witness(kind=kind, prop=dict(prop), steps=())
    seen = {initial.key()}
    queue: deque = deque([(initial, (), 0)])
    while queue:
        state, path, depth = queue.popleft()
        if depth >= budget.max_depth:
            continue
        for step in env_successors(
            state, env_loc, channels, synth_depth, tau_visited=None
        ):
            if goal(step.target):
                trace = [*path, (state, step)]
                steps = tuple(
                    step_record(s.action, s.describe(source), env=s.kind)
                    for source, s in trace
                )
                return Witness(kind=kind, prop=dict(prop), steps=steps)
            key = step.target.key()
            if key in seen or len(seen) >= budget.max_states:
                continue
            seen.add(key)
            queue.append((step.target, (*path, (state, step)), depth + 1))
    return None


# ----------------------------------------------------------------------
# Recipe rebuild — how the replayer reconstructs the initial system
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReplaySetup:
    """The rebuilt starting point of a replay.

    ``mode`` is ``"system"`` (plain semantics: ``initial`` is a
    :class:`System`) or ``"env"`` (environment-sensitive: ``initial`` is
    an ``EnvState`` and ``env_loc``/``channels``/``synth_depth`` drive
    the expansion).
    """

    mode: str
    initial: Any
    env_loc: Optional[Location] = None
    channels: Optional[frozenset] = None
    synth_depth: int = 1


def rebuild_initial(witness: Witness) -> ReplaySetup:
    """Reconstruct the initial system a sealed witness starts from.

    Raises :class:`WitnessError` when the recipe is missing, names an
    unknown source, or its referents (zoo protocol, system file,
    attacker/test name) no longer resolve.
    """
    recipe = witness.system
    if recipe is None:
        raise WitnessError("unsealed witness: no system recipe to rebuild from")
    source = recipe.get("source")
    if source == "zoo":
        return _rebuild_zoo(witness, recipe)
    if source == "sysfile":
        return _rebuild_sysfile(witness, recipe)
    if source == "check":
        return _rebuild_check(witness, recipe)
    raise WitnessError(f"unknown witness system source {source!r}")


def _rebuild_zoo(witness: Witness, recipe: Mapping) -> ReplaySetup:
    from repro.analysis.intruder import eavesdropper, impersonator, replayer
    from repro.equivalence.testing import compose
    from repro.protocols.library import narration_configuration
    from repro.protocols.zoo import ZOO

    name = recipe.get("protocol")
    builder = ZOO.get(name)
    if builder is None:
        raise WitnessError(f"witness names unknown zoo protocol {name!r}")
    spec = builder()
    config = narration_configuration(
        spec,
        observed_role=recipe.get("observed_role", "B"),
        observed_datum=recipe.get("observed_datum", "PAYLOAD"),
    )
    wire = Name(spec.channel)
    intruder = recipe.get("intruder")
    if intruder == "eavesdropper":
        attacker = eavesdropper(wire, messages=int(recipe.get("messages", 1)))
    elif intruder == "impersonator":
        attacker = impersonator(wire)
    elif intruder == "replayer":
        attacker = replayer(wire)
    else:
        raise WitnessError(f"witness names unknown intruder {intruder!r}")
    return ReplaySetup(mode="system", initial=compose(config.with_part("E", attacker)))


def _rebuild_sysfile(witness: Witness, recipe: Mapping) -> ReplaySetup:
    from repro.analysis.environment import env_initial
    from repro.syntax.sysfile import load_system_file

    path = recipe.get("path")
    try:
        sysfile = load_system_file(path)
    except (OSError, ReproError) as err:
        raise WitnessError(f"cannot rebuild system file {path!r}: {err}")
    env_role = witness.prop.get("env", "E")
    initial, env_loc, channels = env_initial(sysfile.configuration, env_role)
    return ReplaySetup(
        mode="env",
        initial=initial,
        env_loc=env_loc,
        channels=channels,
        synth_depth=int(witness.prop.get("synth_depth", 1)),
    )


def _rebuild_check(witness: Witness, recipe: Mapping) -> ReplaySetup:
    from repro.analysis.attacks import standard_testers
    from repro.analysis.intruder import standard_attackers
    from repro.equivalence.testing import compose
    from repro.syntax.sysfile import load_system_file

    path = recipe.get("impl")
    try:
        impl = load_system_file(path)
    except (OSError, ReproError) as err:
        raise WitnessError(f"cannot rebuild implementation file {path!r}: {err}")
    attackers = dict(standard_attackers(list(impl.configuration.private)))
    attacker_name = recipe.get("attacker")
    if attacker_name not in attackers:
        raise WitnessError(f"witness names unknown attacker {attacker_name!r}")
    impl_x = impl.configuration.with_part("E", attackers[attacker_name])
    roles = tuple(recipe.get("roles") or ())
    tests = {
        test.name: test
        for test in standard_testers(
            impl_x, Name(recipe.get("observe", "observe")), roles=roles
        )
    }
    test_name = recipe.get("test")
    if test_name not in tests:
        raise WitnessError(f"witness names unknown test {test_name!r}")
    return ReplaySetup(
        mode="system", initial=compose(impl_x, tests[test_name].tester)
    )
