"""Compiling Alice&Bob protocol narrations into the calculus.

The paper presents every protocol twice: as an informal narration ::

    Message 1  B -> A : N
    Message 2  A -> B : {M, N}KAB

and as a spi-calculus process.  This module mechanizes the translation,
following the standard reading of narrations:

* a role *sends* a message by synthesizing it from what it knows (its
  initial knowledge: long-term keys and the names it freshly generates,
  plus everything it has learned from earlier messages);
* a role *receives* a message by decomposing it as far as its knowledge
  allows — decrypting with known keys, splitting pairs — binding the
  components it cannot know in advance and *checking* (with a match) the
  components it can, e.g. a nonce it generated itself.

The compiler supports the simplified spi calculus of the paper: names,
pairs and shared-key encryption.  Each compiled role is a sequential
process; the last "receive" event of a designated role can be given a
continuation — the hook Definition 4 observes.

Example::

    spec = NarrationSpec(
        roles=("A", "B"),
        channel="c",
        shared_keys={"KAB": ("A", "B")},
        fresh={"A": ("M",), "B": ("N",)},
        messages=(
            Message("B", "A", ref("N")),
            Message("A", "B", enc_msg(ref("M"), ref("N"), key="KAB")),
        ),
    )
    roles = compile_narration(spec, continuations={"B": observer("M")})
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Union

from repro.core.errors import NarrationError
from repro.core.processes import (
    Case,
    Channel,
    Input,
    Match,
    Nil,
    Output,
    Process,
    Replication,
    Restriction,
    Split,
)
from repro.core.terms import Name, Pair, SharedEnc, Term, Var, fresh_uid

# ----------------------------------------------------------------------
# Narration syntax
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Ref:
    """A reference to a declared name (key, nonce or payload)."""

    ident: str


@dataclass(frozen=True, slots=True)
class PairMsg:
    first: "MsgTerm"
    second: "MsgTerm"


@dataclass(frozen=True, slots=True)
class EncMsg:
    body: tuple["MsgTerm", ...]
    key: Ref


MsgTerm = Union[Ref, PairMsg, EncMsg]


def ref(ident: str) -> Ref:
    return Ref(ident)


def pair_msg(first: MsgTerm, second: MsgTerm) -> PairMsg:
    return PairMsg(first, second)


def enc_msg(*body: MsgTerm, key: str) -> EncMsg:
    return EncMsg(tuple(body), Ref(key))


@dataclass(frozen=True, slots=True)
class Message:
    """One narration line ``sender -> receiver : term``.

    ``channel`` overrides the narration's default channel for this one
    message (some protocols use a distinct wire per principal pair; all
    override channels must be listed in a configuration's ``private``
    set just like the default one).
    """

    sender: str
    receiver: str
    term: MsgTerm
    channel: Optional[str] = None

    def render(self, index: int) -> str:
        wire = f" [{self.channel}]" if self.channel else ""
        return (
            f"Message {index}  {self.sender} -> {self.receiver}{wire} : "
            f"{_render(self.term)}"
        )


def _render(term: MsgTerm) -> str:
    if isinstance(term, Ref):
        return term.ident
    if isinstance(term, PairMsg):
        return f"({_render(term.first)}, {_render(term.second)})"
    if isinstance(term, EncMsg):
        return "{" + ", ".join(_render(t) for t in term.body) + "}" + term.key.ident
    raise NarrationError(f"unknown narration term {term!r}")


@dataclass(frozen=True, slots=True)
class NarrationSpec:
    """A complete protocol narration.

    Attributes:
        roles: the principals, in the order their processes compose.
        channel: the public channel every message travels on.
        shared_keys: key name -> the roles knowing it initially.
        fresh: role -> names that role generates freshly (restricted in
            its process).
        public: identifiers every role (and the attacker) knows from the
            start — agent names, protocol tags, run identifiers.
        messages: the narration lines, in temporal order.
        replicate: compile each role under ``!`` (multisession).
    """

    roles: tuple[str, ...]
    channel: str
    messages: tuple[Message, ...]
    shared_keys: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    fresh: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    public: tuple[str, ...] = ()
    replicate: bool = False

    def render(self) -> str:
        return "\n".join(m.render(i) for i, m in enumerate(self.messages, start=1))

    def channels(self) -> tuple[Name, ...]:
        """All wires the narration uses (default plus per-message ones) —
        the set ``C`` a Definition-4 configuration must restrict."""
        extra = sorted({m.channel for m in self.messages if m.channel is not None})
        return (Name(self.channel),) + tuple(Name(ident) for ident in extra)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------


@dataclass
class _RoleState:
    """Per-role compilation state: what the role can currently refer to."""

    known: dict[str, Term]  # narration ident -> term usable by this role
    events: list[Callable[[Process], Process]]  # continuation builders

    def wrap(self, continuation: Process) -> Process:
        result = continuation
        for event in reversed(self.events):
            result = event(result)
        return result


def compile_narration(
    spec: NarrationSpec,
    continuations: Optional[Mapping[str, Callable[[Mapping[str, Term]], Process]]] = None,
) -> dict[str, Process]:
    """Compile a narration into one raw process per role.

    ``continuations`` maps a role to a function from the role's final
    knowledge (narration ident -> term) to its continuation process —
    typically an observer output for Definition-4 testing.
    """
    continuations = dict(continuations or {})
    unknown = set(continuations) - set(spec.roles)
    if unknown:
        raise NarrationError(f"continuations for unknown roles: {sorted(unknown)}")
    channel = Name(spec.channel)

    states: dict[str, _RoleState] = {}
    for role in spec.roles:
        known: dict[str, Term] = {}
        for ident in spec.public:
            known[ident] = Name(ident)
        for key, holders in spec.shared_keys.items():
            if role in holders:
                known[key] = Name(key)
        for name in spec.fresh.get(role, ()):
            known[name] = Name(name)
        states[role] = _RoleState(known=known, events=[])

    for index, message in enumerate(spec.messages, start=1):
        if message.sender not in states or message.receiver not in states:
            raise NarrationError(
                f"message {index} mentions undeclared roles: {message.render(index)}"
            )
        wire = channel if message.channel is None else Name(message.channel)
        _compile_send(states[message.sender], message, index, wire)
        _compile_receive(states[message.receiver], message, index, wire)

    result: dict[str, Process] = {}
    for role in spec.roles:
        state = states[role]
        tail: Process = Nil()
        if role in continuations:
            tail = continuations[role](dict(state.known))
        proc = state.wrap(tail)
        for name in reversed(spec.fresh.get(role, ())):
            proc = Restriction(Name(name), proc)
        if spec.replicate:
            proc = Replication(proc)
        result[role] = proc
    return result


def _synthesize(state: _RoleState, term: MsgTerm, index: int) -> Term:
    """Build the concrete term a sender outputs.

    A composite the role heard wholesale (e.g. a ciphertext it cannot
    open) is forwarded as-is; otherwise the term is built from parts.
    """
    if not isinstance(term, Ref) and _render(term) in state.known:
        return state.known[_render(term)]
    if isinstance(term, Ref):
        if term.ident not in state.known:
            raise NarrationError(
                f"message {index}: sender does not know {term.ident!r}"
            )
        return state.known[term.ident]
    if isinstance(term, PairMsg):
        return Pair(
            _synthesize(state, term.first, index),
            _synthesize(state, term.second, index),
        )
    if isinstance(term, EncMsg):
        key = _synthesize(state, term.key, index)
        return SharedEnc(
            tuple(_synthesize(state, part, index) for part in term.body), key
        )
    raise NarrationError(f"unknown narration term {term!r}")


def _compile_send(
    state: _RoleState, message: Message, index: int, channel: Name
) -> None:
    value = _synthesize(state, message.term, index)

    def event(continuation: Process, _value: Term = value) -> Process:
        return Output(Channel(channel), _value, continuation)

    state.events.append(event)


def _compile_receive(
    state: _RoleState, message: Message, index: int, channel: Name
) -> None:
    binder = Var(f"m{index}", fresh_uid())

    def event(continuation: Process, _binder: Var = binder) -> Process:
        return Input(Channel(channel), _binder, continuation)

    state.events.append(event)
    _decompose(state, message.term, binder, index)


def _decompose(state: _RoleState, pattern: MsgTerm, value: Term, index: int) -> None:
    """Destructure a received value according to the narration pattern.

    Components the role already knows become runtime checks (matches);
    unknown components become knowledge.  Encrypted parts whose key the
    role does not know stay opaque (bound as a whole, usable only for
    forwarding) — the standard narration semantics.
    """
    if isinstance(pattern, Ref):
        if pattern.ident in state.known:
            expected = state.known[pattern.ident]

            def check(continuation: Process, _v: Term = value, _e: Term = expected) -> Process:
                return Match(_v, _e, continuation)

            state.events.append(check)
        else:
            state.known[pattern.ident] = value
        return
    if isinstance(pattern, PairMsg):
        first = Var(f"p{index}a", fresh_uid())
        second = Var(f"p{index}b", fresh_uid())

        def split(
            continuation: Process, _v: Term = value, _f: Var = first, _s: Var = second
        ) -> Process:
            return Split(_v, _f, _s, continuation)

        state.events.append(split)
        _decompose(state, pattern.first, first, index)
        _decompose(state, pattern.second, second, index)
        return
    if isinstance(pattern, EncMsg):
        if pattern.key.ident not in state.known:
            # Opaque ciphertext: remember it wholesale so it can at least
            # be compared or forwarded under its narration rendering.
            state.known[_render(pattern)] = value
            return
        key = state.known[pattern.key.ident]
        binders = tuple(Var(f"d{index}_{i}", fresh_uid()) for i in range(len(pattern.body)))

        def open_case(
            continuation: Process,
            _v: Term = value,
            _b: tuple[Var, ...] = binders,
            _k: Term = key,
        ) -> Process:
            return Case(_v, _b, _k, continuation)

        state.events.append(open_case)
        for part, bound in zip(pattern.body, binders):
            _decompose(state, part, bound, index)
        return
    raise NarrationError(f"unknown narration term {pattern!r}")
