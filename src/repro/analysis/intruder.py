"""Attackers over the protocol channels (the set ``E_C`` of Definition 4).

Definition 4 quantifies over *every* process that communicates only on
the protocol channels ``C``.  That set is not enumerable, so the library
substitutes two finite sources of attackers (documented in DESIGN.md):

* **canned attackers** — the standard manipulations every protocol
  analysis exercises (eavesdrop, intercept, forward, replay, impersonate,
  reorder), including the two concrete attackers the paper uses in its
  counterexamples;
* **bounded enumeration** (:func:`enumerate_attackers`) — all sequential
  behaviours of at most ``max_actions`` I/O actions whose outputs are
  Dolev-Yao synthesizable from what the attacker has heard plus a stock
  of fresh names.

The enumeration is the classic "most general attacker, bounded" recipe:
it cannot *prove* Definition 4, but every positive verdict is backed by
the simulation technique of Propositions 2/4 as well, and every negative
verdict comes with a concrete witness attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.processes import (
    Channel,
    Input,
    Nil,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
)
from repro.core.terms import Name, Pair, SharedEnc, Term, Var, fresh_uid

# ----------------------------------------------------------------------
# Canned attackers
# ----------------------------------------------------------------------


def idle() -> Process:
    """The empty environment — every protocol must at least survive it."""
    return Nil()


def eavesdropper(channel: Name, messages: int = 1) -> Process:
    """Absorb ``messages`` messages and stop (a message-killing sink)."""
    proc: Process = Nil()
    for _ in range(messages):
        proc = Input(Channel(channel), Var("e", fresh_uid()), proc)
    return proc


def forwarder(channel: Name, times: int = 1) -> Process:
    """Intercept one message and re-send it ``times`` times.

    With ``times=2`` this is exactly the replay attacker of Section 5.2:
    ``E = c(x). c<x>. c<x>`` — it intercepts ``{M}KAB`` and delivers it
    to two different responder instances.
    """
    x = Var("x", fresh_uid())
    proc: Process = Nil()
    for _ in range(times):
        proc = Output(Channel(channel), x, proc)
    return Input(Channel(channel), x, proc)


def replayer(channel: Name) -> Process:
    """The paper's replay attacker: intercept once, deliver twice."""
    return forwarder(channel, times=2)


def impersonator(channel: Name, spoofed: str = "ME") -> Process:
    """Send one fresh message, pretending to be a legitimate sender.

    This is the Section 5.1 attacker ``E = (nu ME) c<ME>`` behind the
    attack ``Message 1  E(A) -> B : ME``.
    """
    me = Name(spoofed)
    return Restriction(me, Output(Channel(channel), me, Nil()))


def injector(channel: Name, message: Term) -> Process:
    """Send a chosen message once."""
    return Output(Channel(channel), message, Nil())


def relay(source: Name, target: Name) -> Process:
    """Move one message from one channel to another."""
    x = Var("x", fresh_uid())
    return Input(Channel(source), x, Output(Channel(target), x, Nil()))


def persistent_forwarder(channel: Name) -> Process:
    """``!c(x).c<x>`` — an unbounded store-and-forward medium."""
    x = Var("x", fresh_uid())
    return Replication(Input(Channel(channel), x, Output(Channel(channel), x, Nil())))


def standard_attackers(channels: Sequence[Name]) -> list[tuple[str, Process]]:
    """The canned attacker suite for a set of protocol channels."""
    attackers: list[tuple[str, Process]] = [("idle", idle())]
    for ch in channels:
        tag = ch.base
        attackers.extend(
            [
                (f"eavesdrop({tag})", eavesdropper(ch)),
                (f"intercept2({tag})", eavesdropper(ch, messages=2)),
                (f"forward({tag})", forwarder(ch)),
                (f"replay({tag})", replayer(ch)),
                (f"impersonate({tag})", impersonator(ch)),
            ]
        )
    for src in channels:
        for dst in channels:
            if src != dst:
                attackers.append((f"relay({src.base}->{dst.base})", relay(src, dst)))
    return attackers


# ----------------------------------------------------------------------
# Bounded most-general attacker enumeration
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AttackerBudget:
    """Bounds for :func:`enumerate_attackers`.

    Attributes:
        max_actions: length of the attacker's action sequence.
        synth_depth: how many pair/encryption constructors an output may
            stack on top of heard values and fresh names.
        fresh_names: how many private names the attacker may invent.
    """

    max_actions: int = 3
    synth_depth: int = 1
    fresh_names: int = 1


def _compositions(parts: list[Term], depth: int) -> list[Term]:
    """Close ``parts`` under pairing/encryption up to ``depth`` levels."""
    known: list[Term] = list(parts)
    seen: set[Term] = set(known)
    frontier = list(known)
    for _ in range(depth):
        fresh: list[Term] = []
        for left in frontier:
            for right in known:
                for candidate in (Pair(left, right), SharedEnc((left,), right)):
                    if candidate not in seen:
                        seen.add(candidate)
                        fresh.append(candidate)
        known.extend(fresh)
        frontier = fresh
    return known


def enumerate_attackers(
    channels: Sequence[Name],
    budget: AttackerBudget = AttackerBudget(),
) -> Iterator[tuple[str, Process]]:
    """All sequential attackers within the budget, smallest first.

    Each attacker is a sequence of inputs (hearing a message binds a
    variable) and outputs (sending any term synthesizable from heard
    variables and its stock of fresh names).  Every generated process is
    in ``E_C``: it only ever touches the given channels.
    """
    stock = [Name(f"E{i}", fresh_uid(), creator=None) for i in range(budget.fresh_names)]

    def go(
        actions_left: int, heard: tuple[Var, ...], label: str
    ) -> Iterator[tuple[str, Process]]:
        yield (label or "idle", Nil())
        if actions_left == 0:
            return
        for ch in channels:
            x = Var("x", fresh_uid())
            for sub_label, sub in go(actions_left - 1, heard + (x,), f"{label}.{ch.base}?"):
                yield (sub_label, Input(Channel(ch), x, sub))
            payloads = _compositions(list(heard) + list(stock), budget.synth_depth)
            for i, message in enumerate(payloads):
                for sub_label, sub in go(actions_left - 1, heard, f"{label}.{ch.base}!{i}"):
                    yield (sub_label, Output(Channel(ch), message, sub))

    for label, proc in go(budget.max_actions, (), ""):
        if isinstance(proc, Nil):
            continue  # covered by the canned idle attacker
        # Fresh names the attacker actually uses must be restricted so it
        # stays a closed process.
        used = [n for n in stock if n in _names_in(proc)]
        for name in reversed(used):
            proc = Restriction(Name(name.base), _unbind(proc, name))
        yield (label, proc)


def _names_in(proc: Process) -> frozenset[Name]:
    from repro.core.processes import free_names

    return free_names(proc)


def _unbind(proc: Process, name: Name) -> Process:
    """Replace an instantiated stock name by its raw restriction name."""
    from repro.core.substitution import rename_names

    return rename_names(proc, {name: Name(name.base)})
