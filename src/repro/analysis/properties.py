"""The paper's named trace properties: Authentication and Freshness.

After Proposition 3 the paper displays two properties that hold for the
multisession abstract protocol (and all similarly-shaped ones):

  **Authentication**: when the continuation of an instance of
  ``B0(theta*theta' N)`` is activated, ``theta*theta'`` must be the
  relative address of an instance of A with respect to the actual
  instance of B.

  **Freshness**: for every pair of activated continuations
  ``B0(theta*theta' N)`` and ``B0(theta~*theta~' N')``, the two
  messages have been originated by two *different* instances of A.

This module checks both over the explored state space of a
configuration.  "Continuation activated with value V" is observed as a
delivery on the observation channel: the canonical ``B0(z) =
observe<z>`` republishes exactly the datum the session accepted, with
its origin intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.addresses import Location, RelativeAddress, is_prefix
from repro.core.terms import Name, origin
from repro.equivalence.testing import Configuration, compose
from repro.runtime.deadline import RunControl
from repro.runtime.exhaustion import Exhaustion
from repro.semantics.lts import Budget, DEFAULT_BUDGET, explore

if TYPE_CHECKING:
    from repro.analysis.witness import Witness


@dataclass(frozen=True, slots=True)
class Activation:
    """One observed continuation activation: who got what from where."""

    receiver: Location  # the B-instance whose continuation ran
    creator: Optional[Location]  # origin of the accepted datum
    address: Optional[RelativeAddress]  # creator as B sees it

    def describe(self) -> str:
        from repro.core.addresses import location_str

        addr = "unlocalized" if self.address is None else self.address.render()
        return f"B at {location_str(self.receiver)} accepted a datum from {addr}"


@dataclass(frozen=True, slots=True)
class PropertyVerdict:
    """Outcome of an authentication/freshness check.

    ``holds`` is qualified by ``exhaustive`` exactly like every other
    bounded verdict in the library; ``violation`` names the offending
    activation (pair).
    """

    holds: bool
    exhaustive: bool
    activations: int
    violation: Optional[str] = None
    exhaustion: Optional[Exhaustion] = None
    witness: Optional["Witness"] = None

    def describe(self) -> str:
        if self.holds:
            if self.exhaustive:
                qualifier = ""
            elif self.exhaustion is not None:
                qualifier = (
                    f" (within the exploration budget: "
                    f"{'+'.join(self.exhaustion.reasons)})"
                )
            else:
                qualifier = " (within the exploration budget)"
            return f"holds over {self.activations} activations{qualifier}"
        return f"VIOLATED: {self.violation}"


def _collect_activations(
    config: Configuration,
    observe: Name,
    budget: Budget,
    control: Optional[RunControl] = None,
) -> tuple[list[Activation], Optional[Exhaustion]]:
    """Every distinct continuation activation in the reachable space.

    An activation is a *pending* output on the observation channel: the
    continuation ``B0(z) = observe<z>`` offers the accepted datum as
    soon as it runs, whether or not anything consumes it.
    """
    from repro.core.errors import TermError
    from repro.core.terms import localize
    from repro.semantics.transitions import pending_actions

    system = compose(config)
    graph = explore(system, budget, control)
    activations: list[Activation] = []
    seen: set[tuple] = set()
    for state in graph.states.values():
        for action in pending_actions(state):
            if not action.is_output or action.channel_subject.base != observe.base:
                continue
            try:
                value = localize(action.payload, action.act_loc)
            except TermError:
                continue
            creator = origin(value)
            fingerprint = (action.act_loc, creator)
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            address = (
                None
                if creator is None
                else RelativeAddress.between(observer=action.act_loc, target=creator)
            )
            activations.append(
                Activation(receiver=action.act_loc, creator=creator, address=address)
            )
    return activations, graph.exhaustion


def authentication(
    config: Configuration,
    sender_role: str,
    observe: Name = Name("observe"),
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> PropertyVerdict:
    """The paper's Authentication property.

    Every activated continuation must have accepted a datum whose
    creator is an instance of ``sender_role`` (by location prefix).
    """
    system = compose(config)
    sender_loc = system.location_of(sender_role)
    activations, exhaustion = _collect_activations(config, observe, budget, control)
    for activation in activations:
        if activation.creator is None or not is_prefix(sender_loc, activation.creator):
            from repro.analysis.witness import authentication_witness

            return PropertyVerdict(
                holds=False,
                exhaustive=exhaustion is None,
                activations=len(activations),
                violation=activation.describe(),
                exhaustion=exhaustion,
                witness=authentication_witness(
                    system, sender_role, observe.base, budget
                ),
            )
    return PropertyVerdict(
        holds=True,
        exhaustive=exhaustion is None,
        activations=len(activations),
        exhaustion=exhaustion,
    )


def freshness(
    config: Configuration,
    observe: Name = Name("observe"),
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> PropertyVerdict:
    """The paper's Freshness property.

    No two *distinct* continuation activations of one run may have
    accepted data originated by the same creator instance — accepting
    the same origin twice is exactly what a replay looks like.

    "Of one run" matters: exploration sees all nondeterministic
    branches, and the same creator may legitimately serve different
    partners in different branches.  A replay, by contrast, leaves two
    co-existing activations in a *single* reachable state — which is how
    the paper's attack on Pm2 manifests (two B-instances simultaneously
    holding one ``{M}KAB``).
    """
    from repro.core.errors import TermError
    from repro.core.terms import localize
    from repro.semantics.transitions import pending_actions

    system = compose(config)
    graph = explore(system, budget, control)
    total = 0
    for state in graph.states.values():
        per_creator: dict[Location, Location] = {}
        for action in pending_actions(state):
            if not action.is_output or action.channel_subject.base != observe.base:
                continue
            try:
                value = localize(action.payload, action.act_loc)
            except TermError:
                continue
            creator = origin(value)
            if creator is None:
                continue
            total += 1
            previous = per_creator.get(creator)
            if previous is not None and previous != action.act_loc:
                from repro.analysis.witness import freshness_witness
                from repro.core.addresses import location_str

                return PropertyVerdict(
                    holds=False,
                    exhaustive=not graph.truncated,
                    activations=total,
                    violation=(
                        f"receivers {location_str(previous)} and "
                        f"{location_str(action.act_loc)} both accepted a datum "
                        f"created at {location_str(creator)} in one run"
                    ),
                    exhaustion=graph.exhaustion,
                    witness=freshness_witness(system, observe.base, budget),
                )
            per_creator[creator] = action.act_loc
    return PropertyVerdict(
        holds=True,
        exhaustive=not graph.truncated,
        activations=total,
        exhaustion=graph.exhaustion,
    )
