"""One-call protocol audit: the whole battery, one report.

:func:`audit` runs every analysis the library offers over a single
configuration — and, when a specification is supplied, the Definition-4
check against it — returning a structured :class:`AuditReport` that
renders as a human-readable summary.  This is the "just tell me what's
wrong with my protocol" entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.attacks import ImplementationVerdict, securely_implements
from repro.analysis.environment import (
    EnvVerdict,
    env_authentication,
    env_freshness,
    env_secrecy,
)
from repro.analysis.intruder import standard_attackers
from repro.core.terms import Name
from repro.equivalence.barbs import converges
from repro.equivalence.testing import Configuration, compose
from repro.semantics.actions import output_barb
from repro.semantics.lts import Budget, DEFAULT_BUDGET


@dataclass(frozen=True, slots=True)
class AuditReport:
    """Everything the audit found.

    ``passed`` summarizes: honest delivery works, every requested
    property holds, and (when checked) the implementation is secure.
    Individual verdicts carry their own budget qualifiers.
    """

    delivers: bool
    delivery_exhaustive: bool
    authentication: Optional[EnvVerdict]
    freshness: EnvVerdict
    secrecy: tuple[tuple[str, EnvVerdict], ...]
    implementation: Optional[ImplementationVerdict]

    @property
    def passed(self) -> bool:
        checks = [self.delivers, self.freshness.holds]
        if self.authentication is not None:
            checks.append(self.authentication.holds)
        checks.extend(verdict.holds for _, verdict in self.secrecy)
        if self.implementation is not None:
            checks.append(self.implementation.secure)
        return all(checks)

    def describe(self) -> str:
        lines = [f"audit: {'PASS' if self.passed else 'FAIL'}"]
        lines.append(
            f"  delivery      : {'reachable' if self.delivers else 'UNREACHABLE'}"
        )
        if self.authentication is not None:
            lines.append(f"  authentication: {self.authentication.describe()}")
        lines.append(f"  freshness     : {self.freshness.describe()}")
        for secret, verdict in self.secrecy:
            lines.append(f"  secrecy({secret}): {verdict.describe()}")
        if self.implementation is not None:
            lines.append(f"  Definition 4  : {self.implementation.describe()}")
        return "\n".join(lines)


def audit(
    config: Configuration,
    sender_role: Optional[str] = None,
    secrets: Sequence[str] = (),
    spec: Optional[Configuration] = None,
    observe: str = "observe",
    budget: Budget = DEFAULT_BUDGET,
    synth_depth: int = 1,
) -> AuditReport:
    """Audit a protocol configuration.

    Args:
        config: the protocol (principals + private channels), without an
            attacker part.
        sender_role: when given, check message authentication — every
            delivered datum must originate at this role.
        secrets: base spellings of names that must stay underivable by
            the most-general attacker.
        spec: when given, also run the Definition-4 check (``config``
            securely implements ``spec``) over the standard attacker
            suite.
        observe: the observation channel of the continuations.
        budget: exploration budget shared by all the checks.
        synth_depth: message-synthesis bound of the most-general
            attacker.
    """
    delivers, delivery_exhaustive = converges(
        compose(config), output_barb(Name(observe)), budget
    )
    authentication = (
        env_authentication(
            config, sender_role, observe=observe, synth_depth=synth_depth, budget=budget
        )
        if sender_role is not None
        else None
    )
    freshness = env_freshness(
        config, observe=observe, synth_depth=synth_depth, budget=budget
    )
    secrecy = tuple(
        (secret, env_secrecy(config, secret, synth_depth=synth_depth, budget=budget))
        for secret in secrets
    )
    implementation = None
    if spec is not None:
        implementation = securely_implements(
            config,
            spec,
            standard_attackers(list(config.private)),
            observe=Name(observe),
            roles=(
                tuple(label for _, _, label in config.subroles) or config.labels()
            )
            + ("E",),
            budget=budget,
        )
    return AuditReport(
        delivers=delivers,
        delivery_exhaustive=delivery_exhaustive,
        authentication=authentication,
        freshness=freshness,
        secrecy=secrecy,
        implementation=implementation,
    )
