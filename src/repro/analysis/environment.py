"""The knowledge-indexed most-general attacker.

:mod:`repro.analysis.intruder` approximates Definition 4's "for all X in
E_C" by enumerating attacker *processes*.  This module implements the
stronger, standard alternative: an *environment-sensitive semantics*
whose states pair the protocol with the attacker's Dolev-Yao knowledge.
The environment is not a fixed process — at every point it may

* **hear** any output the localization discipline lets it receive
  (extending its knowledge with the message), or
* **say** any message it can synthesize, to any input that admits it.

One exploration of this system covers *every* attacker whose outputs
stay within the synthesis bound — including all the enumerated ones —
so a property that holds on the environment graph holds against the
whole family at once.

Partner authentication interacts with the environment exactly as with
process attackers: the environment owns a *location* (a designated part
of the configuration, conventionally the ``E`` role), so a channel
localized to an honest partner simply never talks to it, and messages
it invents are localized at its location — which is what the
origin-sensitive properties then detect.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.analysis.knowledge import Knowledge, synthesizable
from repro.obs.metrics import current_metrics
from repro.obs.trace import trace_span
from repro.core.addresses import Location, is_prefix
from repro.core.errors import TermError
from repro.core.processes import replace_leaves
from repro.core.substitution import instantiate_locvar, subst
from repro.core.terms import Name, Term, localize
from repro.equivalence.testing import Configuration, compose
from repro.runtime.deadline import RunControl, resolve_control
from repro.runtime.exhaustion import (
    CANCELLED,
    DEPTH,
    FAULT,
    STATES,
    Exhaustion,
)
from repro.runtime.faults import FaultError
from repro.semantics import canonical, reduction
from repro.semantics.actions import Comm, PendingAction, Transition
from repro.semantics.lts import Budget, DEFAULT_BUDGET
from repro.semantics.normalize import normalize
from repro.semantics.system import System
from repro.semantics.transitions import _admits, pending_actions
from repro.core.processes import LocVar

if TYPE_CHECKING:
    from repro.analysis.witness import Witness


@dataclass(frozen=True, slots=True)
class EnvState:
    """A protocol state paired with the attacker's knowledge."""

    system: System
    knowledge: Knowledge

    def key(self) -> tuple[str, frozenset]:
        return (self.system.canonical_key(), self.knowledge.atoms)


@dataclass(frozen=True, slots=True)
class EnvStep:
    """One step of the environment-sensitive semantics.

    ``kind`` is ``"tau"`` (honest internal), ``"hear"`` (the environment
    consumed an output) or ``"say"`` (the environment fed an input).
    """

    kind: str
    action: Comm
    target: "EnvState"

    def describe(self, source: EnvState) -> str:
        base = Transition(self.action, self.target.system).describe(source.system)
        return f"[{self.kind}] {base}"


def _consume_output(
    system: System, out: PendingAction, env_loc: Location
) -> System:
    """The environment hears ``out``: the sender's prefix fires."""
    continuation = out.continuation
    if isinstance(out.index, LocVar):
        continuation = instantiate_locvar(continuation, out.index, env_loc)
    new_root = replace_leaves(system.root, {out.leaf_loc: out.wrap(continuation)})
    return system.with_root(normalize(new_root), out.new_private)


def _feed_input(
    system: System, inp: PendingAction, value: Term, env_loc: Location
) -> System:
    """The environment says ``value`` to the input ``inp``."""
    continuation = subst(inp.continuation, {inp.binder: value})
    if isinstance(inp.index, LocVar):
        continuation = instantiate_locvar(continuation, inp.index, env_loc)
    new_root = replace_leaves(system.root, {inp.leaf_loc: inp.wrap(continuation)})
    return system.with_root(normalize(new_root), inp.new_private)


def env_successors(
    state: EnvState,
    env_loc: Location,
    channels: frozenset[str],
    synth_depth: int = 1,
    tau_visited: Optional[Callable[[Transition], bool]] = None,
) -> Iterator[EnvStep]:
    """Every step of the environment-sensitive semantics.

    ``channels`` restricts the environment to the protocol wires (the
    set ``C`` of Definition 4, by base spelling); honest internal steps
    are not restricted.

    ``tau_visited`` (supplied by :func:`env_explore`) enables
    partial-order reduction of the honest internal steps: it is the
    cycle proviso over *environment* states.  Invisibility here is
    stricter than in the plain semantics — a restricted channel the
    attacker can derive is one it can hear or say on, so such channels
    never seed an ample set (the ``externally_visible`` veto below).
    Hear/say steps and knowledge are untouched by the reduction: a
    deferred independent transition neither changes the attacker's
    knowledge nor removes a pending action at another leaf.
    """

    def externally_visible(info) -> bool:
        ch = info.channel
        return ch.base in channels and (
            ch.uid is None or state.knowledge.can_derive(ch)
        )

    # Honest internal steps (the environment idles).
    steps = reduction.reduced_successors(
        state.system,
        is_visited=tau_visited,
        externally_visible=externally_visible,
    )
    for step in steps:
        yield EnvStep("tau", step.action, EnvState(step.target, state.knowledge))

    actions = [
        act
        for act in pending_actions(state.system)
        if not is_prefix(env_loc, act.act_loc)
    ]

    # The environment hears an admissible output.
    for out in actions:
        if not out.is_output or out.channel_subject.base not in channels:
            continue
        if out.channel_subject.uid is not None and not state.knowledge.can_derive(
            out.channel_subject
        ):
            continue  # a channel the environment does not know
        if not _admits(out.index, out.act_loc, env_loc):
            continue
        try:
            value = localize(out.payload, out.act_loc)
        except TermError:
            continue
        action = Comm(out.channel_subject, value, sender=out.act_loc, receiver=env_loc)
        target = EnvState(
            _consume_output(state.system, out, env_loc),
            state.knowledge.adding(value),
        )
        yield EnvStep("hear", action, target)

    # The environment says something synthesizable.
    for inp in actions:
        if inp.is_output or inp.channel_subject.base not in channels:
            continue
        if inp.channel_subject.uid is not None and not state.knowledge.can_derive(
            inp.channel_subject
        ):
            continue
        if not _admits(inp.index, inp.act_loc, env_loc):
            continue
        for message in synthesizable(state.knowledge, synth_depth):
            value = localize(message, env_loc)
            action = Comm(
                inp.channel_subject, value, sender=env_loc, receiver=inp.act_loc
            )
            target = EnvState(
                _feed_input(state.system, inp, value, env_loc), state.knowledge
            )
            yield EnvStep("say", action, target)


def env_initial(
    config: Configuration,
    env_role: str = "E",
    initial_knowledge: tuple[Term, ...] = (),
) -> tuple[EnvState, Location, frozenset[str]]:
    """The starting point of the environment-sensitive semantics.

    Returns the initial :class:`EnvState`, the environment's location,
    and the wire set ``C`` (by base spelling) — everything
    :func:`env_successors` needs.  Shared by :func:`env_explore` and the
    independent witness replayer, which must agree on the initial
    system.
    """
    from repro.core.processes import Nil

    cfg = config
    if env_role not in config.labels():
        cfg = config.with_part(env_role, Nil())
    system = compose(cfg)
    env_loc = system.location_of(env_role)
    channels = frozenset(name.base for name in cfg.private) | {
        name.base for name in initial_knowledge if isinstance(name, Name)
    }
    # The attacker of Definition 4 lives inside the (nu C) scope, so it
    # knows the *instantiated* channel names, not just their spellings.
    channel_instances = tuple(
        name for name in system.private if name.base in channels
    )
    knowledge = Knowledge.from_terms(tuple(initial_knowledge) + channel_instances)
    return EnvState(system, knowledge), env_loc, channels


@dataclass
class EnvGraph:
    """Explored fragment of the environment-sensitive state space."""

    initial: tuple
    states: dict[tuple, EnvState] = field(default_factory=dict)
    edges: dict[tuple, list[tuple[EnvStep, tuple]]] = field(default_factory=dict)
    exhaustion: Optional[Exhaustion] = None

    @property
    def truncated(self) -> bool:
        """Backward-compatible boolean view of :attr:`exhaustion`."""
        return self.exhaustion is not None

    def state_count(self) -> int:
        return len(self.states)


def env_explore(
    config: Configuration,
    env_role: str = "E",
    initial_knowledge: tuple[Term, ...] = (),
    synth_depth: int = 1,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> EnvGraph:
    """Explore a configuration against the most-general attacker.

    The configuration must contain a part for ``env_role`` (use
    ``Nil()`` — it is only there to give the environment a location in
    the tree).  ``initial_knowledge`` seeds the attacker (free protocol
    channels are always known).

    Like :func:`repro.semantics.lts.explore` this is cooperative: a
    deadline or cancellation (explicit ``control`` or the ambient
    :func:`~repro.runtime.deadline.governed` one) stops the exploration
    between state expansions, and injected faults skip the failing state
    — both leave a partial graph with a structured :attr:`EnvGraph.exhaustion`.
    """
    ctl = resolve_control(control)
    initial, env_loc, channels = env_initial(config, env_role, initial_knowledge)

    graph = EnvGraph(initial=initial.key())
    graph.states[initial.key()] = initial
    queue: deque[tuple[EnvState, int]] = deque([(initial, 0)])
    reasons: list[str] = []
    detail: Optional[str] = None
    kinds = {"tau": 0, "hear": 0, "say": 0}
    dedup_hits = 0
    max_queue = 0
    started = time.monotonic()
    cache_before = canonical.metrics_snapshot()
    reduction_before = reduction.metrics_snapshot()

    def tau_visited(step: Transition, knowledge=None) -> bool:
        return (step.target.canonical_key(), knowledge) in graph.states

    def note(reason: str, message: Optional[str] = None) -> None:
        nonlocal detail
        if reason not in reasons:
            reasons.append(reason)
        if message and detail is None:
            detail = message

    deepest = 0
    try:
        with trace_span("env.explore", max_states=budget.max_states,
                        max_depth=budget.max_depth):
            while queue:
                if len(queue) > max_queue:
                    max_queue = len(queue)
                stop = ctl.interruption()
                if stop is not None:
                    note(stop)
                    break
                state, depth = queue.popleft()
                key = state.key()
                deepest = max(deepest, depth)
                if depth >= budget.max_depth:
                    note(DEPTH)
                    continue
                out: list[tuple[EnvStep, tuple]] = []
                try:
                    steps = env_successors(
                        state,
                        env_loc,
                        channels,
                        synth_depth,
                        tau_visited=lambda step, k=state.knowledge.atoms: tau_visited(
                            step, k
                        ),
                    )
                    for step in steps:
                        target_key = step.target.key()
                        if target_key not in graph.states:
                            if len(graph.states) >= budget.max_states:
                                note(STATES)
                                continue
                            graph.states[target_key] = step.target
                            queue.append((step.target, depth + 1))
                        else:
                            dedup_hits += 1
                        kinds[step.kind] += 1
                        out.append((step, target_key))
                except FaultError as exc:
                    note(FAULT, str(exc))
                    continue
                graph.edges[key] = out
    except KeyboardInterrupt:
        note(CANCELLED, "keyboard interrupt")
    if reasons:
        graph.exhaustion = Exhaustion(
            tuple(reasons),
            states=len(graph.states),
            depth=deepest,
            detail=detail,
        )
    metrics = current_metrics()
    if metrics is not None:
        metrics.inc("env.runs")
        metrics.inc("env.states", len(graph.states))
        metrics.inc("env.transitions", sum(kinds.values()))
        metrics.inc("env.tau", kinds["tau"])
        metrics.inc("env.hear", kinds["hear"])
        metrics.inc("env.say", kinds["say"])
        metrics.inc("env.dedup_hits", dedup_hits)
        metrics.set_gauge("env.queue_depth", max_queue)
        metrics.observe("env.seconds", time.monotonic() - started)
        canonical.publish_cache_metrics(metrics, cache_before)
        reduction.publish_reduction_metrics(metrics, reduction_before)
    return graph


# ----------------------------------------------------------------------
# Properties over the environment graph
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class EnvVerdict:
    """Outcome of a most-general-attacker check."""

    holds: bool
    exhaustive: bool
    states: int
    violation: Optional[str] = None
    exhaustion: Optional[Exhaustion] = None
    witness: Optional["Witness"] = None

    def describe(self) -> str:
        if self.holds:
            if self.exhaustive:
                qualifier = ""
            elif self.exhaustion is not None:
                qualifier = f" (within budget: {'+'.join(self.exhaustion.reasons)})"
            else:
                qualifier = " (within budget)"
            return f"holds against the most-general attacker over {self.states} states{qualifier}"
        return f"VIOLATED: {self.violation}"


def env_secrecy(
    config: Configuration,
    secret_base: str,
    env_role: str = "E",
    synth_depth: int = 1,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> EnvVerdict:
    """Can the most-general attacker ever derive a secret?"""
    graph = env_explore(
        config, env_role, synth_depth=synth_depth, budget=budget, control=control
    )
    for state in graph.states.values():
        for name in state.system.private:
            if name.base == secret_base and state.knowledge.can_derive(name):
                from repro.analysis.witness import env_witness

                return EnvVerdict(
                    holds=False,
                    exhaustive=not graph.truncated,
                    states=graph.state_count(),
                    violation=f"the attacker derives {name.render()}",
                    exhaustion=graph.exhaustion,
                    witness=env_witness(
                        config,
                        kind="env-secrecy",
                        goal=lambda st: any(
                            n.base == secret_base and st.knowledge.can_derive(n)
                            for n in st.system.private
                        ),
                        prop={
                            "secret": secret_base,
                            "env": env_role,
                            "synth_depth": synth_depth,
                        },
                        env_role=env_role,
                        synth_depth=synth_depth,
                        budget=budget,
                    ),
                )
    return EnvVerdict(
        holds=True,
        exhaustive=not graph.truncated,
        states=graph.state_count(),
        exhaustion=graph.exhaustion,
    )


def env_freshness(
    config: Configuration,
    observe: str = "observe",
    env_role: str = "E",
    synth_depth: int = 1,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> EnvVerdict:
    """Can the most-general attacker make two continuation instances
    accept data from the same creator (a replay), in any single run?"""
    from repro.core.terms import origin

    graph = env_explore(
        config, env_role, synth_depth=synth_depth, budget=budget, control=control
    )
    for state in graph.states.values():
        per_creator: dict[Location, Location] = {}
        for act in pending_actions(state.system):
            if not act.is_output or act.channel_subject.base != observe:
                continue
            try:
                value = localize(act.payload, act.act_loc)
            except TermError:
                continue
            creator = origin(value)
            if creator is None:
                continue
            previous = per_creator.get(creator)
            if previous is not None and previous != act.act_loc:
                from repro.analysis.witness import env_witness, freshness_violation

                return EnvVerdict(
                    holds=False,
                    exhaustive=not graph.truncated,
                    states=graph.state_count(),
                    violation=(
                        "two continuation instances accepted data from one "
                        "creator in a single run"
                    ),
                    exhaustion=graph.exhaustion,
                    witness=env_witness(
                        config,
                        kind="env-freshness",
                        goal=lambda st: freshness_violation(st.system, observe),
                        prop={
                            "observe": observe,
                            "env": env_role,
                            "synth_depth": synth_depth,
                        },
                        env_role=env_role,
                        synth_depth=synth_depth,
                        budget=budget,
                    ),
                )
            per_creator[creator] = act.act_loc
    return EnvVerdict(
        holds=True,
        exhaustive=not graph.truncated,
        states=graph.state_count(),
        exhaustion=graph.exhaustion,
    )


def env_authentication(
    config: Configuration,
    sender_role: str,
    observe: str = "observe",
    env_role: str = "E",
    synth_depth: int = 1,
    budget: Budget = DEFAULT_BUDGET,
    control: Optional[RunControl] = None,
) -> EnvVerdict:
    """Does every activated continuation hold a datum created by
    ``sender_role``, whatever the most-general attacker does?"""
    from repro.core.terms import origin

    graph = env_explore(
        config, env_role, synth_depth=synth_depth, budget=budget, control=control
    )
    sample = next(iter(graph.states.values()))
    sender_loc = sample.system.location_of(sender_role)
    for state in graph.states.values():
        for act in pending_actions(state.system):
            if not act.is_output or act.channel_subject.base != observe:
                continue
            try:
                value = localize(act.payload, act.act_loc)
            except TermError:
                continue
            creator = origin(value)
            if creator is None or not is_prefix(sender_loc, creator):
                from repro.analysis.witness import (
                    authentication_violation,
                    env_witness,
                )
                from repro.syntax.pretty import render_term

                return EnvVerdict(
                    holds=False,
                    exhaustive=not graph.truncated,
                    states=graph.state_count(),
                    violation=(
                        f"a continuation accepted {render_term(value)} "
                        f"not created by {sender_role}"
                    ),
                    exhaustion=graph.exhaustion,
                    witness=env_witness(
                        config,
                        kind="env-authentication",
                        goal=lambda st: authentication_violation(
                            st.system, sender_loc, observe
                        ),
                        prop={
                            "sender": sender_role,
                            "observe": observe,
                            "env": env_role,
                            "synth_depth": synth_depth,
                        },
                        env_role=env_role,
                        synth_depth=synth_depth,
                        budget=budget,
                    ),
                )
    return EnvVerdict(
        holds=True,
        exhaustive=not graph.truncated,
        states=graph.state_count(),
        exhaustion=graph.exhaustion,
    )
