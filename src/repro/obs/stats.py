"""Per-job stat blocks and suite-level aggregation.

Every suite verdict (see :mod:`repro.runtime.worker`) carries a
``"stats"`` block — elapsed wall-clock, states and transitions
explored, throughput, the worker's peak RSS, checkpoint autosaves, and
the full per-job :class:`~repro.obs.metrics.Metrics` dump.  Those
blocks persist in the journal with the verdicts, so a finished (or
crashed) batch can be *measured* after the fact.

This module owns the shapes built on top of the blocks:

* :func:`job_stats_block` — assemble a block from a metrics registry
  (used by :func:`repro.runtime.worker.run_job`);
* :func:`peak_rss_mb` — the process's lifetime peak resident set;
* :class:`SuiteStats` — the aggregate over a batch of journal records
  (totals, throughput, retry and fault counts, RSS peak);
* :func:`render_job_table` — the ``repro-spi stats`` table.
"""

from __future__ import annotations

import resource
import sys
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.obs.metrics import Metrics

#: Metric names whose counters measure explored states, per layer.
STATE_COUNTERS = ("explore.states", "search.states", "env.states")
#: Metric names whose counters measure recorded transitions.
TRANSITION_COUNTERS = ("explore.transitions", "env.transitions")


def peak_rss_mb() -> Optional[float]:
    """Lifetime peak resident set of this process, in MiB.

    Uses ``getrusage`` (ru_maxrss is KiB on Linux, bytes on macOS);
    returns ``None`` on platforms without it.
    """
    try:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        return None
    if sys.platform == "darwin":  # pragma: no cover - not our CI
        return peak / (1024 * 1024)
    return peak / 1024


def _summed(metrics: Metrics, names: Iterable[str]) -> int:
    return sum(
        counter.value
        for name, counter in metrics.counters.items()
        if name in names
    )


def job_stats_block(metrics: Metrics, elapsed: float) -> dict:
    """The JSON stat block attached to one job's result.

    ``states``/``transitions`` sum the per-layer exploration counters,
    so the block is meaningful for ``explore`` jobs (LTS exploration),
    property jobs (environment graphs), and ``check`` jobs (may-testing
    searches) alike.
    """
    states = _summed(metrics, STATE_COUNTERS)
    transitions = _summed(metrics, TRANSITION_COUNTERS)
    return {
        "elapsed": round(elapsed, 6),
        "states": states,
        "transitions": transitions,
        "states_per_s": round(states / elapsed, 2) if elapsed > 0 else None,
        "peak_rss_mb": peak_rss_mb(),
        "checkpoints": (
            metrics.counters["checkpoint.saves"].value
            if "checkpoint.saves" in metrics.counters
            else 0
        ),
        "metrics": metrics.to_json(),
    }


# ----------------------------------------------------------------------
# Aggregation over journal records
# ----------------------------------------------------------------------


def _job_row(record: Mapping) -> dict:
    """One normalized table row from a journal ``result`` record."""
    result = record.get("result") or {}
    stats = result.get("stats") or {}
    return {
        "job": record.get("job", "?"),
        "status": record.get("status", "?"),
        "attempts": int(record.get("attempts", 1)),
        "violated": bool(result.get("violated")),
        "exact": bool(result.get("exact")),
        "states": stats.get("states", result.get("states", 0)) or 0,
        "transitions": stats.get("transitions", result.get("transitions", 0)) or 0,
        "states_per_s": stats.get("states_per_s"),
        "elapsed": stats.get("elapsed", record.get("elapsed")),
        "peak_rss_mb": stats.get("peak_rss_mb"),
        "checkpoints": stats.get("checkpoints", 0) or 0,
    }


@dataclass(frozen=True, slots=True)
class SuiteStats:
    """Aggregate metrics of one suite batch.

    Attributes:
        jobs: total journaled jobs.
        ok / faults / skipped: jobs per final status.
        violations: jobs whose verdict reports a broken property.
        attempts: total attempts across the batch.
        retries: attempts beyond each job's first.
        states / transitions: summed exploration work.
        job_seconds: summed per-job wall-clock (CPU-side cost).
        wall_seconds: end-to-end batch wall-clock, when known.
        states_per_s: throughput against ``wall_seconds`` (falls back
            to ``job_seconds`` for journal-only aggregation).
        peak_rss_mb: highest worker peak observed.
        checkpoints: exploration autosaves written.
        workers / spawned: pool size and total processes spawned, when
            the aggregation came from a live run.
    """

    jobs: int
    ok: int
    faults: int
    skipped: int
    violations: int
    attempts: int
    retries: int
    states: int
    transitions: int
    job_seconds: float
    wall_seconds: Optional[float] = None
    states_per_s: Optional[float] = None
    peak_rss_mb: Optional[float] = None
    checkpoints: int = 0
    workers: Optional[int] = None
    spawned: Optional[int] = None
    per_job: tuple = field(default_factory=tuple)

    @staticmethod
    def from_records(
        records: Iterable[Mapping],
        wall_seconds: Optional[float] = None,
        workers: Optional[int] = None,
        spawned: Optional[int] = None,
    ) -> "SuiteStats":
        rows = [_job_row(record) for record in records]
        states = sum(row["states"] for row in rows)
        job_seconds = sum(row["elapsed"] or 0.0 for row in rows)
        denominator = wall_seconds if wall_seconds else job_seconds
        peaks = [row["peak_rss_mb"] for row in rows if row["peak_rss_mb"] is not None]
        return SuiteStats(
            jobs=len(rows),
            ok=sum(1 for row in rows if row["status"] == "ok"),
            faults=sum(1 for row in rows if row["status"] == "fault"),
            skipped=sum(1 for row in rows if row["status"] == "skipped"),
            violations=sum(1 for row in rows if row["violated"]),
            attempts=sum(row["attempts"] for row in rows),
            retries=sum(row["attempts"] - 1 for row in rows),
            states=states,
            transitions=sum(row["transitions"] for row in rows),
            job_seconds=round(job_seconds, 4),
            wall_seconds=round(wall_seconds, 4) if wall_seconds is not None else None,
            states_per_s=round(states / denominator, 2) if denominator else None,
            peak_rss_mb=max(peaks) if peaks else None,
            checkpoints=sum(row["checkpoints"] for row in rows),
            workers=workers,
            spawned=spawned,
            per_job=tuple(rows),
        )

    def to_json(self) -> dict:
        return {
            "aggregate": {
                "jobs": self.jobs,
                "ok": self.ok,
                "faults": self.faults,
                "skipped": self.skipped,
                "violations": self.violations,
                "attempts": self.attempts,
                "retries": self.retries,
                "states": self.states,
                "transitions": self.transitions,
                "job_seconds": self.job_seconds,
                "wall_seconds": self.wall_seconds,
                "states_per_s": self.states_per_s,
                "peak_rss_mb": self.peak_rss_mb,
                "checkpoints": self.checkpoints,
                "workers": self.workers,
                "spawned": self.spawned,
            },
            "jobs": {
                row["job"]: {key: value for key, value in row.items() if key != "job"}
                for row in self.per_job
            },
        }

    def describe(self) -> str:
        parts = [
            f"stats: {self.jobs} job(s), {self.states} states, "
            f"{self.transitions} transitions"
        ]
        if self.states_per_s is not None:
            parts.append(f"{self.states_per_s:g} states/s")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.faults:
            parts.append(f"{self.faults} faults")
        if self.violations:
            parts.append(f"{self.violations} violation(s)")
        if self.peak_rss_mb is not None:
            parts.append(f"peak rss {self.peak_rss_mb:.0f}MiB")
        return "; ".join(parts)


def render_job_table(records: Iterable[Mapping]) -> str:
    """Per-job metrics as an aligned text table (``repro-spi stats``)."""
    records = list(records)
    rows = [_job_row(record) for record in records]
    if not rows:
        return "(empty journal: no verdicted jobs)"
    headers = (
        "job", "status", "att", "states", "trans", "st/s", "rss MiB", "seconds"
    )

    def cell(row: dict, column: str) -> str:
        if column == "job":
            return str(row["job"])
        if column == "status":
            flag = "!" if row["violated"] else ""
            return f"{row['status']}{flag}"
        if column == "att":
            return str(row["attempts"])
        if column == "states":
            return str(row["states"])
        if column == "trans":
            return str(row["transitions"])
        if column == "st/s":
            return f"{row['states_per_s']:g}" if row["states_per_s"] else "-"
        if column == "rss MiB":
            peak = row["peak_rss_mb"]
            return f"{peak:.0f}" if peak is not None else "-"
        elapsed = row["elapsed"]
        return f"{elapsed:.3f}" if elapsed is not None else "-"

    table = [[cell(row, column) for column in headers] for row in rows]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in table))
        for i in range(len(headers))
    ]

    def render_line(cells: Iterable[str]) -> str:
        padded = []
        for i, text in enumerate(cells):
            padded.append(text.ljust(widths[i]) if i == 0 else text.rjust(widths[i]))
        return "  ".join(padded).rstrip()

    lines = [render_line(headers)]
    lines.extend(render_line(line) for line in table)
    lines.append(SuiteStats.from_records(records).describe())
    return "\n".join(lines)
