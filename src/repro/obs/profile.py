"""Profiling hooks: a cProfile context manager for any bounded run.

The observability layer's third leg: traces say *when*, metrics say
*how much*, profiles say *which code*.  :func:`profile` wraps the
standard-library ``cProfile`` (always available, no dependency) around
an arbitrary block::

    with profile("explore.prof"):
        explore(system, budget)

* a path ending in ``.prof`` gets the binary ``pstats`` dump (feed it
  to ``snakeviz`` or ``python -m pstats``);
* any other path gets a human-readable top-N table (cumulative time);
* a ``None``/``"-"`` target prints that table to the given stream.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO

#: Rows shown in the human-readable rendering.
TOP_N = 25


def render_profile(profiler: cProfile.Profile, top_n: int = TOP_N) -> str:
    """The profile as a cumulative-time table, highest first."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top_n)
    return buffer.getvalue()


@contextmanager
def profile(
    target: Optional[str] = None,
    stream: Optional[TextIO] = None,
    top_n: int = TOP_N,
) -> Iterator[cProfile.Profile]:
    """Profile the enclosed block with ``cProfile``.

    ``target`` is a ``.prof`` path (binary dump), another path (text
    table), or ``None``/``"-"`` (table to ``stream``, default stdout).
    The profiler object is yielded for callers that want the raw stats.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        if target is not None and target != "-":
            if target.endswith(".prof"):
                profiler.dump_stats(target)
            else:
                with open(target, "w", encoding="utf-8") as handle:
                    handle.write(render_profile(profiler, top_n))
        else:
            out = stream if stream is not None else sys.stdout
            out.write(render_profile(profiler, top_n))
