"""Structured JSONL trace events.

Where :mod:`repro.obs.metrics` aggregates, a :class:`Tracer` records
the *timeline*: one JSON object per line with a monotonic timestamp,
suitable for replaying where an exploration or a suite run spent its
time.  Three event kinds:

* ``begin`` / ``end`` — a **span**: a named, possibly-nested interval.
  Spans carry a per-tracer id and their parent's id, so a trace is a
  forest reconstructable from the flat event stream; ``end`` events
  repeat the span id and add the elapsed duration.
* ``counter`` — a named value at a point in time (queue depth, states
  explored so far).
* ``event`` — a point annotation (a worker kill, a retry, a checkpoint
  autosave).

Tracing is *ambient* like metrics collection: install a tracer with
:func:`tracing` and instrumented code picks it up through
:func:`current_tracer`; when none is installed, the helpers
(:func:`trace_span`, :func:`trace_event`) cost one ``None`` check.

Timestamps are ``time.monotonic()`` — intra-trace ordering and
durations are meaningful; wall-clock alignment across processes is not
a goal (each process owns its trace file).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Iterator, Mapping, Optional, TextIO

#: Recognized event kinds.
BEGIN = "begin"
END = "end"
COUNTER = "counter"
EVENT = "event"

KINDS = frozenset({BEGIN, END, COUNTER, EVENT})

#: Keys every serialized event uses; everything else is a user field.
_RESERVED = ("ts", "kind", "name", "span", "parent", "value", "duration")


class TraceError(ValueError):
    """A serialized trace event does not match the schema."""


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One line of a trace file.

    Attributes:
        ts: monotonic timestamp (seconds).
        kind: ``begin`` | ``end`` | ``counter`` | ``event``.
        name: the span/counter/annotation name.
        span: span id (``begin``/``end`` only).
        parent: enclosing span id, when any.
        value: the sampled value (``counter`` only).
        duration: elapsed seconds (``end`` only).
        fields: free-form extra JSON-scalar fields.
    """

    ts: float
    kind: str
    name: str
    span: Optional[int] = None
    parent: Optional[int] = None
    value: Optional[float] = None
    duration: Optional[float] = None
    fields: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise TraceError(f"unknown trace event kind {self.kind!r}")
        clash = set(self.fields) & set(_RESERVED)
        if clash:
            raise TraceError(f"fields shadow reserved keys: {sorted(clash)}")

    def to_json(self) -> dict:
        data: dict[str, Any] = {"ts": self.ts, "kind": self.kind, "name": self.name}
        for key in ("span", "parent", "value", "duration"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        data.update(self.fields)
        return data

    @staticmethod
    def from_json(data: Mapping) -> "TraceEvent":
        try:
            ts = float(data["ts"])
            kind = str(data["kind"])
            name = str(data["name"])
        except (KeyError, TypeError, ValueError) as err:
            raise TraceError(f"malformed trace event: {err}")
        extras = {key: value for key, value in data.items() if key not in _RESERVED}
        return TraceEvent(
            ts=ts,
            kind=kind,
            name=name,
            span=data.get("span"),
            parent=data.get("parent"),
            value=data.get("value"),
            duration=data.get("duration"),
            fields=extras,
        )


class Tracer:
    """Writes trace events to a text sink, one JSON object per line.

    Thread-safe: span nesting is tracked per thread, writes are
    serialized under a lock.  Construct over any text handle, or use
    :meth:`to_path`; a tracer is a context manager that closes what it
    opened.
    """

    def __init__(self, sink: TextIO, clock=time.monotonic) -> None:
        self._sink = sink
        self._clock = clock
        self._lock = threading.Lock()
        self._owns_sink = False
        self._next_span = 0
        self._stack = threading.local()

    @classmethod
    def to_path(cls, path: str, clock=time.monotonic) -> "Tracer":
        tracer = cls(open(path, "w", encoding="utf-8"), clock)
        tracer._owns_sink = True
        return tracer

    # -- internals -----------------------------------------------------

    def _parents(self) -> list[int]:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        return stack

    def _emit(self, event: TraceEvent) -> None:
        line = json.dumps(event.to_json(), sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._sink.write(line + "\n")

    # -- the emitting API ---------------------------------------------

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """A named interval: emits ``begin`` now and ``end`` on exit."""
        with self._lock:
            span_id = self._next_span
            self._next_span += 1
        parents = self._parents()
        parent = parents[-1] if parents else None
        started = self._clock()
        self._emit(
            TraceEvent(started, BEGIN, name, span=span_id, parent=parent, fields=fields)
        )
        parents.append(span_id)
        try:
            yield
        finally:
            parents.pop()
            now = self._clock()
            self._emit(
                TraceEvent(
                    now, END, name,
                    span=span_id, parent=parent, duration=now - started,
                )
            )

    def counter(self, name: str, value: float, **fields: Any) -> None:
        parents = self._parents()
        self._emit(
            TraceEvent(
                self._clock(), COUNTER, name,
                parent=parents[-1] if parents else None,
                value=value, fields=fields,
            )
        )

    def event(self, name: str, **fields: Any) -> None:
        parents = self._parents()
        self._emit(
            TraceEvent(
                self._clock(), EVENT, name,
                parent=parents[-1] if parents else None,
                fields=fields,
            )
        )

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        self.flush()
        if self._owns_sink and not self._sink.closed:
            self._sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(source: str | TextIO) -> list[TraceEvent]:
    """Parse a trace file (path or open handle) back into events.

    A trailing torn line (crash mid-write) is dropped, mirroring the
    journal's tolerance; malformed complete lines raise
    :class:`TraceError`.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = source.read()
    events: list[TraceEvent] = []
    lines = text.split("\n")
    terminated = text.endswith("\n")
    for index, line in enumerate(lines):
        if not line:
            continue
        complete = index < len(lines) - 1 or terminated
        try:
            events.append(TraceEvent.from_json(json.loads(line)))
        except (ValueError, TraceError):
            if not complete:
                continue
            raise TraceError(f"corrupt trace event on line {index + 1}")
    return events


# ----------------------------------------------------------------------
# The ambient tracer
# ----------------------------------------------------------------------

_active: list[Tracer] = []


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _active[-1] if _active else None


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install a tracer for the enclosed block (nestable; innermost
    wins)."""
    _active.append(tracer)
    try:
        yield tracer
    finally:
        _active.pop()


def trace_span(name: str, **fields: Any) -> ContextManager[None]:
    """A span on the ambient tracer — a no-op context when tracing is
    off (one ``None`` check, no allocation beyond the nullcontext)."""
    tracer = current_tracer()
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **fields)


def trace_event(name: str, **fields: Any) -> None:
    """A point annotation on the ambient tracer, if any."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.event(name, **fields)


def trace_counter(name: str, value: float, **fields: Any) -> None:
    """A counter sample on the ambient tracer, if any."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.counter(name, value, **fields)
