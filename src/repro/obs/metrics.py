"""The metrics registry: counters, gauges, histograms.

Verification is dominated by opaque state-space exploration; a suite
run that only reports final verdicts cannot say *where* time, states,
or retries went.  A :class:`Metrics` registry is the answer: a flat
namespace of named instruments that the exploration loops, equivalence
checkers, analysis passes and the supervised suite runner all write
into when one is *installed* (see :func:`collecting`), and that costs a
single ``None`` check when none is.

Three instrument kinds, chosen so that registries from independent
sub-computations (worker processes, escalation attempts, suite jobs)
can be **merged associatively**:

* :class:`Counter` — a monotone event count; merge adds.
* :class:`Gauge` — a level (queue depth, RSS); merge takes the maximum,
  so a merged gauge reads "the highest level any contributor saw".
* :class:`Histogram` — a value distribution over fixed bucket bounds;
  merge adds bucket counts and sums, and takes min/max of extrema.

Everything serializes to flat JSON (:meth:`Metrics.to_json` /
:meth:`Metrics.from_json`), because metrics cross the same process and
journal boundaries as verdicts do.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Sequence

#: Default histogram bucket upper bounds (seconds-flavoured geometric
#: ladder; the overflow bucket catches everything above the last bound).
DEFAULT_BOUNDS: tuple[float, ...] = (
    0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0,
)


class Counter:
    """A monotone event count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        return Counter(self.value + other.value)


class Gauge:
    """A sampled level; remembers the last and the highest sample."""

    __slots__ = ("value", "peak")

    def __init__(self, value: float = 0.0, peak: float = 0.0) -> None:
        self.value = value
        self.peak = peak

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def merge(self, other: "Gauge") -> "Gauge":
        """Merged gauges read the highest level any contributor saw.

        Taking the maximum (for ``value`` too, not just ``peak``) keeps
        the merge associative and commutative — "last write" has no
        meaning across concurrent contributors.
        """
        return Gauge(max(self.value, other.value), max(self.peak, other.peak))


class Histogram:
    """A value distribution over fixed bucket upper bounds.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final extra
    bucket is the overflow.  Merging requires identical bounds and is
    associative: counts and sums add, extrema take min/max.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def merge(self, other: "Histogram") -> "Histogram":
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        merged = Histogram(self.bounds)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        mins = [m for m in (self.min, other.min) if m is not None]
        maxes = [m for m in (self.max, other.max) if m is not None]
        merged.min = min(mins) if mins else None
        merged.max = max(maxes) if maxes else None
        return merged

    def approx_equals(self, other: "Histogram", rel_tol: float = 1e-9) -> bool:
        """Structural equality with float tolerance on the sums.

        Bucket counts and extrema compare exactly; ``total`` is a float
        accumulation, so two associativity-equivalent merge orders may
        differ in the last ulps.
        """
        return (
            self.bounds == other.bounds
            and self.counts == other.counts
            and self.count == other.count
            and self.min == other.min
            and self.max == other.max
            and math.isclose(self.total, other.total, rel_tol=rel_tol, abs_tol=1e-12)
        )


class Metrics:
    """A flat registry of named instruments.

    Instruments are created on first use (``metrics.counter("x").inc()``
    never KeyErrors), so instrumented code needs no registration step.
    Names are conventionally dotted: ``explore.states``,
    ``suite.retries``.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instrument access --------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        return histogram

    # -- convenience writers ------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- merge & JSON --------------------------------------------------

    def merge(self, other: "Metrics") -> "Metrics":
        """A new registry combining both; associative and commutative."""
        merged = Metrics()
        for name in {*self.counters, *other.counters}:
            a, b = self.counters.get(name), other.counters.get(name)
            merged.counters[name] = (
                a.merge(b) if a and b else Counter((a or b).value)
            )
        for name in {*self.gauges, *other.gauges}:
            a, b = self.gauges.get(name), other.gauges.get(name)
            source = a.merge(b) if a and b else (a or b)
            merged.gauges[name] = Gauge(source.value, source.peak)
        for name in {*self.histograms, *other.histograms}:
            a, b = self.histograms.get(name), other.histograms.get(name)
            if a and b:
                merged.histograms[name] = a.merge(b)
            else:
                source = a or b
                merged.histograms[name] = source.merge(Histogram(source.bounds))
        return merged

    def absorb(self, other: "Metrics") -> None:
        """In-place :meth:`merge` — fold ``other`` into this registry."""
        merged = self.merge(other)
        self.counters = merged.counters
        self.gauges = merged.gauges
        self.histograms = merged.histograms

    def to_json(self) -> dict:
        return {
            "counters": {
                name: counter.value for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: {"value": gauge.value, "peak": gauge.peak}
                for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in sorted(self.histograms.items())
            },
        }

    @staticmethod
    def from_json(data: Mapping) -> "Metrics":
        metrics = Metrics()
        for name, value in (data.get("counters") or {}).items():
            metrics.counters[name] = Counter(int(value))
        for name, fields in (data.get("gauges") or {}).items():
            metrics.gauges[name] = Gauge(
                float(fields["value"]), float(fields.get("peak", fields["value"]))
            )
        for name, fields in (data.get("histograms") or {}).items():
            histogram = Histogram(tuple(fields["bounds"]))
            histogram.counts = [int(c) for c in fields["counts"]]
            histogram.count = int(fields["count"])
            histogram.total = float(fields["total"])
            histogram.min = fields.get("min")
            histogram.max = fields.get("max")
            metrics.histograms[name] = histogram
        return metrics

    def describe(self) -> str:
        """A compact multi-line text rendering (for ``--stats -``)."""
        lines: list[str] = []
        for name, counter in sorted(self.counters.items()):
            lines.append(f"{name:32s} {counter.value}")
        for name, gauge in sorted(self.gauges.items()):
            lines.append(f"{name:32s} {gauge.value:g} (peak {gauge.peak:g})")
        for name, h in sorted(self.histograms.items()):
            mean = f"{h.mean:.4g}" if h.count else "-"
            lines.append(
                f"{name:32s} n={h.count} mean={mean} "
                f"min={h.min if h.min is not None else '-'} "
                f"max={h.max if h.max is not None else '-'}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"


# ----------------------------------------------------------------------
# The ambient registry
# ----------------------------------------------------------------------

_active: list[Metrics] = []


def current_metrics() -> Optional[Metrics]:
    """The installed registry, or ``None`` when collection is off.

    Hot loops should fetch this **once** per run and keep local plain
    counters, publishing totals at the end — then the disabled cost of
    instrumentation is one list lookup per exploration, not per state.
    """
    return _active[-1] if _active else None


@contextmanager
def collecting(metrics: Optional[Metrics] = None) -> Iterator[Metrics]:
    """Install a registry for the enclosed block (nestable; innermost
    wins).  Yields the registry so ``with collecting() as m:`` works."""
    registry = metrics if metrics is not None else Metrics()
    _active.append(registry)
    try:
        yield registry
    finally:
        _active.pop()
