"""Observability: structured traces, metrics, stat blocks, profiling.

A dependency-free subsystem that makes the library's dominant cost —
opaque state-space exploration — measurable:

* :mod:`repro.obs.trace` — :class:`Tracer`: structured JSONL trace
  events (spans, counters, annotations) with monotonic timestamps;
* :mod:`repro.obs.metrics` — :class:`Metrics`: a registry of counters,
  gauges and histograms with JSON round-trips and associative merge;
* :mod:`repro.obs.stats` — per-job stat blocks attached to suite
  verdicts and the :class:`SuiteStats` aggregate;
* :mod:`repro.obs.profile` — :func:`profile`: a cProfile context
  manager behind the CLI's ``--profile``.

Both tracing and metrics collection are *ambient* (install with
:func:`tracing` / :func:`collecting`, read with
:func:`current_tracer` / :func:`current_metrics`) and cost one ``None``
check per instrumented run when disabled — the exploration loops keep
plain local counters and publish totals once at the end, so the hot
path carries no per-state indirection.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    collecting,
    current_metrics,
)
from repro.obs.profile import profile, render_profile
from repro.obs.stats import (
    SuiteStats,
    job_stats_block,
    peak_rss_mb,
    render_job_table,
)
from repro.obs.trace import (
    TraceError,
    TraceEvent,
    Tracer,
    current_tracer,
    read_trace,
    trace_counter,
    trace_event,
    trace_span,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "SuiteStats",
    "TraceError",
    "TraceEvent",
    "Tracer",
    "collecting",
    "current_metrics",
    "current_tracer",
    "job_stats_block",
    "peak_rss_mb",
    "profile",
    "read_trace",
    "render_job_table",
    "render_profile",
    "trace_counter",
    "trace_event",
    "trace_span",
    "tracing",
]
