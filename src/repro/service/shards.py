"""Consistent-hash sharding and local shard processes.

The cluster router partitions verification traffic across N backend
``repro-spi serve`` processes by *protocol key* (see
:func:`repro.service.protocol.protocol_key`): every request for one
protocol lands on the same shard, so that shard's circuit breakers,
checkpoint files, and journal accumulate exactly the history that
protocol needs — and a protocol that crashes workers takes down at most
its own shard's retry budget.

Two pieces live here, both deliberately free of routing policy:

* :class:`HashRing` — the classic consistent-hash ring with virtual
  nodes.  Hashing is ``sha256``-based, **not** Python's builtin
  ``hash`` (which is salted per process: a router restart must not
  reshuffle the whole keyspace).  When a shard is ejected only *its*
  arc of the ring remaps to the surviving successors; every other key
  keeps its owner — the property that makes failover cheap.
* :class:`LocalShard` — one supervised ``repro-spi serve`` child
  process: spawn (in its own session, so terminal signals reach the
  router alone and shard shutdown stays the router's decision), liveness
  polling, SIGTERM/SIGKILL, and the respawn-backoff bookkeeping the
  router's supervision loop drives.

Remote shards (pre-started servers registered by address) need neither:
they are a :class:`ShardSpec` with ``local=False`` and their lifecycle
belongs to whoever started them.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.core.errors import ReproError


class ShardError(ReproError):
    """A shard definition or spawn went wrong."""


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` is *running* (signal-0 probe; EPERM still means
    alive).  A zombie answers signal 0 but is already dead — it can
    serve nothing and will vanish as soon as someone reaps it — so on
    platforms with ``/proc`` the state field gets the final say."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            # Field 3, after the parenthesised (possibly space-ridden)
            # command name: a single state letter; "Z" is a zombie.
            return handle.read().rsplit(b") ", 1)[1][:1] != b"Z"
    except (OSError, IndexError):
        return True  # no /proc: the signal probe is the best we have


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for ``label``."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Each member contributes ``vnodes`` points on a 2**64 ring; a key is
    owned by the member of the first point clockwise from the key's own
    hash.  More vnodes smooth the load split at the cost of a larger
    sorted array — 64 keeps any member's share within a few percent of
    fair for small clusters.
    """

    def __init__(self, members: Iterable[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ShardError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._members: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    @property
    def members(self) -> frozenset[str]:
        return frozenset(self._members)

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        self._rebuild()

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        self._rebuild()

    def _rebuild(self) -> None:
        pairs = sorted(
            (_point(f"{member}#{v}"), member)
            for member in self._members
            for v in range(self.vnodes)
        )
        self._points = [p for p, _ in pairs]
        self._owners = [m for _, m in pairs]

    def owner(self, key: str, exclude: frozenset = frozenset()) -> Optional[str]:
        """The member owning ``key``, skipping ``exclude`` — or ``None``
        when no eligible member remains."""
        candidates = self.owners(key)
        for member in candidates:
            if member not in exclude:
                return member
        return None

    def owners(self, key: str) -> list[str]:
        """Every member in failover order for ``key``: the owner first,
        then each distinct successor clockwise around the ring."""
        if not self._points:
            return []
        start = bisect.bisect_left(self._points, _point(key))
        ordered: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._points)):
            member = self._owners[(start + step) % len(self._points)]
            if member not in seen:
                seen.add(member)
                ordered.append(member)
                if len(ordered) == len(self._members):
                    break
        return ordered


@dataclass(frozen=True)
class ShardSpec:
    """One shard as the router sees it: a stable id, an address in
    :func:`repro.service.client.parse_address` form, and (local shards
    only) the journal the shard appends verdicts to — which is also the
    router's idempotency oracle during failover."""

    id: str
    address: Any
    journal_path: Optional[str] = None
    local: bool = True


@dataclass(eq=False)
class LocalShard:
    """One supervised local ``repro-spi serve`` child.

    The router's supervision loop owns the policy (when to respawn, how
    long to back off); this class owns the mechanics.  ``fail_streak``
    counts consecutive health failures *and* process deaths since the
    shard last answered a ping — it drives the respawn backoff and
    resets the moment the shard proves healthy again.
    """

    spec: ShardSpec
    argv: Sequence[str]
    log_path: str
    proc: Optional[subprocess.Popen] = None
    restarts: int = 0
    fail_streak: int = 0
    next_spawn_at: float = 0.0
    #: Pid of an *inherited* incarnation: shards run in their own
    #: session, so they survive a router ``kill -9`` as orphans, and a
    #: standby router adopts them by pid instead of respawning (which
    #: would double any in-flight computation).  Cleared on spawn.
    adopted_pid: Optional[int] = None
    _log_handle: Any = field(default=None, repr=False)

    @property
    def socket_path(self) -> Optional[str]:
        family, target = self.spec.address
        return target if family == "unix" else None

    def alive(self) -> bool:
        if self.proc is not None and self.proc.poll() is None:
            return True
        if self.proc is None and self.adopted_pid is not None:
            return _pid_alive(self.adopted_pid)
        return False

    @property
    def pid(self) -> Optional[int]:
        if self.proc is not None:
            return self.proc.pid
        return self.adopted_pid

    @property
    def exit_code(self) -> Optional[int]:
        return self.proc.poll() if self.proc is not None else None

    def spawn(self) -> None:
        """Start (or restart) the serve child.

        A stale socket file from the previous incarnation is removed
        first so the child's bind cannot race a connect against a dead
        endpoint.  stdout/stderr append to the shard's log file; the
        child gets its own session so only the router signals it.
        """
        if self.alive():
            return
        # Any adopted incarnation is conclusively dead by now.
        self.adopted_pid = None
        if self.socket_path is not None and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self._log_handle is None or self._log_handle.closed:
            self._log_handle = open(self.log_path, "ab")
        if self.proc is not None:
            self.restarts += 1
        self.proc = subprocess.Popen(
            list(self.argv),
            stdout=self._log_handle,
            stderr=subprocess.STDOUT,
            start_new_session=True,
        )

    def terminate(self) -> None:
        if not self.alive():
            return
        try:
            if self.proc is not None:
                self.proc.terminate()
            elif self.adopted_pid is not None:
                os.kill(self.adopted_pid, signal.SIGTERM)
        except OSError:
            pass

    def kill(self) -> None:
        if not self.alive():
            return
        try:
            if self.proc is not None:
                self.proc.kill()
            elif self.adopted_pid is not None:
                os.kill(self.adopted_pid, signal.SIGKILL)
        except OSError:
            pass

    def wait(self, timeout: float) -> Optional[int]:
        """Best-effort wait; returns the exit code or ``None`` on
        timeout.  Adopted pids are not our children, so ``waitpid`` is
        unavailable — they are polled, and report exit code 0 once gone
        (the real code is unknowable)."""
        if self.proc is not None:
            try:
                return self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                return None
        if self.adopted_pid is not None:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if not _pid_alive(self.adopted_pid):
                    return 0
                time.sleep(0.05)
            return None
        return None

    def close(self) -> None:
        if self._log_handle is not None and not self._log_handle.closed:
            self._log_handle.close()


def local_shard_argv(
    socket_path: str,
    journal_path: str,
    checkpoint_dir: str,
    workers: int,
    queue_limit: int,
    retries: int,
    job_deadline: Optional[float],
    breaker_threshold: int,
    breaker_cooldown: float,
    drain_grace: float,
    allow_fault_injection: bool,
    python: str = sys.executable,
    dedupe: bool = True,
    verdict_store: Optional[str] = None,
    extra_args: Sequence[str] = (),
) -> list[str]:
    """The ``repro-spi serve`` command line for one local shard.

    Always passes ``--rebuild-breakers``: a respawned shard replays its
    journal so an open breaker survives the crash that killed the
    process (see :meth:`repro.service.breaker.BreakerBoard.rebuild`).
    Cluster shards also get ``--dedupe`` by default: the shard treats
    the request id as an idempotency key against its own journal and
    in-flight table, the backstop that keeps verdicts exactly-once even
    when *two* routers (a wedged primary and a promoted standby)
    briefly forward the same work.

    ``verdict_store`` (``cluster --verdict-store``) is deliberately
    **one shared directory** for the whole fleet: each shard does its
    cache-aside lookups and write-throughs against the same store (the
    per-writer-segment layout of :class:`~repro.service.store.
    VerdictStore` makes that safe), so cluster-wide repeat traffic,
    failover re-drives, and resharding moves all become O(1) lookups
    regardless of which shard the ring picks.
    """
    argv = [
        python, "-m", "repro.cli", "serve",
        "--socket", socket_path,
        "--journal", journal_path,
        "--checkpoint-dir", checkpoint_dir,
        "--workers", str(workers),
        "--queue-limit", str(queue_limit),
        "--retries", str(retries),
        "--breaker-threshold", str(breaker_threshold),
        "--breaker-cooldown", str(breaker_cooldown),
        "--drain-grace", str(drain_grace),
        "--rebuild-breakers",
    ]
    if dedupe:
        argv.append("--dedupe")
    if verdict_store is not None:
        argv += ["--verdict-store", verdict_store]
    if job_deadline is not None:
        argv += ["--job-deadline", str(job_deadline)]
    if allow_fault_injection:
        argv.append("--allow-fault-injection")
    # ``extra_args`` lets a special-purpose shard diverge from the
    # fleet configuration — the cross-check shard runs with
    # ``--reduce none --no-state-cache`` so its verdicts share no
    # reduction or caching machinery with the shards it audits.
    argv += list(extra_args)
    return argv


def backoff_delay(
    base: float, cap: float, streak: int, rng: Optional[Any] = None
) -> float:
    """Respawn backoff for a shard on its ``streak``-th consecutive
    failure (streak 1 = first failure).

    Without ``rng`` this is plain capped exponential — deterministic,
    for callers that need exact pacing.  With ``rng`` (a ``random()``
    -style callable) it is *full jitter* over the same envelope,
    ``uniform(0, min(cap, base * 2**(streak-1)))``: a machine-wide blip
    that kills every shard at once must not produce N respawns (and N
    health-probe bursts) marching in lockstep against whatever shared
    resource just recovered.
    """
    ceiling = min(cap, base * (2 ** max(0, streak - 1)))
    if rng is None:
        return ceiling
    return rng() * ceiling


__all__ = [
    "HashRing",
    "LocalShard",
    "ShardError",
    "ShardSpec",
    "backoff_delay",
    "local_shard_argv",
]
