"""Consistent-hash sharding and local shard processes.

The cluster router partitions verification traffic across N backend
``repro-spi serve`` processes by *protocol key* (see
:func:`repro.service.protocol.protocol_key`): every request for one
protocol lands on the same shard, so that shard's circuit breakers,
checkpoint files, and journal accumulate exactly the history that
protocol needs — and a protocol that crashes workers takes down at most
its own shard's retry budget.

Two pieces live here, both deliberately free of routing policy:

* :class:`HashRing` — the classic consistent-hash ring with virtual
  nodes.  Hashing is ``sha256``-based, **not** Python's builtin
  ``hash`` (which is salted per process: a router restart must not
  reshuffle the whole keyspace).  When a shard is ejected only *its*
  arc of the ring remaps to the surviving successors; every other key
  keeps its owner — the property that makes failover cheap.
* :class:`LocalShard` — one supervised ``repro-spi serve`` child
  process: spawn (in its own session, so terminal signals reach the
  router alone and shard shutdown stays the router's decision), liveness
  polling, SIGTERM/SIGKILL, and the respawn-backoff bookkeeping the
  router's supervision loop drives.

Remote shards (pre-started servers registered by address) need neither:
they are a :class:`ShardSpec` with ``local=False`` and their lifecycle
belongs to whoever started them.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.core.errors import ReproError


class ShardError(ReproError):
    """A shard definition or spawn went wrong."""


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for ``label``."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Each member contributes ``vnodes`` points on a 2**64 ring; a key is
    owned by the member of the first point clockwise from the key's own
    hash.  More vnodes smooth the load split at the cost of a larger
    sorted array — 64 keeps any member's share within a few percent of
    fair for small clusters.
    """

    def __init__(self, members: Iterable[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ShardError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._members: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    @property
    def members(self) -> frozenset[str]:
        return frozenset(self._members)

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        self._rebuild()

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        self._rebuild()

    def _rebuild(self) -> None:
        pairs = sorted(
            (_point(f"{member}#{v}"), member)
            for member in self._members
            for v in range(self.vnodes)
        )
        self._points = [p for p, _ in pairs]
        self._owners = [m for _, m in pairs]

    def owner(self, key: str, exclude: frozenset = frozenset()) -> Optional[str]:
        """The member owning ``key``, skipping ``exclude`` — or ``None``
        when no eligible member remains."""
        candidates = self.owners(key)
        for member in candidates:
            if member not in exclude:
                return member
        return None

    def owners(self, key: str) -> list[str]:
        """Every member in failover order for ``key``: the owner first,
        then each distinct successor clockwise around the ring."""
        if not self._points:
            return []
        start = bisect.bisect_left(self._points, _point(key))
        ordered: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._points)):
            member = self._owners[(start + step) % len(self._points)]
            if member not in seen:
                seen.add(member)
                ordered.append(member)
                if len(ordered) == len(self._members):
                    break
        return ordered


@dataclass(frozen=True)
class ShardSpec:
    """One shard as the router sees it: a stable id, an address in
    :func:`repro.service.client.parse_address` form, and (local shards
    only) the journal the shard appends verdicts to — which is also the
    router's idempotency oracle during failover."""

    id: str
    address: Any
    journal_path: Optional[str] = None
    local: bool = True


@dataclass(eq=False)
class LocalShard:
    """One supervised local ``repro-spi serve`` child.

    The router's supervision loop owns the policy (when to respawn, how
    long to back off); this class owns the mechanics.  ``fail_streak``
    counts consecutive health failures *and* process deaths since the
    shard last answered a ping — it drives the respawn backoff and
    resets the moment the shard proves healthy again.
    """

    spec: ShardSpec
    argv: Sequence[str]
    log_path: str
    proc: Optional[subprocess.Popen] = None
    restarts: int = 0
    fail_streak: int = 0
    next_spawn_at: float = 0.0
    _log_handle: Any = field(default=None, repr=False)

    @property
    def socket_path(self) -> Optional[str]:
        family, target = self.spec.address
        return target if family == "unix" else None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    @property
    def exit_code(self) -> Optional[int]:
        return self.proc.poll() if self.proc is not None else None

    def spawn(self) -> None:
        """Start (or restart) the serve child.

        A stale socket file from the previous incarnation is removed
        first so the child's bind cannot race a connect against a dead
        endpoint.  stdout/stderr append to the shard's log file; the
        child gets its own session so only the router signals it.
        """
        if self.alive():
            return
        if self.socket_path is not None and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self._log_handle is None or self._log_handle.closed:
            self._log_handle = open(self.log_path, "ab")
        if self.proc is not None:
            self.restarts += 1
        self.proc = subprocess.Popen(
            list(self.argv),
            stdout=self._log_handle,
            stderr=subprocess.STDOUT,
            start_new_session=True,
        )

    def terminate(self) -> None:
        if self.alive():
            try:
                self.proc.terminate()
            except OSError:
                pass

    def kill(self) -> None:
        if self.alive():
            try:
                self.proc.kill()
            except OSError:
                pass

    def wait(self, timeout: float) -> Optional[int]:
        """Best-effort wait; returns the exit code or ``None`` on
        timeout."""
        if self.proc is None:
            return None
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            return None

    def close(self) -> None:
        if self._log_handle is not None and not self._log_handle.closed:
            self._log_handle.close()


def local_shard_argv(
    socket_path: str,
    journal_path: str,
    checkpoint_dir: str,
    workers: int,
    queue_limit: int,
    retries: int,
    job_deadline: Optional[float],
    breaker_threshold: int,
    breaker_cooldown: float,
    drain_grace: float,
    allow_fault_injection: bool,
    python: str = sys.executable,
) -> list[str]:
    """The ``repro-spi serve`` command line for one local shard.

    Always passes ``--rebuild-breakers``: a respawned shard replays its
    journal so an open breaker survives the crash that killed the
    process (see :meth:`repro.service.breaker.BreakerBoard.rebuild`).
    """
    argv = [
        python, "-m", "repro.cli", "serve",
        "--socket", socket_path,
        "--journal", journal_path,
        "--checkpoint-dir", checkpoint_dir,
        "--workers", str(workers),
        "--queue-limit", str(queue_limit),
        "--retries", str(retries),
        "--breaker-threshold", str(breaker_threshold),
        "--breaker-cooldown", str(breaker_cooldown),
        "--drain-grace", str(drain_grace),
        "--rebuild-breakers",
    ]
    if job_deadline is not None:
        argv += ["--job-deadline", str(job_deadline)]
    if allow_fault_injection:
        argv.append("--allow-fault-injection")
    return argv


def backoff_delay(base: float, cap: float, streak: int) -> float:
    """Exponential respawn backoff for a shard on its ``streak``-th
    consecutive failure (streak 1 = first failure)."""
    return min(cap, base * (2 ** max(0, streak - 1)))


__all__ = [
    "HashRing",
    "LocalShard",
    "ShardError",
    "ShardSpec",
    "backoff_delay",
    "local_shard_argv",
]
