"""Persistent cross-run verdict store (``--verdict-store DIR``).

Verdicts in this reproduction are pure functions of *(engine version,
canonical system, property kind, budget signature)*: the exploration and
analysis layers are deterministic, and the canonical state keys of
:mod:`repro.semantics.canonical` are alpha-invariant.  That makes whole
verdicts cacheable **across processes and across restarts** — which is
what this module does, lifting the in-memory replay speedup of the
hash-consed state cache (``BENCH_canonical.json``) to whole-job
granularity for repeat traffic against ``serve``/``cluster``/``suite``.

Layout — a directory of sharded append-only JSONL segments::

    store/
        seg-<pid>-<token>.jsonl     # one segment per writer process
        seg-compact-<token>.jsonl   # produced by compaction

Every writer owns exactly one segment, so concurrent shard processes
never interleave bytes within one file (Python's buffered appends are
not atomic); readers merge all segments.  Each segment follows the
:mod:`repro.runtime.journal` durability discipline:

* **appends are whole fsync'd lines** (:class:`~repro.runtime.journal.
  Journal`) — an acknowledged record survives a crash;
* **reads are incremental and paranoid** — per-segment byte-offset
  tailing in the style of :class:`~repro.runtime.journal.JournalIndex`:
  a torn final line is buffered until its newline arrives, a corrupt
  complete line is skipped, and a segment that shrank (torn-tail repair
  on reopen) or vanished (compaction) resets its tail.  The failure
  direction is always a **miss** (recompute the verdict), never a wrong
  hit and never an exception on the admission path.

Keying — ``store_key`` hashes ``(engine version, canonical system
signature, kind, budget signature)``.  System signatures are
content-addressed the way the worker interprets targets: zoo entries by
name (the builder is deterministic), inline/``.spi`` sources by the
**alpha-invariant canonical key** of the instantiated process (two
alpha-renamed sources share a store key iff their canonical keys
match), system files by content digest.  Budget signatures carry
``max_states``/``max_depth`` plus the *normalized* ``secret``/``sender``
(the worker's defaults applied, so ``secret=None`` and the default
``"KAB"`` key identically).  Anything that cannot be keyed (unreadable
file, parse error) degrades to ``None`` — a miss, never a fault.

Invalidation — records carry the engine version that computed them and
lookups only return records stamped with the *current*
``repro.__version__``.  There is no TTL: a verdict never goes stale by
sitting still, only by the engine changing.  ``compact()`` rewrites the
store to one segment, dropping superseded duplicates and stale-engine
records; ``invalidate()`` wipes it.

Storability — only *budget-pure* verdicts are written through:
``exhaustion`` absent, or every reason in
:data:`~repro.runtime.exhaustion.BUDGET_REASONS` (``states``/``depth``
are part of the key; ``deadline``/``cancelled``/``fault`` qualified
verdicts depend on wall-clock luck or transient faults and must be
recomputed, never replayed — see :func:`storable_result`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from typing import Mapping, Optional

from repro.core.errors import ReproError
from repro.runtime.exhaustion import BUDGET_REASONS
from repro.runtime.journal import Journal
from repro.runtime.worker import Job

#: Store-record schema version (bumped on incompatible layout changes).
STORE_VERSION = 1

#: Segment filename prefix; everything else in the directory is ignored.
SEGMENT_PREFIX = "seg-"


class StoreError(ReproError):
    """The verdict store directory cannot be used."""


def engine_version() -> str:
    """The engine stamp records carry — bumping :mod:`repro`'s version
    invalidates every stored verdict at once."""
    import repro

    return repro.__version__


# ----------------------------------------------------------------------
# Keying
# ----------------------------------------------------------------------


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _file_digest(path: str) -> str:
    with open(path, "rb") as handle:
        return _digest(handle.read())


def _source_signature(source: str) -> str:
    """Alpha-invariant signature of an inline process source: the
    canonical key of the instantiated system, so two alpha-renamed
    spellings of one process share a store key iff their canonical keys
    match (the property the key-invariance tests pin)."""
    from repro.semantics.system import instantiate
    from repro.syntax.parser import parse_process

    key = instantiate(parse_process(source)).canonical_key()
    return f"src:{_digest(key.encode('utf-8'))}"


def system_signature(target: Mapping[str, str]) -> str:
    """Canonical signature of *what system* a job verifies.

    Mirrors how :mod:`repro.runtime.worker` interprets targets: zoo
    entries are named deterministic builders, sources are canonicalized,
    system files are content-addressed (same bytes, same system — a
    conservative approximation that can only cause misses, never wrong
    hits).
    """
    if "zoo" in target:
        return f"zoo:{target['zoo']}"
    if "source" in target:
        return _source_signature(target["source"])
    if "spi" in target:
        with open(target["spi"], "r", encoding="utf-8") as handle:
            return _source_signature(handle.read())
    if "sysfile" in target:
        return f"sysfile:{_file_digest(target['sysfile'])}"
    if {"impl", "spec"} <= set(target):
        return (
            f"check:{_file_digest(target['impl'])}:{_file_digest(target['spec'])}"
        )
    raise StoreError(f"target {sorted(target)!r} cannot be keyed")


def budget_signature(job: Job) -> dict:
    """The budget axes a verdict depends on, with the worker's defaults
    applied so equivalent spellings key identically (``secret=None`` on
    a zoo secrecy job *is* ``secret="KAB"``)."""
    from repro.semantics.reduction import reduction_mode

    secret = sender = None
    if job.kind == "secrecy":
        secret = job.secret or ("KAB" if "zoo" in job.target else None)
    elif job.kind == "authentication":
        sender = job.sender or "A"
    return {
        "max_states": job.max_states,
        "max_depth": job.max_depth,
        "secret": secret,
        "sender": sender,
        # A budget-truncated verdict can legitimately differ between
        # reduction modes (the horizon covers different states), so a
        # warm hit must never cross modes.
        "reduce": reduction_mode(),
    }


def store_key(job: Job, engine: Optional[str] = None) -> Optional[str]:
    """The verdict-store key for ``job``, or ``None`` when the job
    cannot be keyed (unreadable file, parse error...).

    ``None`` is a *miss*, never an error: key trouble on the admission
    path must cost one recompute, not a failed request.
    """
    try:
        material = {
            "v": STORE_VERSION,
            "engine": engine or engine_version(),
            "kind": job.kind,
            "system": system_signature(job.target),
            "budget": budget_signature(job),
        }
    except Exception:
        return None
    return _digest(
        json.dumps(material, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


def record_checksum(key: str, engine: str, result: Mapping) -> str:
    """Integrity stamp carried by every store record.

    The durability property the store promises is *miss, never wrong
    hit*: a flipped byte inside a record's ``result`` still parses as
    valid JSON, so structural validation alone cannot catch it.  The
    checksum binds ``(key, engine, result)`` together; readers drop any
    record whose stamp does not re-derive.
    """
    material = json.dumps(
        {"key": key, "engine": engine, "result": result},
        sort_keys=True,
        separators=(",", ":"),
    )
    return _digest(material.encode("utf-8"))[:16]


def storable_result(result: object) -> bool:
    """Whether a verdict is a pure function of its store key.

    Exact verdicts are.  Budget-qualified verdicts (``states``/``depth``
    exhaustion) are too — the budget is part of the key.  Verdicts
    qualified by ``deadline``/``cancelled``/``fault`` are **not**: they
    record what a particular run failed to finish, are retryable by
    design (see :class:`~repro.runtime.exhaustion.Exhaustion`), and
    persisting one would freeze a transient degradation into a
    permanent answer.
    """
    if not isinstance(result, Mapping):
        return False
    exhaustion = result.get("exhaustion")
    if exhaustion is None:
        return True
    if not isinstance(exhaustion, Mapping):
        return False
    reasons = exhaustion.get("reasons")
    if not isinstance(reasons, (list, tuple)) or not reasons:
        return False
    return set(reasons) <= BUDGET_REASONS


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------


class _SegmentTail:
    """Incremental reader of one segment file (JournalIndex discipline:
    buffer torn tails, skip corrupt lines, reset on shrink)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0
        self._tail = b""
        #: key -> full store record (latest wins within the segment).
        self.records: dict[str, dict] = {}
        #: Complete lines parsed (including stale-engine ones).
        self.lines = 0
        #: Dead segment: the file vanished (compaction/invalidation).
        self.gone = False

    def refresh(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size < self._offset:
                    self._reset()
                if size == self._offset:
                    return
                handle.seek(self._offset)
                data = handle.read()
        except FileNotFoundError:
            self._reset()
            self.gone = True
            return
        self.gone = False
        self._offset += len(data)
        buffer = self._tail + data
        lines = buffer.split(b"\n")
        self._tail = lines.pop()  # b"" when data ended on a newline
        for line in lines:
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8", errors="replace"))
            except ValueError:
                continue  # damaged line: a cache miss, never a crash
            if (
                not isinstance(record, dict)
                or record.get("type") != "verdict"
                or not isinstance(record.get("key"), str)
                or not isinstance(record.get("result"), dict)
            ):
                continue
            if record.get("sum") != record_checksum(
                record["key"], str(record.get("engine")), record["result"]
            ):
                continue  # damaged payload: a miss, never a wrong hit
            self.lines += 1
            self.records[record["key"]] = record

    def _reset(self) -> None:
        self._offset = 0
        self._tail = b""
        self.records = {}
        self.lines = 0


class VerdictStore:
    """Process-shared persistent verdict cache over ``directory``.

    One instance per process; any number of processes (cluster shards,
    suite runners, servers) may share the directory.  Reads merge every
    segment; writes go to this process's own segment, so writers never
    contend.  All methods fail towards *miss* — a store that cannot be
    read costs recomputes, never failed requests.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.engine = engine_version()
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as err:
            raise StoreError(f"cannot create verdict store {directory!r}: {err}")
        if not os.path.isdir(directory):
            raise StoreError(f"verdict store {directory!r} is not a directory")
        self._tails: dict[str, _SegmentTail] = {}
        self._writer: Optional[Journal] = None
        self._writer_path: Optional[str] = None

    # -- reading -------------------------------------------------------

    def _segments(self) -> list[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            os.path.join(self.directory, name)
            for name in names
            if name.startswith(SEGMENT_PREFIX) and name.endswith(".jsonl")
        )

    def refresh(self) -> None:
        """Absorb new segments and new bytes in known segments."""
        live = set(self._segments())
        for path in live:
            if path not in self._tails:
                self._tails[path] = _SegmentTail(path)
        for path, tail in list(self._tails.items()):
            tail.refresh()
            if tail.gone and path not in live:
                del self._tails[path]

    def lookup(self, key: Optional[str]) -> Optional[dict]:
        """The stored verdict ``result`` for ``key`` under the current
        engine version, or ``None`` (miss).  Refreshes first."""
        record = self.record(key)
        return record["result"] if record is not None else None

    def record(self, key: Optional[str]) -> Optional[dict]:
        """Like :meth:`lookup` but returns the whole store record."""
        if key is None:
            return None
        self.refresh()
        for tail in self._tails.values():
            record = tail.records.get(key)
            if record is not None and record.get("engine") == self.engine:
                return record
        return None

    def __contains__(self, key: str) -> bool:
        return self.record(key) is not None

    # -- writing -------------------------------------------------------

    def _ensure_writer(self) -> Journal:
        if self._writer is None:
            token = uuid.uuid4().hex[:8]
            self._writer_path = os.path.join(
                self.directory, f"{SEGMENT_PREFIX}{os.getpid()}-{token}.jsonl"
            )
            self._writer = Journal(self._writer_path, fresh=False)
        return self._writer

    def put(
        self,
        key: Optional[str],
        result: Mapping,
        kind: Optional[str] = None,
        protocol: Optional[str] = None,
    ) -> bool:
        """Write one verdict through (durably, fsync'd).

        Refuses non-:func:`storable_result` verdicts and un-keyed jobs
        (``key=None``); skips keys that already have a current-engine
        record (concurrent writers can still race one in — duplicates
        are harmless, compaction removes them).  Returns whether a
        record was appended.
        """
        if key is None or not storable_result(result):
            return False
        if self.record(key) is not None:
            return False
        record = {
            "type": "verdict",
            "key": key,
            "engine": self.engine,
            "time": time.time(),
            "result": dict(result),
            "sum": record_checksum(key, self.engine, dict(result)),
        }
        if kind is not None:
            record["kind"] = kind
        if protocol is not None:
            record["protocol"] = protocol
        self._ensure_writer().append(record)
        return True

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._writer_path = None

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- maintenance ---------------------------------------------------

    def stats(self) -> dict:
        """Occupancy snapshot (refreshes first)."""
        self.refresh()
        engines: dict[str, int] = {}
        keys: set[str] = set()
        records = 0
        for tail in self._tails.values():
            for record in tail.records.values():
                records += 1
                engine = str(record.get("engine"))
                engines[engine] = engines.get(engine, 0) + 1
                if engine == self.engine:
                    keys.add(record["key"])
        size = 0
        for path in self._segments():
            try:
                size += os.path.getsize(path)
            except OSError:
                pass
        return {
            "directory": self.directory,
            "engine": self.engine,
            "segments": len(self._tails),
            "bytes": size,
            "records": records,
            "keys": len(keys),
            "engines": engines,
        }

    def compact(self) -> dict:
        """Rewrite the store as one fresh segment: latest record per
        key, current engine only; stale-engine records and superseded
        duplicates are dropped.

        Crash-safe in the append-only way: the survivor segment is
        fully written and fsync'd *before* any old segment is unlinked;
        a crash in between leaves duplicates, which are harmless.
        Intended as a maintenance operation (``repro-spi store
        compact``) — a writer process that races it simply starts a new
        segment on its next write.

        Live-writer safe: a record another process appends to an open
        segment *after* our tail read would be silently lost if we
        unlinked that segment.  So after the survivor segment is
        durable, every old segment is re-tailed (late records are
        appended to the survivor segment too), and a segment that has
        grown past its final tailed offset by unlink time is left in
        place — the duplicate records it holds are harmless and the
        next compaction retires it.
        """
        before = self.stats()
        self.close()  # our own segment (if any) is compacted too
        old = self._segments()
        for path in old:
            if path not in self._tails:
                self._tails[path] = _SegmentTail(path)
        survivors: dict[str, dict] = {}

        def absorb() -> None:
            for tail in self._tails.values():
                tail.refresh()
                for key, record in tail.records.items():
                    if record.get("engine") == self.engine:
                        survivors[key] = record

        absorb()
        compact_path = os.path.join(
            self.directory, f"{SEGMENT_PREFIX}compact-{uuid.uuid4().hex[:8]}.jsonl"
        )
        written: set[str] = set()
        journal: Optional[Journal] = None
        try:
            if survivors:
                journal = Journal(compact_path, fresh=True)
                for key in sorted(survivors):
                    journal.append(survivors[key])
                written = set(survivors)
            # Final re-tail: catch records a live writer appended to an
            # old segment between our first read and now.
            absorb()
            late = set(survivors) - written
            if late:
                if journal is None:
                    journal = Journal(compact_path, fresh=True)
                for key in sorted(late):
                    journal.append(survivors[key])
        finally:
            if journal is not None:
                journal.close()
        kept = 0
        for path in old:
            if path == compact_path:
                continue
            tail = self._tails.get(path)
            try:
                size = os.path.getsize(path)
            except OSError:
                size = None  # already gone
            if size is not None and (tail is None or size > tail._offset):
                kept += 1  # grew since the final tail read: do not unlink
                continue
            try:
                os.unlink(path)
            except OSError:
                pass
        self._tails = {}
        after = self.stats()
        return {
            "before": before,
            "after": after,
            "dropped_records": before["records"] - after["records"],
            "kept_segments": kept,
        }

    def verify(self, replay: bool = True, max_failures: int = 20) -> dict:
        """Integrity pass over every segment (``repro-spi store verify``).

        Unlike the read path — which silently *skips* anything damaged,
        because a miss is the right failure direction for a cache — this
        pass **reports** every complete line that is not a valid,
        checksummed store record.  For current-engine records whose
        result carries a ``witness``, the witness is additionally
        validated: checksum always, and (with ``replay=True``) a full
        independent replay against the unreduced, uncached transition
        relation.  A torn final line is counted separately — a
        crash-truncated tail is expected, not corruption.
        """
        self.refresh()
        report: dict = {
            "directory": self.directory,
            "engine": self.engine,
            "segments": 0,
            "records": 0,
            "stale_engine": 0,
            "torn": 0,
            "corrupt": 0,
            "witnesses": 0,
            "witness_ok": 0,
            "witness_failed": 0,
            "failures": [],
        }

        def fail(description: str) -> None:
            if len(report["failures"]) < max_failures:
                report["failures"].append(description)

        for path in self._segments():
            report["segments"] += 1
            name = os.path.basename(path)
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError as err:
                report["corrupt"] += 1
                fail(f"{name}: unreadable: {err}")
                continue
            lines = data.split(b"\n")
            if lines.pop():  # bytes after the last newline
                report["torn"] += 1
            for lineno, line in enumerate(lines, start=1):
                if not line:
                    continue
                try:
                    record = json.loads(line.decode("utf-8", errors="replace"))
                except ValueError:
                    report["corrupt"] += 1
                    fail(f"{name}:{lineno}: not valid JSON")
                    continue
                if (
                    not isinstance(record, dict)
                    or record.get("type") != "verdict"
                    or not isinstance(record.get("key"), str)
                    or not isinstance(record.get("result"), dict)
                ):
                    report["corrupt"] += 1
                    fail(f"{name}:{lineno}: not a store record")
                    continue
                if record.get("sum") != record_checksum(
                    record["key"], str(record.get("engine")), record["result"]
                ):
                    report["corrupt"] += 1
                    fail(f"{name}:{lineno}: record checksum mismatch")
                    continue
                report["records"] += 1
                if record.get("engine") != self.engine:
                    report["stale_engine"] += 1
                    continue
                witness = record["result"].get("witness")
                if witness is None:
                    continue
                report["witnesses"] += 1
                if replay:
                    from repro.semantics.replay import replay_witness

                    outcome = replay_witness(witness)
                    ok, reason = outcome.ok, outcome.reason
                else:
                    from repro.analysis.witness import Witness, WitnessError

                    try:
                        ok = Witness.from_json(witness).verify_checksum()
                        reason = None if ok else "witness checksum mismatch"
                    except WitnessError as err:
                        ok, reason = False, str(err)
                if ok:
                    report["witness_ok"] += 1
                else:
                    report["witness_failed"] += 1
                    fail(
                        f"{name}:{lineno}: witness for key "
                        f"{record['key'][:12]}…: {reason}"
                    )
        report["ok"] = report["corrupt"] == 0 and report["witness_failed"] == 0
        return report

    def invalidate(self) -> int:
        """Delete every segment; returns the number of records wiped.

        Rarely needed by hand — an engine-version bump already makes
        every stored record invisible to lookups.
        """
        count = self.stats()["records"]
        self.close()
        for path in self._segments():
            try:
                os.unlink(path)
            except OSError:
                pass
        self._tails = {}
        return count


__all__ = [
    "STORE_VERSION",
    "StoreError",
    "VerdictStore",
    "budget_signature",
    "engine_version",
    "record_checksum",
    "storable_result",
    "store_key",
    "system_signature",
]
