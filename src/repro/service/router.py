"""The fault-tolerant cluster router behind ``repro-spi cluster``.

One router process owns a fleet of ``repro-spi serve`` shards and makes
them look like a single verification service that survives shard death:

* **sharding** — requests are routed by
  :func:`~repro.service.protocol.protocol_key` over a consistent-hash
  ring (:class:`~repro.service.shards.HashRing`), so each protocol's
  breaker history, checkpoints, and journal live on exactly one shard
  and a poisonous protocol is a one-shard problem;
* **shard supervision** — local shards are spawned as child processes
  and respawned with exponential backoff when they die; each respawn
  reuses the shard's journal, and the shard replays it at startup to
  rebuild its circuit-breaker state (``--rebuild-breakers``);
* **active health checks** — a :class:`~repro.service.health
  .HealthMonitor` pings every shard on an interval; consecutive
  failures (or a ``draining`` pong) open the shard's breaker and eject
  it from the ring, remapping only its arc to the survivors;
* **failover with exactly-once verdicts** — a request in flight on a
  dying shard is *re-driven*: the router first consults the dead
  shard's journal (:class:`~repro.runtime.journal.JournalIndex`) using
  the request's deterministic id as an idempotency key — a journaled
  verdict is returned as-is (``cached: true``), never recomputed and
  never double-journaled; only an un-verdicted request is resubmitted
  to the next owner on the ring;
* **graceful cluster drain** — SIGTERM closes the listeners, refuses
  new requests with ``draining``, waits (bounded) for in-flight
  forwards, SIGTERMs every local shard so each runs its own journal-
  flushing drain, and exits 0.

Concurrency model: the router is I/O-bound glue, not a compute engine,
so it uses one blocking thread per client connection (requests are rare
and heavy — seconds of verification each) around a small locked core
(ring membership, in-flight registry).  The main thread runs the
supervision loop: accept, respawn, health sweep, drain.
"""

from __future__ import annotations

import os
import selectors
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.errors import ReproError
from repro.obs.metrics import Metrics, current_metrics
from repro.obs.trace import trace_event
from repro.runtime.atomic import atomic_write_json
from repro.runtime.journal import JournalIndex
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.framing import FramingError, recv_frame, send_frame
from repro.service.health import HealthMonitor
from repro.service.protocol import ProtocolError, Request, parse_request
from repro.service.shards import (
    HashRing,
    LocalShard,
    ShardSpec,
    backoff_delay,
    local_shard_argv,
)


class ClusterError(ReproError):
    """The cluster was misconfigured (no shards, no listener...)."""


@dataclass(frozen=True)
class RouterConfig:
    """Everything ``repro-spi cluster`` can tune.

    ``dir`` is the cluster's working directory: shard sockets, journals,
    checkpoint dirs, log files, and the ``cluster.json`` discovery file
    all live under it, so one directory is the whole cluster's durable
    state.
    """

    dir: str
    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: Optional[int] = None
    #: Local shards to spawn and supervise.
    shards: int = 0
    #: Pre-started remote shard addresses (``host:port`` or socket
    #: paths); registered in the ring but not supervised.
    remote: tuple = ()
    workers_per_shard: int = 2
    queue_limit: int = 64
    retries: int = 1
    job_deadline: Optional[float] = None
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: Passed to each local shard as its ``--drain-grace``.
    shard_drain_grace: float = 10.0
    #: How long the router's own drain waits for in-flight forwards
    #: before terminating shards anyway.
    drain_grace: float = 15.0
    health_interval: float = 1.0
    health_timeout: float = 2.0
    #: Consecutive health failures that eject a shard.
    health_failures: int = 2
    #: Seconds an ejected shard waits before its recovery probe.
    health_cooldown: float = 2.0
    respawn_base: float = 0.25
    respawn_cap: float = 8.0
    vnodes: int = 64
    #: Per-forwarded-request socket timeout (a shard that neither
    #: replies nor dies within this is treated as failed).
    forward_timeout: float = 600.0
    allow_fault_injection: bool = False
    tick: float = 0.05
    python: str = sys.executable


@dataclass(eq=False)
class _Shard:
    """Router-side view of one shard: spec, optional local process,
    journal index (the idempotency oracle), in-flight request ids."""

    spec: ShardSpec
    process: Optional[LocalShard] = None
    journal: Optional[JournalIndex] = None
    inflight: set = field(default_factory=set)
    exit_handled: bool = False

    @property
    def id(self) -> str:
        return self.spec.id

    def printable_address(self) -> str:
        family, target = self.spec.address
        return target if family == "unix" else f"{target[0]}:{target[1]}"


class Router:
    """See the module docstring; constructed from a
    :class:`RouterConfig`, driven by :meth:`serve_forever`."""

    def __init__(self, config: RouterConfig) -> None:
        if config.socket_path is None and config.port is None:
            raise ClusterError("cluster needs a unix socket path and/or a TCP port")
        if config.shards < 1 and not config.remote:
            raise ClusterError("cluster needs local shards (--shards) or --remote")
        self.config = config
        self.metrics = Metrics()
        self.health = HealthMonitor(
            interval=config.health_interval,
            timeout=config.health_timeout,
            threshold=config.health_failures,
            cooldown=config.health_cooldown,
        )
        self._lock = threading.RLock()
        self._shards: dict[str, _Shard] = {}
        self._ring = HashRing(vnodes=config.vnodes)
        self._build_shards()
        self._selector = selectors.DefaultSelector()
        self._listeners: list[socket.socket] = []
        self._conns: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        self._drain = threading.Event()
        self._draining = False
        self._started_at = time.monotonic()
        self._bound = False
        self.tcp_address: Optional[tuple[str, int]] = None

    # -- construction --------------------------------------------------

    def _build_shards(self) -> None:
        cfg = self.config
        os.makedirs(cfg.dir, exist_ok=True)
        for index in range(cfg.shards):
            shard_id = f"shard-{index:02d}"
            sock = os.path.join(cfg.dir, f"{shard_id}.sock")
            journal = os.path.join(cfg.dir, f"{shard_id}.jsonl")
            checkpoints = os.path.join(cfg.dir, f"{shard_id}-checkpoints")
            spec = ShardSpec(
                id=shard_id, address=("unix", sock), journal_path=journal,
                local=True,
            )
            argv = local_shard_argv(
                socket_path=sock,
                journal_path=journal,
                checkpoint_dir=checkpoints,
                workers=cfg.workers_per_shard,
                queue_limit=cfg.queue_limit,
                retries=cfg.retries,
                job_deadline=cfg.job_deadline,
                breaker_threshold=cfg.breaker_threshold,
                breaker_cooldown=cfg.breaker_cooldown,
                drain_grace=cfg.shard_drain_grace,
                allow_fault_injection=cfg.allow_fault_injection,
                python=cfg.python,
            )
            self._shards[shard_id] = _Shard(
                spec=spec,
                process=LocalShard(
                    spec=spec, argv=argv,
                    log_path=os.path.join(cfg.dir, f"{shard_id}.log"),
                ),
                journal=JournalIndex(journal),
            )
        for index, address in enumerate(cfg.remote):
            shard_id = f"remote-{index:02d}"
            from repro.service.client import parse_address

            spec = ShardSpec(
                id=shard_id,
                address=parse_address(address) if isinstance(address, str) else address,
                local=False,
            )
            self._shards[shard_id] = _Shard(spec=spec)
        for shard in self._shards.values():
            self.health.watch(shard.id, shard.spec.address)
        self._rebuild_ring()

    def _rebuild_ring(self) -> None:
        with self._lock:
            self._ring = HashRing(self.health.healthy_ids(), vnodes=self.config.vnodes)

    # -- lifecycle -----------------------------------------------------

    def bind(self) -> None:
        if self._bound:
            return
        cfg = self.config
        if cfg.socket_path is not None:
            if os.path.exists(cfg.socket_path):
                os.unlink(cfg.socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(cfg.socket_path)
            self._add_listener(listener)
        if cfg.port is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((cfg.host or "127.0.0.1", cfg.port))
            self.tcp_address = listener.getsockname()[:2]
            self._add_listener(listener)
        self._bound = True

    def _add_listener(self, listener: socket.socket) -> None:
        listener.listen(64)
        listener.setblocking(False)
        self._selector.register(listener, selectors.EVENT_READ, None)
        self._listeners.append(listener)

    def spawn_shards(self) -> None:
        """Start every local shard (idempotent)."""
        now = time.monotonic()
        for shard in self._shards.values():
            if shard.process is not None and not shard.process.alive():
                shard.process.spawn()
                shard.exit_handled = False
                self.metrics.inc("cluster.spawns")
                trace_event("cluster.spawn", shard=shard.id, pid=shard.process.pid)
                shard.process.next_spawn_at = now

    def request_drain(self) -> None:
        """Ask the cluster to drain (thread- and signal-safe)."""
        self._drain.set()

    @property
    def draining(self) -> bool:
        return self._draining or self._drain.is_set()

    def serve_forever(self) -> int:
        """Run until drained; returns the process exit status (``0``)."""
        self.bind()
        self.spawn_shards()
        self.write_discovery()
        try:
            while True:
                if self._drain.is_set():
                    break
                self._accept_ready(self.config.tick)
                now = time.monotonic()
                self._supervise(now)
                self._sweep_health(now)
                with self._lock:
                    self.metrics.set_gauge(
                        "cluster.inflight",
                        sum(len(s.inflight) for s in self._shards.values()),
                    )
                    self.metrics.set_gauge("cluster.live_shards", len(self._ring))
            self._drain_cluster()
        finally:
            self._shutdown()
        return 0

    # -- accept / per-connection handling ------------------------------

    def _accept_ready(self, timeout: float) -> None:
        for key, _ in self._selector.select(timeout):
            listener = key.fileobj
            try:
                conn, _addr = listener.accept()
            except OSError:
                continue
            conn.settimeout(self.config.forward_timeout)
            with self._lock:
                self._conns.add(conn)
            self.metrics.inc("cluster.connections")
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(conn)
                except (FramingError, OSError):
                    break
                if frame is None:
                    break
                reply = self.handle_frame(frame)
                try:
                    send_frame(conn, reply)
                except (FramingError, OSError):
                    break
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def handle_frame(self, frame: dict) -> dict:
        """Answer one request frame (control inline, the rest routed)."""
        self.metrics.inc("cluster.requests")
        try:
            request = parse_request(frame)
        except ProtocolError as err:
            self.metrics.inc("cluster.errors")
            rid = frame.get("id") if isinstance(frame, dict) else None
            return protocol.response(rid, protocol.ERROR, error=str(err))
        if request.kind == "ping":
            with self._lock:
                live = len(self._ring)
            return protocol.response(
                request.id, protocol.PONG, server="repro-spi-cluster",
                pid=os.getpid(), draining=self.draining, shards=live,
            )
        if request.kind == "status":
            return protocol.response(request.id, protocol.STATUS, **self.status())
        if self.draining:
            return protocol.response(
                request.id, protocol.DRAINING, error="cluster is draining"
            )
        return self._route(frame, request)

    # -- routing & failover --------------------------------------------

    def _route(self, frame: dict, request: Request) -> dict:
        key = protocol.protocol_key(request.target)
        # Forward a normalized copy: the id is pinned to the parsed
        # (deterministic) id so the shard journals under the same key
        # the router dedupes on during failover.
        outbound = dict(frame)
        outbound["id"] = request.id
        tried: set[str] = set()
        while True:
            shard = self._pick(key, tried)
            if shard is None:
                self.metrics.inc("cluster.no_shard")
                return protocol.response(
                    request.id,
                    protocol.OVERLOADED,
                    error="no live shard owns this key (cluster warming up "
                    "or every owner is ejected)",
                    retry_after=round(self.config.health_interval * 2, 3),
                )
            with self._lock:
                shard.inflight.add(request.id)
            self.metrics.inc("cluster.forwarded")
            trace_event("cluster.route", job=request.id, shard=shard.id)
            try:
                reply = self._forward(shard, frame=outbound, request=request)
            except (ServiceUnavailable, FramingError, OSError) as err:
                detail = f"{type(err).__name__}: {err}"
            else:
                reply.setdefault("shard", shard.id)
                return reply
            finally:
                with self._lock:
                    shard.inflight.discard(request.id)
            # The shard failed mid-flight: treat it as health evidence,
            # then fail over with journal-keyed idempotency.
            tried.add(shard.id)
            self.metrics.inc("cluster.failovers")
            trace_event(
                "cluster.failover", job=request.id, shard=shard.id, detail=detail
            )
            if self.health.note_failure(shard.id, detail):
                self.metrics.inc("cluster.ejected")
                self._rebuild_ring()
            cached = self._journaled_verdict(shard, request.id)
            if cached is not None:
                self.metrics.inc("cluster.dedupe_hits")
                trace_event("cluster.dedupe", job=request.id, shard=shard.id)
                return cached
            if self.draining:
                return protocol.response(
                    request.id, protocol.DRAINING, error="cluster is draining"
                )

    def _pick(self, key: str, tried: set) -> Optional[_Shard]:
        with self._lock:
            owner = self._ring.owner(key, exclude=frozenset(tried))
            return self._shards[owner] if owner is not None else None

    def _forward(self, shard: _Shard, frame: dict, request: Request) -> dict:
        timeout = self.config.forward_timeout
        if request.deadline is not None:
            # No point outliving the shard's own budget by much.
            timeout = min(timeout, request.deadline + 30.0)
        client = ServiceClient(shard.spec.address, timeout=timeout, retries=0)
        return client.call(dict(frame))

    def _journaled_verdict(self, shard: _Shard, job_id: str) -> Optional[dict]:
        """The idempotency lookup: a verdict the dead shard already
        journaled is the answer — re-driving it would recompute (and
        double-journal) work that already completed."""
        if shard.journal is None:
            return None
        record = shard.journal.result(job_id)
        if record is None:
            return None
        status = protocol.OK if record.get("status") == "ok" else protocol.DEGRADED
        return protocol.response(
            job_id,
            status,
            result=record.get("result"),
            error=record.get("error"),
            shard=shard.id,
            cached=True,
        )

    # -- supervision ---------------------------------------------------

    def _supervise(self, now: float) -> None:
        """Notice dead local shards, eject them, respawn with backoff."""
        for shard in self._shards.values():
            process = shard.process
            if process is None:
                continue
            if process.alive():
                continue
            if not shard.exit_handled:
                shard.exit_handled = True
                process.fail_streak += 1
                detail = f"shard process exited (status {process.exit_code})"
                self.metrics.inc("cluster.shard_deaths")
                trace_event(
                    "cluster.shard_exit", shard=shard.id, status=process.exit_code
                )
                if self.health.eject(shard.id, detail):
                    self.metrics.inc("cluster.ejected")
                    self._rebuild_ring()
                process.next_spawn_at = now + backoff_delay(
                    self.config.respawn_base,
                    self.config.respawn_cap,
                    process.fail_streak,
                )
            if now >= process.next_spawn_at:
                process.spawn()
                shard.exit_handled = False
                self.metrics.inc("cluster.respawns")
                trace_event("cluster.respawn", shard=shard.id, pid=process.pid)

    def _sweep_health(self, now: float) -> None:
        transitions = self.health.sweep(now)
        if not transitions:
            return
        for shard_id, what in transitions:
            shard = self._shards.get(shard_id)
            self.metrics.inc(f"cluster.{what}")
            trace_event(f"cluster.{what}", shard=shard_id)
            if (
                what == "recovered"
                and shard is not None
                and shard.process is not None
            ):
                shard.process.fail_streak = 0
        self._rebuild_ring()
        self.write_discovery()

    # -- observability -------------------------------------------------

    def status(self) -> dict:
        with self._lock:
            shard_rows = {}
            for shard in self._shards.values():
                process = shard.process
                shard_rows[shard.id] = {
                    "address": shard.printable_address(),
                    "local": shard.spec.local,
                    "pid": process.pid if process is not None else None,
                    "alive": process.alive() if process is not None else None,
                    "restarts": process.restarts if process is not None else 0,
                    "inflight": len(shard.inflight),
                    "health": self.health.snapshot().get(shard.id),
                }
            members = sorted(self._ring.members)
        return {
            "cluster": {
                "pid": os.getpid(),
                "draining": self.draining,
                "uptime": round(time.monotonic() - self._started_at, 3),
                "shards": len(self._shards),
                "healthy": len(members),
            },
            "shards": shard_rows,
            "ring": {"vnodes": self.config.vnodes, "members": members},
            "metrics": self.metrics.to_json(),
        }

    def write_discovery(self) -> None:
        """Publish ``cluster.json``: where the router listens and which
        shards exist — ``submit --cluster DIR`` reads this."""
        payload = {
            "router": {
                "socket": self.config.socket_path,
                "tcp": list(self.tcp_address) if self.tcp_address else None,
            },
            "shards": {
                shard.id: {
                    "address": shard.printable_address(),
                    "local": shard.spec.local,
                    "journal": shard.spec.journal_path,
                }
                for shard in self._shards.values()
            },
        }
        try:
            atomic_write_json(os.path.join(self.config.dir, "cluster.json"), payload)
        except OSError:
            pass  # discovery is advisory; routing must not die for it

    # -- drain & shutdown ----------------------------------------------

    def _drain_cluster(self) -> None:
        """The SIGTERM path: stop accepting, wait for in-flight
        forwards, then propagate the drain to every local shard."""
        self._draining = True
        trace_event(
            "cluster.drain",
            inflight=sum(len(s.inflight) for s in self._shards.values()),
        )
        self._close_listeners()
        deadline = time.monotonic() + self.config.drain_grace
        while time.monotonic() < deadline:
            with self._lock:
                if not any(s.inflight for s in self._shards.values()):
                    break
            time.sleep(self.config.tick)
        # Propagate: each shard runs its own graceful drain (finishes or
        # kills in-flight work, flushes its journal) and exits 0.
        for shard in self._shards.values():
            if shard.process is not None:
                shard.process.terminate()
        grace = self.config.shard_drain_grace + 5.0
        for shard in self._shards.values():
            process = shard.process
            if process is None:
                continue
            if process.wait(grace) is None:
                process.kill()
                process.wait(5.0)
            trace_event(
                "cluster.shard_drained", shard=shard.id, status=process.exit_code
            )

    def _close_listeners(self) -> None:
        for listener in self._listeners:
            try:
                self._selector.unregister(listener)
            except (KeyError, ValueError, OSError):
                pass
            try:
                listener.close()
            except OSError:
                pass
        self._listeners.clear()
        if self._bound and self.config.socket_path is not None:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    def _shutdown(self) -> None:
        self._draining = True
        self._close_listeners()
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for shard in self._shards.values():
            if shard.process is not None:
                if shard.process.alive():
                    shard.process.kill()
                    shard.process.wait(5.0)
                shard.process.close()
        self._selector.close()
        self.write_discovery()
        ambient = current_metrics()
        if ambient is not None:
            ambient.absorb(self.metrics)


def run_cluster(config: RouterConfig) -> int:
    """Blocking entry point used by the CLI: bind, install
    drain-on-SIGINT/SIGTERM handlers, route until drained.  Returns the
    exit status (``0`` after a clean drain)."""
    from repro.runtime.lifecycle import drain_signals

    router = Router(config)
    router.bind()
    with drain_signals(on_signal=lambda signum: router.request_drain()) as drain:
        if drain.is_set():
            router.request_drain()

        def _watch_drain() -> None:
            drain.wait()
            router.request_drain()

        watcher = threading.Thread(target=_watch_drain, daemon=True)
        watcher.start()
        return router.serve_forever()
