"""The fault-tolerant cluster router behind ``repro-spi cluster``.

One router process owns a fleet of ``repro-spi serve`` shards and makes
them look like a single verification service that survives shard death:

* **sharding** — requests are routed by
  :func:`~repro.service.protocol.protocol_key` over a consistent-hash
  ring (:class:`~repro.service.shards.HashRing`), so each protocol's
  breaker history, checkpoints, and journal live on exactly one shard
  and a poisonous protocol is a one-shard problem;
* **shard supervision** — local shards are spawned as child processes
  and respawned with exponential backoff when they die; each respawn
  reuses the shard's journal, and the shard replays it at startup to
  rebuild its circuit-breaker state (``--rebuild-breakers``);
* **active health checks** — a :class:`~repro.service.health
  .HealthMonitor` pings every shard on an interval; consecutive
  failures (or a ``draining`` pong) open the shard's breaker and eject
  it from the ring, remapping only its arc to the survivors;
* **failover with exactly-once verdicts** — a request in flight on a
  dying shard is *re-driven*: the router first consults the dead
  shard's journal (:class:`~repro.runtime.journal.JournalIndex`) using
  the request's deterministic id as an idempotency key — a journaled
  verdict is returned as-is (``cached: true``), never recomputed and
  never double-journaled; only an un-verdicted request is resubmitted
  to the next owner on the ring;
* **graceful cluster drain** — SIGTERM closes the listeners, refuses
  new requests with ``draining``, waits (bounded) for in-flight
  forwards, SIGTERMs every local shard so each runs its own journal-
  flushing drain, and exits 0;
* **router redundancy** — the primary stamps a heartbeat into
  ``cluster.json``; a :class:`Standby` (``cluster --standby``) watches
  it, confirms primary death with pings, then adopts the orphaned shard
  processes by pid, rebuilds the completed-work picture from the shard
  journals, binds its own listeners, and rewrites discovery so
  refreshing clients follow (see the :class:`Standby` docstring);
* **live resharding** — ``SIGHUP`` (reading ``DIR/resize.json``) or a
  ``{"kind": "resize", "shards": N}`` control frame grows/shrinks the
  local fleet at runtime; the consistent-hash ring moves only the
  remapped arcs, a shrinking shard drains its in-flight work and
  retires with its journal kept as a dedupe oracle;
* **network chaos** (tests) — with ``--chaos-plan`` every router->shard
  hop runs through a seeded fault-injecting proxy
  (:mod:`repro.service.chaos`).

Concurrency model: the router is I/O-bound glue, not a compute engine,
so it uses one blocking thread per client connection (requests are rare
and heavy — seconds of verification each) around a small locked core
(ring membership, in-flight registry).  The main thread runs the
supervision loop: accept, respawn, health sweep, drain.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import random
import selectors
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.core.errors import ReproError
from repro.obs.metrics import Metrics, current_metrics
from repro.obs.trace import trace_event
from repro.runtime.atomic import atomic_write_json
from repro.runtime.journal import JournalIndex
from repro.service import protocol
from repro.service.breaker import CLOSED, BreakerBoard
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.framing import FramingError, recv_frame, send_frame
from repro.service.health import HealthMonitor
from repro.service.protocol import ProtocolError, Request, parse_request
from repro.service.shards import (
    HashRing,
    LocalShard,
    ShardSpec,
    backoff_delay,
    local_shard_argv,
)


def _cached_response(job_id: str, shard_id: str, record: dict) -> dict:
    """A client reply replayed from a journaled verdict record — ``ok``
    records answer OK, fault records answer DEGRADED, both marked
    ``cached`` so callers can tell a replay from a fresh computation."""
    status = protocol.OK if record.get("status") == "ok" else protocol.DEGRADED
    return protocol.response(
        job_id,
        status,
        result=record.get("result"),
        error=record.get("error"),
        shard=shard_id,
        cached=True,
    )


class ClusterError(ReproError):
    """The cluster was misconfigured (no shards, no listener...)."""


@dataclass(frozen=True)
class RouterConfig:
    """Everything ``repro-spi cluster`` can tune.

    ``dir`` is the cluster's working directory: shard sockets, journals,
    checkpoint dirs, log files, and the ``cluster.json`` discovery file
    all live under it, so one directory is the whole cluster's durable
    state.
    """

    dir: str
    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: Optional[int] = None
    #: Local shards to spawn and supervise.
    shards: int = 0
    #: Pre-started remote shard addresses (``host:port`` or socket
    #: paths); registered in the ring but not supervised.
    remote: tuple = ()
    workers_per_shard: int = 2
    queue_limit: int = 64
    retries: int = 1
    job_deadline: Optional[float] = None
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: Passed to each local shard as its ``--drain-grace``.
    shard_drain_grace: float = 10.0
    #: How long the router's own drain waits for in-flight forwards
    #: before terminating shards anyway.
    drain_grace: float = 15.0
    health_interval: float = 1.0
    health_timeout: float = 2.0
    #: Consecutive health failures that eject a shard.
    health_failures: int = 2
    #: Seconds an ejected shard waits before its recovery probe.
    health_cooldown: float = 2.0
    respawn_base: float = 0.25
    respawn_cap: float = 8.0
    vnodes: int = 64
    #: Per-forwarded-request socket timeout (a shard that neither
    #: replies nor dies within this is treated as failed).
    forward_timeout: float = 600.0
    allow_fault_injection: bool = False
    tick: float = 0.05
    python: str = sys.executable
    #: Optional :class:`~repro.service.chaos.ChaosPlan`: every
    #: router->shard hop (forwards *and* health probes) is run through a
    #: seeded fault-injecting proxy.  Requires ``allow_fault_injection``
    #: — chaos is a test instrument, never a production accident.
    chaos: Optional[Any] = None
    #: How often the primary stamps a liveness heartbeat into
    #: ``cluster.json`` (what a standby watches).
    heartbeat_interval: float = 1.0
    #: How long a standby tolerates a stale heartbeat before it starts
    #: confirming primary death with pings.
    takeover_after: float = 5.0
    #: One shared persistent :class:`~repro.service.store.VerdictStore`
    #: directory passed to every local shard (``cluster
    #: --verdict-store``): repeat traffic, failover re-drives, and
    #: resharding moves become store hits on whichever shard the ring
    #: picks, across router restarts.
    verdict_store: Optional[str] = None
    #: Fraction (0..1) of ``ok`` non-violated verdicts re-run on a
    #: dedicated cross-check shard that computes with ``--reduce none
    #: --no-state-cache`` (and no verdict store): an independent
    #: derivation sharing none of the reduction/caching machinery with
    #: the shard being audited.  A divergence is journaled to
    #: ``DIR/crosscheck.jsonl`` and quarantines the protocol (its
    #: cross-check breaker opens; requests answer DEGRADED until a
    #: post-cooldown probe agrees again).  0 disables.
    cross_check: float = 0.0


@dataclass(eq=False)
class _Shard:
    """Router-side view of one shard: spec, optional local process,
    journal index (the idempotency oracle), in-flight request ids."""

    spec: ShardSpec
    process: Optional[LocalShard] = None
    journal: Optional[JournalIndex] = None
    inflight: set = field(default_factory=set)
    exit_handled: bool = False
    #: Chaos proxy on this hop (``--chaos-plan``) and the address the
    #: router actually dials — the proxy's listener when present.
    proxy: Optional[Any] = None
    via: Optional[Any] = None
    #: Set while a resize is draining this shard out of the fleet: the
    #: supervisor must not respawn it, new keys no longer map to it.
    retiring: bool = False
    #: Serializes JournalIndex access (several forwarding threads can
    #: dedupe against the same journal at once; the index's offset
    #: bookkeeping is not re-entrant).
    journal_lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def id(self) -> str:
        return self.spec.id

    @property
    def route_address(self) -> Any:
        return self.via if self.via is not None else self.spec.address

    def journaled(self, job_id: str) -> Optional[dict]:
        """Thread-safe journal lookup."""
        if self.journal is None:
            return None
        with self.journal_lock:
            return self.journal.result(job_id)

    def pending_claim(self, job_id: str) -> Optional[dict]:
        """Thread-safe unresolved-claim lookup.  Deliberately no
        refresh: every routing decision is preceded by a dedupe sweep
        (:meth:`journaled`) that already tailed this journal."""
        if self.journal is None:
            return None
        with self.journal_lock:
            return self.journal.pending_claim(job_id)

    def known_result(self, job_id: str) -> Optional[dict]:
        """Thread-safe refresh-free result lookup (see
        :meth:`pending_claim`)."""
        if self.journal is None:
            return None
        with self.journal_lock:
            return self.journal.known_result(job_id)

    def printable_address(self) -> str:
        family, target = self.spec.address
        return target if family == "unix" else f"{target[0]}:{target[1]}"


class Router:
    """See the module docstring; constructed from a
    :class:`RouterConfig`, driven by :meth:`serve_forever`."""

    def __init__(
        self, config: RouterConfig, adopt: Optional[Mapping[str, dict]] = None
    ) -> None:
        if config.socket_path is None and config.port is None:
            raise ClusterError("cluster needs a unix socket path and/or a TCP port")
        if config.shards < 1 and not config.remote and not adopt:
            raise ClusterError("cluster needs local shards (--shards) or --remote")
        if config.chaos is not None and not config.allow_fault_injection:
            raise ClusterError(
                "--chaos-plan requires --allow-fault-injection (chaos is a "
                "test instrument)"
            )
        self.config = config
        self.metrics = Metrics()
        self._rng = random.Random()
        self.health = HealthMonitor(
            interval=config.health_interval,
            timeout=config.health_timeout,
            threshold=config.health_failures,
            cooldown=config.health_cooldown,
            jitter=self._rng.random,
        )
        #: "primary", or "standby-promoted" after a takeover.
        self.role = "primary" if adopt is None else "standby-promoted"
        self._adopt = dict(adopt) if adopt is not None else None
        self._lock = threading.RLock()
        self._shards: dict[str, _Shard] = {}
        #: Shards removed by a resize; their journals stay live as
        #: dedupe oracles for keys that moved off them.
        self._retired: dict[str, _Shard] = {}
        self._ring = HashRing(vnodes=config.vnodes)
        self._build_shards()
        self._selector = selectors.DefaultSelector()
        self._listeners: list[socket.socket] = []
        self._conns: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        self._drain = threading.Event()
        self._draining = False
        self._aborted = False
        self._resize_lock = threading.Lock()
        self._resize_flag = threading.Event()
        self._hb_seq = 0
        self._next_heartbeat = 0.0
        self._started_at = time.monotonic()
        self._bound = False
        self.tcp_address: Optional[tuple[str, int]] = None
        # Cross-validation (--cross-check): a sample of ok verdicts is
        # recomputed on a dedicated shard with reduction and the state
        # cache disabled; see _maybe_cross_check / _xcheck_loop.
        self._xcheck: Optional[_Shard] = None
        self._xcheck_queue: Optional[queue.Queue] = None
        self._xcheck_thread: Optional[threading.Thread] = None
        self._xcheck_board: Optional[BreakerBoard] = None
        self._xcheck_stats = {"sampled": 0, "agreed": 0, "divergent": 0, "errors": 0}
        if config.cross_check:
            if not 0.0 < config.cross_check <= 1.0:
                raise ClusterError(
                    f"--cross-check must be in (0, 1], got {config.cross_check}"
                )
            self._xcheck = self._make_xcheck_shard()
            self._xcheck_queue = queue.Queue()
            # threshold=1: one divergence is already a wrong verdict
            # somewhere — quarantine immediately, probe after cooldown.
            self._xcheck_board = BreakerBoard(
                threshold=1, cooldown=config.breaker_cooldown
            )

    # -- construction --------------------------------------------------

    def _shard_index(self, shard_id: str) -> int:
        try:
            return int(shard_id.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return -1

    def _attach_chaos(self, shard: _Shard) -> None:
        """Interpose this shard's hop proxy when the chaos plan says so
        (created here, started in :meth:`bind`)."""
        if self.config.chaos is None:
            return
        plan = self.config.chaos.plan_for(shard.id)
        if plan is None:
            return
        from repro.service.chaos import ChaosProxy

        listen = os.path.join(self.config.dir, f"{shard.id}.chaos.sock")
        shard.proxy = ChaosProxy(
            upstream=shard.spec.address, plan=plan, listen_path=listen,
            name=shard.id,
        )
        shard.via = ("unix", listen)

    def _make_local_shard(
        self, shard_id: str, adopted_pid: Optional[int] = None
    ) -> _Shard:
        """One local shard wired by directory convention — the same
        convention a primary used, which is what lets a standby (or a
        resize) reconstruct the fleet from ``--dir`` alone."""
        cfg = self.config
        sock = os.path.join(cfg.dir, f"{shard_id}.sock")
        journal = os.path.join(cfg.dir, f"{shard_id}.jsonl")
        checkpoints = os.path.join(cfg.dir, f"{shard_id}-checkpoints")
        spec = ShardSpec(
            id=shard_id, address=("unix", sock), journal_path=journal,
            local=True,
        )
        argv = local_shard_argv(
            socket_path=sock,
            journal_path=journal,
            checkpoint_dir=checkpoints,
            workers=cfg.workers_per_shard,
            queue_limit=cfg.queue_limit,
            retries=cfg.retries,
            job_deadline=cfg.job_deadline,
            breaker_threshold=cfg.breaker_threshold,
            breaker_cooldown=cfg.breaker_cooldown,
            drain_grace=cfg.shard_drain_grace,
            allow_fault_injection=cfg.allow_fault_injection,
            python=cfg.python,
            verdict_store=cfg.verdict_store,
        )
        shard = _Shard(
            spec=spec,
            process=LocalShard(
                spec=spec, argv=argv,
                log_path=os.path.join(cfg.dir, f"{shard_id}.log"),
                adopted_pid=adopted_pid,
            ),
            journal=JournalIndex(journal),
        )
        self._attach_chaos(shard)
        return shard

    def _make_xcheck_shard(self) -> _Shard:
        """The cross-check shard: one supervised serve process kept
        *outside* the ring, the health monitor, and the verdict store.

        Outside the ring because it must never serve client traffic;
        outside the store because a store hit would replay the very
        answer under audit instead of recomputing it.  It runs with
        ``--reduce none --no-state-cache``, so an agreement means two
        disjoint implementations of the semantics derived the same
        verdict.
        """
        cfg = self.config
        shard_id = "xcheck"
        sock = os.path.join(cfg.dir, f"{shard_id}.sock")
        journal = os.path.join(cfg.dir, f"{shard_id}.jsonl")
        spec = ShardSpec(
            id=shard_id, address=("unix", sock), journal_path=journal,
            local=True,
        )
        argv = local_shard_argv(
            socket_path=sock,
            journal_path=journal,
            checkpoint_dir=os.path.join(cfg.dir, f"{shard_id}-checkpoints"),
            workers=1,
            queue_limit=cfg.queue_limit,
            retries=cfg.retries,
            job_deadline=cfg.job_deadline,
            breaker_threshold=cfg.breaker_threshold,
            breaker_cooldown=cfg.breaker_cooldown,
            drain_grace=cfg.shard_drain_grace,
            allow_fault_injection=cfg.allow_fault_injection,
            python=cfg.python,
            verdict_store=None,
            extra_args=("--reduce", "none", "--no-state-cache"),
        )
        return _Shard(
            spec=spec,
            process=LocalShard(
                spec=spec, argv=argv,
                log_path=os.path.join(cfg.dir, f"{shard_id}.log"),
            ),
        )

    def _make_remote_shard(self, shard_id: str, address: Any) -> _Shard:
        from repro.service.client import parse_address

        spec = ShardSpec(
            id=shard_id,
            address=parse_address(address) if isinstance(address, str) else address,
            local=False,
        )
        shard = _Shard(spec=spec)
        self._attach_chaos(shard)
        return shard

    def _build_shards(self) -> None:
        cfg = self.config
        os.makedirs(cfg.dir, exist_ok=True)
        if self._adopt is not None:
            # Standby takeover: reconstruct the *discovered* topology
            # (which may have been resized away from cfg.shards) and
            # adopt still-breathing shard processes by pid instead of
            # respawning them under their feet.
            for shard_id, info in sorted(self._adopt.items()):
                if info.get("local", True):
                    pid = info.get("pid")
                    self._shards[shard_id] = self._make_local_shard(
                        shard_id, adopted_pid=int(pid) if pid else None
                    )
                else:
                    self._shards[shard_id] = self._make_remote_shard(
                        shard_id, info.get("address")
                    )
        else:
            for index in range(cfg.shards):
                shard_id = f"shard-{index:02d}"
                self._shards[shard_id] = self._make_local_shard(shard_id)
            for index, address in enumerate(cfg.remote):
                shard_id = f"remote-{index:02d}"
                self._shards[shard_id] = self._make_remote_shard(shard_id, address)
        for shard in self._shards.values():
            self.health.watch(shard.id, shard.route_address)
        self._rebuild_ring()

    def _rebuild_ring(self) -> None:
        with self._lock:
            self._ring = HashRing(self.health.healthy_ids(), vnodes=self.config.vnodes)

    # -- lifecycle -----------------------------------------------------

    def bind(self) -> None:
        if self._bound:
            return
        cfg = self.config
        for shard in self._shards.values():
            if shard.proxy is not None:
                shard.proxy.start()
        if cfg.socket_path is not None:
            if os.path.exists(cfg.socket_path):
                os.unlink(cfg.socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(cfg.socket_path)
            self._add_listener(listener)
        if cfg.port is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((cfg.host or "127.0.0.1", cfg.port))
            self.tcp_address = listener.getsockname()[:2]
            self._add_listener(listener)
        self._bound = True

    def _add_listener(self, listener: socket.socket) -> None:
        listener.listen(64)
        listener.setblocking(False)
        self._selector.register(listener, selectors.EVENT_READ, None)
        self._listeners.append(listener)

    def spawn_shards(self) -> None:
        """Start every local shard (idempotent)."""
        now = time.monotonic()
        fleet = list(self._shards.values())
        if self._xcheck is not None:
            fleet.append(self._xcheck)
        for shard in fleet:
            if shard.process is not None and not shard.process.alive():
                shard.process.spawn()
                shard.exit_handled = False
                self.metrics.inc("cluster.spawns")
                trace_event("cluster.spawn", shard=shard.id, pid=shard.process.pid)
                shard.process.next_spawn_at = now

    def request_drain(self) -> None:
        """Ask the cluster to drain (thread- and signal-safe)."""
        self._drain.set()

    def abort(self) -> None:
        """Die ungracefully (tests): leave ``serve_forever`` without
        draining, terminating, or even closing the shard processes —
        the in-process equivalent of ``kill -9`` on the router, which
        shards (own sessions) survive as adoptable orphans."""
        self._aborted = True
        self._drain.set()

    def signal_resize(self) -> None:
        """SIGHUP entry point: re-read ``resize.json`` on the next loop
        tick (signal- and thread-safe)."""
        self._resize_flag.set()

    @property
    def draining(self) -> bool:
        return (self._draining or self._drain.is_set()) and not self._aborted

    def _warm_journals(self) -> None:
        """Prime every shard's JournalIndex.  For a promoted standby
        this *is* the state rebuild: the union of the journals is the
        completed-work picture, and anything a retrying client re-drives
        that no journal knows genuinely never finished."""
        for shard in self._shards.values():
            if shard.journal is not None:
                with shard.journal_lock:
                    shard.journal.refresh()

    def serve_forever(self) -> int:
        """Run until drained; returns the process exit status (``0``)."""
        self.bind()
        self.spawn_shards()
        self._warm_journals()
        if self._xcheck_queue is not None and self._xcheck_thread is None:
            self._xcheck_thread = threading.Thread(
                target=self._xcheck_loop, daemon=True, name="xcheck"
            )
            self._xcheck_thread.start()
        self.write_discovery()
        try:
            while True:
                if self._drain.is_set():
                    break
                self._accept_ready(self.config.tick)
                now = time.monotonic()
                self._supervise(now)
                self._sweep_health(now)
                if self._resize_flag.is_set():
                    self._resize_flag.clear()
                    self._resize_from_file()
                if now >= self._next_heartbeat:
                    self._next_heartbeat = now + self.config.heartbeat_interval
                    self.write_discovery()
                with self._lock:
                    self.metrics.set_gauge(
                        "cluster.inflight",
                        sum(len(s.inflight) for s in self._shards.values()),
                    )
                    self.metrics.set_gauge("cluster.live_shards", len(self._ring))
            if not self._aborted:
                self._drain_cluster()
        finally:
            self._shutdown()
        return 0

    # -- accept / per-connection handling ------------------------------

    def _accept_ready(self, timeout: float) -> None:
        for key, _ in self._selector.select(timeout):
            listener = key.fileobj
            try:
                conn, _addr = listener.accept()
            except OSError:
                continue
            conn.settimeout(self.config.forward_timeout)
            with self._lock:
                self._conns.add(conn)
            self.metrics.inc("cluster.connections")
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(conn)
                except (FramingError, OSError):
                    break
                if frame is None:
                    break
                reply = self.handle_frame(frame)
                try:
                    send_frame(conn, reply)
                except (FramingError, OSError):
                    break
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def handle_frame(self, frame: dict) -> dict:
        """Answer one request frame (control inline, the rest routed)."""
        self.metrics.inc("cluster.requests")
        if isinstance(frame, dict) and frame.get("kind") == "resize":
            # Router-only control verb: the shard protocol would reject
            # it, so it is handled before parse_request.
            return self._handle_resize_frame(frame)
        try:
            request = parse_request(frame)
        except ProtocolError as err:
            self.metrics.inc("cluster.errors")
            rid = frame.get("id") if isinstance(frame, dict) else None
            return protocol.response(rid, protocol.ERROR, error=str(err))
        if request.kind == "ping":
            with self._lock:
                live = len(self._ring)
            return protocol.response(
                request.id, protocol.PONG, server="repro-spi-cluster",
                pid=os.getpid(), draining=self.draining, shards=live,
            )
        if request.kind == "status":
            return protocol.response(request.id, protocol.STATUS, **self.status())
        if self.draining:
            return protocol.response(
                request.id, protocol.DRAINING, error="cluster is draining"
            )
        return self._route(frame, request)

    # -- routing & failover --------------------------------------------

    def _route(self, frame: dict, request: Request) -> dict:
        key = protocol.protocol_key(request.target)
        # A protocol whose cross-check diverged is quarantined: the
        # fleet has produced a provably wrong verdict for it somewhere,
        # so serving more answers would be confidently wrong.  DEGRADED
        # (retryable) rather than an error: after the cooldown one
        # probe is let through and force-sampled; agreement closes the
        # quarantine.
        if self._xcheck_board is not None:
            with self._lock:
                breaker = self._xcheck_board.get(key)
                allowed = breaker.allow()
                # Free the probe slot immediately: not every routed
                # request yields a sampleable verdict (faults, caches,
                # violations), and a claimed-but-unresolvable probe
                # would wedge the protocol half-open forever.  While
                # the breaker is non-CLOSED every sampleable verdict is
                # force-sampled (see _maybe_cross_check), so the probe
                # still resolves through the first real answer.
                breaker.abandon_probe()
            if not allowed:
                self.metrics.inc("crosscheck.quarantined")
                trace_event("cluster.quarantined", job=request.id, protocol=key)
                return protocol.response(
                    request.id,
                    protocol.DEGRADED,
                    error=f"protocol {key} is quarantined: a cross-check "
                    "divergence is under investigation",
                )
        # Forward a normalized copy: the id is pinned to the parsed
        # (deterministic) id so the shard journals under the same key
        # the router dedupes on during failover.
        outbound = dict(frame)
        outbound["id"] = request.id
        # Pre-forward idempotency check across *every* journal (current
        # and retired): a promoted standby — or a primary whose client
        # retried after a dropped reply — must serve the verdict the
        # fleet already computed, not compute it again.  Only ``ok``
        # verdicts dedupe here; a journaled *fault* stays retryable.
        cached = self._dedupe_lookup(request.id)
        if cached is not None:
            self.metrics.inc("cluster.dedupe_hits")
            trace_event("cluster.dedupe", job=request.id, where="admission")
            return cached
        tried: set[str] = set()
        claim_wait_until: Optional[float] = None
        while True:
            shard = self._pick(key, tried, job_id=request.id)
            if shard is None:
                self.metrics.inc("cluster.no_shard")
                return protocol.response(
                    request.id,
                    protocol.OVERLOADED,
                    error="no live shard owns this key (cluster warming up "
                    "or every owner is ejected)",
                    retry_after=round(self.config.health_interval * 2, 3),
                )
            # The pick may have landed on a shard whose journal already
            # holds an ``ok`` verdict for this id (a claim that resolved
            # mid-route): serve it straight from the journal instead of
            # asking the shard to answer ``cached`` over a faulty wire.
            # Fault records deliberately do NOT short-circuit — they
            # stay retryable, and the forward below is that retry.
            record = shard.known_result(request.id)
            if record is not None and record.get("status") == "ok":
                self.metrics.inc("cluster.dedupe_hits")
                trace_event("cluster.dedupe", job=request.id, shard=shard.id)
                return _cached_response(request.id, shard.id, record)
            with self._lock:
                shard.inflight.add(request.id)
            self.metrics.inc("cluster.forwarded")
            trace_event("cluster.route", job=request.id, shard=shard.id)
            try:
                reply = self._forward(shard, frame=outbound, request=request)
            except (ServiceUnavailable, FramingError, OSError) as err:
                detail = f"{type(err).__name__}: {err}"
            else:
                reply.setdefault("shard", shard.id)
                self._maybe_cross_check(key, outbound, reply)
                return reply
            finally:
                with self._lock:
                    shard.inflight.discard(request.id)
            # The shard failed mid-flight: treat it as health evidence,
            # then fail over with journal-keyed idempotency.
            tried.add(shard.id)
            self.metrics.inc("cluster.failovers")
            trace_event(
                "cluster.failover", job=request.id, shard=shard.id, detail=detail
            )
            if self.health.note_failure(shard.id, detail):
                self.metrics.inc("cluster.ejected")
                self._rebuild_ring()
            cached = self._fleet_verdict(request.id)
            if cached is not None:
                self.metrics.inc("cluster.dedupe_hits")
                trace_event("cluster.dedupe", job=request.id, shard=shard.id)
                return cached
            if self.draining:
                return protocol.response(
                    request.id, protocol.DRAINING, error="cluster is draining"
                )
            # Exactly-once guard: a failed *transport* is not a failed
            # *computation*.  If this shard holds an unresolved claim
            # for the id and is still breathing, its verdict is coming
            # — failing over now would compute the job a second time on
            # another shard.  Wait and re-drive the same shard (each
            # retry is both a journal poll and a fresh chance at a
            # clean reply) until the claim resolves, the shard dies, or
            # the patience budget runs out.
            if shard.pending_claim(request.id) is not None and self._breathing(shard):
                now = time.monotonic()
                if claim_wait_until is None:
                    claim_wait_until = now + self.config.forward_timeout
                if now < claim_wait_until:
                    tried.discard(shard.id)
                    self.metrics.inc("cluster.claim_waits")
                    trace_event(
                        "cluster.claim_wait", job=request.id, shard=shard.id
                    )
                    time.sleep(self.config.tick)
                    continue

    def _pick(
        self, key: str, tried: set, job_id: Optional[str] = None
    ) -> Optional[_Shard]:
        with self._lock:
            if job_id is not None:
                # Sticky duplicate routing: if some shard is *currently*
                # computing this id (a concurrent duplicate, or a key
                # mid-move during a resize), pin to it — the shard-side
                # coalescer turns the duplicate into a second reply to
                # the same single computation.
                for shard in self._shards.values():
                    if shard.id not in tried and job_id in shard.inflight:
                        return shard
                # A shard whose (already-refreshed) index holds a
                # verdict for this id is where the job lives: an ``ok``
                # record is served from its journal, a fault record is
                # retried *there* so its journal stays the single
                # history for the id.  This closes the race where a
                # claim resolves *between* the caller's dedupe sweep
                # and this scan: the freshly-resolved claim must route
                # to the shard that resolved it, never to a ring
                # successor that would compute the job a second time.
                for shard in self._shards.values():
                    if shard.id not in tried and shard.known_result(job_id):
                        return shard
                # Journal-claim pinning: this router's in-flight books
                # are blind to work a *dead predecessor* forwarded — a
                # promoted standby starts with empty `inflight` sets
                # while a shard may be seconds from verdicting the very
                # id a client just re-drove.  Shards journal a ``claim``
                # at admission (see server._handle_frame), so an
                # unresolved claim marks the shard that owns the
                # computation: route the duplicate there and let its
                # coalescer absorb it.  Newest claim wins — an older
                # unresolved claim is the corpse of an incarnation that
                # died mid-compute, not a live computation.
                best: Optional[tuple[float, str, _Shard]] = None
                for shard in self._shards.values():
                    if shard.id in tried:
                        continue
                    claim = shard.pending_claim(job_id)
                    if claim is None:
                        continue
                    rank = (float(claim.get("time") or 0.0), shard.id)
                    if best is None or rank > (best[0], best[1]):
                        best = (rank[0], rank[1], shard)
                if best is not None:
                    trace_event(
                        "cluster.claim_pin", job=job_id, shard=best[2].id
                    )
                    return best[2]
            owner = self._ring.owner(key, exclude=frozenset(tried))
            return self._shards[owner] if owner is not None else None

    def _breathing(self, shard: _Shard) -> bool:
        """Whether a claim-holding shard can still deliver its verdict:
        local shards answer by process liveness, remote ones by health
        standing (the only liveness signal the router has for them)."""
        if shard.process is not None:
            return shard.process.alive()
        return shard.id in self.health.healthy_ids()

    def _forward(self, shard: _Shard, frame: dict, request: Request) -> dict:
        timeout = self.config.forward_timeout
        if request.deadline is not None:
            # No point outliving the shard's own budget by much.
            timeout = min(timeout, request.deadline + 30.0)
        client = ServiceClient(shard.route_address, timeout=timeout, retries=0)
        return client.call(dict(frame))

    def _dedupe_lookup(self, job_id: str) -> Optional[dict]:
        """Scan every journal (live and retired shards) for an ``ok``
        verdict under ``job_id``.  Lookups are incremental (byte-offset
        tailing), so this is a stat per shard, not a re-read."""
        with self._lock:
            shards = list(self._shards.values()) + list(self._retired.values())
        for shard in shards:
            record = shard.journaled(job_id)
            if record is not None and record.get("status") == "ok":
                return protocol.response(
                    job_id,
                    protocol.OK,
                    result=record.get("result"),
                    shard=shard.id,
                    cached=True,
                )
        return None

    def _fleet_verdict(self, job_id: str) -> Optional[dict]:
        """The idempotency lookup after a failed forward: a verdict
        *any* shard already journaled is the answer — re-driving it
        would recompute (and double-journal) completed work.  The sweep
        covers the whole fleet, not just the shard that failed, because
        under chaos the computation routinely lands somewhere other
        than the hop that ate the reply: a reset drops the answer after
        the shard journaled it, and the claim-wait re-drive may then
        fail on a *different* connection fault."""
        with self._lock:
            shards = list(self._shards.values()) + list(self._retired.values())
        for shard in shards:
            record = shard.journaled(job_id)
            if record is not None:
                return _cached_response(job_id, shard.id, record)
        return None

    # -- cross-validation ----------------------------------------------

    def _maybe_cross_check(self, key: str, outbound: dict, reply: dict) -> None:
        """Decide whether this successful reply joins the cross-check
        sample, and enqueue it for the shadow recomputation if so.

        The sample is **deterministic** — a sha256 of ``key:id`` against
        the configured rate — so a re-driven or retried request makes
        the same decision every time and the sampled population is
        reproducible from the journals alone.  Only fresh ``ok``
        non-violated verdicts qualify: violations are already certified
        individually by witness replay (``--certify``), and a cached
        reply re-states an old computation rather than exercising the
        shard under audit.  While a protocol's cross-check breaker is
        non-CLOSED every qualifying verdict is sampled regardless of
        rate: that is the probe that closes (or re-opens) a quarantine.
        """
        if self._xcheck_queue is None:
            return
        if reply.get("status") != "ok" or reply.get("cached"):
            return
        result = reply.get("result")
        if not isinstance(result, dict) or result.get("violated"):
            return
        job_id = outbound.get("id")
        digest = hashlib.sha256(f"{key}:{job_id}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        with self._lock:
            probing = self._xcheck_board.get(key).state != CLOSED
        if fraction >= self.config.cross_check and not probing:
            return
        with self._lock:
            self._xcheck_stats["sampled"] += 1
        self.metrics.inc("crosscheck.sampled")
        trace_event("cluster.crosscheck", job=job_id, protocol=key)
        self._xcheck_queue.put((key, dict(outbound), dict(reply)))

    @staticmethod
    def _results_agree(primary: dict, shadow: dict) -> bool:
        """Two verdicts agree when every verdict-bearing field they
        share says the same thing.  Budget/stat fields deliberately
        don't count: the shadow explores the *unreduced* space and its
        state counts legitimately differ."""
        for field_name in ("violated", "holds", "secure"):
            if field_name in primary and field_name in shadow:
                if bool(primary[field_name]) != bool(shadow[field_name]):
                    return False
        return True

    def _journal_divergence(self, record: dict) -> None:
        path = os.path.join(self.config.dir, "crosscheck.jsonl")
        try:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass  # the quarantine (in-memory) is the load-bearing part

    def _xcheck_loop(self) -> None:
        """Daemon thread: drain the sample queue against the
        cross-check shard and score each answer.

        An unreachable shadow or a non-``ok`` shadow reply counts as an
        *error*, never a divergence: absence of a second opinion is not
        evidence that the first one was wrong.
        """
        assert self._xcheck is not None and self._xcheck_queue is not None
        while True:
            item = self._xcheck_queue.get()
            if item is None:
                return
            key, frame, primary_reply = item
            client = ServiceClient(
                self._xcheck.spec.address,
                timeout=self.config.forward_timeout,
                retries=1,
            )
            try:
                shadow_reply = client.call(dict(frame))
            except (ServiceUnavailable, FramingError, OSError) as err:
                shadow_reply = {"status": "unreachable", "error": str(err)}
            if shadow_reply.get("status") != "ok":
                with self._lock:
                    self._xcheck_stats["errors"] += 1
                self.metrics.inc("crosscheck.errors")
                trace_event(
                    "cluster.crosscheck_error",
                    job=frame.get("id"),
                    protocol=key,
                    status=shadow_reply.get("status"),
                )
                continue
            primary = primary_reply.get("result") or {}
            shadow = shadow_reply.get("result") or {}
            if self._results_agree(primary, shadow):
                with self._lock:
                    self._xcheck_stats["agreed"] += 1
                    self._xcheck_board.get(key).record_success()
                self.metrics.inc("crosscheck.agreed")
                continue
            detail = (
                f"cross-check divergence on {key}: primary shard "
                f"{primary_reply.get('shard')} vs unreduced recomputation"
            )
            with self._lock:
                self._xcheck_stats["divergent"] += 1
                self._xcheck_board.get(key).record_fault(detail)
            self.metrics.inc("crosscheck.divergent")
            trace_event(
                "cluster.divergence", job=frame.get("id"), protocol=key
            )
            self._journal_divergence({
                "type": "divergence",
                "time": time.time(),
                "job": frame.get("id"),
                "protocol": key,
                "primary_shard": primary_reply.get("shard"),
                "primary": primary,
                "crosscheck": shadow,
            })

    # -- supervision ---------------------------------------------------

    def _supervise(self, now: float) -> None:
        """Notice dead local shards, eject them, respawn with backoff."""
        with self._lock:
            shards = list(self._shards.values())
        if self._xcheck is not None:
            shards.append(self._xcheck)
        for shard in shards:
            process = shard.process
            if process is None or shard.retiring:
                continue
            if process.alive():
                continue
            if not shard.exit_handled:
                shard.exit_handled = True
                process.fail_streak += 1
                detail = f"shard process exited (status {process.exit_code})"
                self.metrics.inc("cluster.shard_deaths")
                trace_event(
                    "cluster.shard_exit", shard=shard.id, status=process.exit_code
                )
                # The cross-check shard is not a ring member, so it has
                # no health standing to eject — it just respawns.
                if shard is not self._xcheck and self.health.eject(
                    shard.id, detail
                ):
                    self.metrics.inc("cluster.ejected")
                    self._rebuild_ring()
                # Full jitter: when a machine-wide blip kills the whole
                # fleet at once, the respawns (and the health-probe
                # bursts that follow each) must spread out, not march in
                # lockstep against whatever resource just recovered.
                process.next_spawn_at = now + backoff_delay(
                    self.config.respawn_base,
                    self.config.respawn_cap,
                    process.fail_streak,
                    rng=self._rng.random,
                )
            if now >= process.next_spawn_at:
                process.spawn()
                shard.exit_handled = False
                self.metrics.inc("cluster.respawns")
                trace_event("cluster.respawn", shard=shard.id, pid=process.pid)

    def _sweep_health(self, now: float) -> None:
        transitions = self.health.sweep(now)
        if not transitions:
            return
        for shard_id, what in transitions:
            shard = self._shards.get(shard_id)
            self.metrics.inc(f"cluster.{what}")
            trace_event(f"cluster.{what}", shard=shard_id)
            if (
                what == "recovered"
                and shard is not None
                and shard.process is not None
            ):
                shard.process.fail_streak = 0
        self._rebuild_ring()
        self.write_discovery()

    # -- live resharding -----------------------------------------------

    def _handle_resize_frame(self, frame: dict) -> dict:
        rid = frame.get("id")
        if self.draining:
            return protocol.response(
                rid, protocol.DRAINING, error="cluster is draining"
            )
        try:
            count = int(frame.get("shards"))
        except (TypeError, ValueError):
            return protocol.response(
                rid, protocol.ERROR, error="resize needs an integer 'shards' count"
            )
        try:
            summary = self.resize(count)
        except ClusterError as err:
            return protocol.response(rid, protocol.ERROR, error=str(err))
        return protocol.response(rid, protocol.OK, resize=summary)

    def _resize_from_file(self) -> None:
        """The SIGHUP path: target count read from ``DIR/resize.json``
        (``{"shards": N}``)."""
        path = os.path.join(self.config.dir, "resize.json")
        try:
            with open(path, encoding="utf-8") as handle:
                count = int(json.load(handle).get("shards"))
        except (OSError, ValueError, TypeError, AttributeError):
            trace_event("cluster.resize_bad_file", path=path)
            return
        try:
            self.resize(count)
        except ClusterError as err:
            trace_event("cluster.resize_refused", error=str(err))

    def resize(self, count: int) -> dict:
        """Grow or shrink the local fleet to ``count`` shards, live.

        Growing: new (or previously retired) shard ids spawn, join the
        health watch, and enter the ring — ``HashRing``'s minimal-remap
        property means only the arcs the newcomers take over move; every
        other key keeps its owner, journal, and breaker history.
        Requests that race a still-booting newcomer ride the ordinary
        failover path.

        Shrinking: the highest-numbered local shards leave the ring
        first (new keys remap off them immediately), then only *their*
        in-flight work is drained (bounded by ``drain_grace``) before
        each gets a journal-flushing SIGTERM.  The retired shard's
        journal stays open as a dedupe oracle, so a key that moved
        cannot be recomputed on its new owner if the old one already
        verdicted it.
        """
        if count < 1:
            raise ClusterError(f"cannot resize to {count}: need >= 1 local shard")
        with self._resize_lock:
            with self._lock:
                local_ids = sorted(
                    sid for sid, s in self._shards.items() if s.spec.local
                )
            added: list[str] = []
            removed: list[str] = []
            if count > len(local_ids):
                added = self._grow(count - len(local_ids))
            elif count < len(local_ids):
                removed = self._shrink(local_ids[count:])
            summary = {"shards": count, "added": added, "removed": removed}
            if added or removed:
                self.metrics.inc("cluster.resizes")
                trace_event("cluster.resize", **summary)
                self.write_discovery()
            return summary

    def _grow(self, extra: int) -> list[str]:
        added: list[str] = []
        for _ in range(extra):
            with self._lock:
                revivable = sorted(self._retired)
                if revivable:
                    shard_id = revivable[0]
                    shard = self._retired.pop(shard_id)
                    shard.retiring = False
                    if shard.proxy is None:
                        self._attach_chaos(shard)
                else:
                    taken = [
                        self._shard_index(sid)
                        for sid in list(self._shards) + list(self._retired)
                        if sid.startswith("shard-")
                    ]
                    shard_id = f"shard-{(max(taken, default=-1) + 1):02d}"
                    shard = self._make_local_shard(shard_id)
                self._shards[shard_id] = shard
            if shard.proxy is not None:
                shard.proxy.start()
            if shard.process is not None:
                shard.process.fail_streak = 0
                shard.process.spawn()
                shard.exit_handled = False
                self.metrics.inc("cluster.spawns")
                trace_event(
                    "cluster.spawn", shard=shard_id, pid=shard.process.pid
                )
            self.health.watch(shard_id, shard.route_address)
            added.append(shard_id)
        self._rebuild_ring()
        return added

    def _shrink(self, victim_ids: list[str]) -> list[str]:
        victims: list[_Shard] = []
        with self._lock:
            for shard_id in victim_ids:
                shard = self._shards.get(shard_id)
                if shard is None or not shard.spec.local:
                    continue
                shard.retiring = True
                victims.append(shard)
        # Out of the ring first: new requests for moved keys go to the
        # survivors from this point on.
        for shard in victims:
            self.health.forget(shard.id)
        self._rebuild_ring()
        self.write_discovery()
        # Drain only the moved keys: whatever the victims were already
        # computing is allowed to finish (their verdicts land in the
        # retained journals).
        deadline = time.monotonic() + self.config.drain_grace
        while time.monotonic() < deadline:
            with self._lock:
                if not any(s.inflight for s in victims):
                    break
            time.sleep(self.config.tick)
        for shard in victims:
            if shard.process is not None:
                shard.process.terminate()
        grace = self.config.shard_drain_grace + 5.0
        removed: list[str] = []
        for shard in victims:
            process = shard.process
            if process is not None:
                if process.wait(grace) is None:
                    process.kill()
                    process.wait(5.0)
                process.close()
            if shard.proxy is not None:
                shard.proxy.stop()
                shard.proxy = None
                shard.via = None
            with self._lock:
                self._shards.pop(shard.id, None)
                self._retired[shard.id] = shard
            self.metrics.inc("cluster.shards_retired")
            trace_event("cluster.shard_retired", shard=shard.id)
            removed.append(shard.id)
        return removed

    # -- observability -------------------------------------------------

    def status(self) -> dict:
        with self._lock:
            health_rows = self.health.snapshot()
            shard_rows = {}
            for shard in self._shards.values():
                process = shard.process
                shard_rows[shard.id] = {
                    "address": shard.printable_address(),
                    "local": shard.spec.local,
                    "pid": process.pid if process is not None else None,
                    "alive": process.alive() if process is not None else None,
                    "restarts": process.restarts if process is not None else 0,
                    "inflight": len(shard.inflight),
                    "retiring": shard.retiring,
                    "health": health_rows.get(shard.id),
                    "chaos": (
                        shard.proxy.snapshot() if shard.proxy is not None else None
                    ),
                }
            members = sorted(self._ring.members)
            retired = sorted(self._retired)
            crosscheck = None
            if self._xcheck_board is not None:
                process = self._xcheck.process if self._xcheck else None
                crosscheck = {
                    "rate": self.config.cross_check,
                    **self._xcheck_stats,
                    "pending": (
                        self._xcheck_queue.qsize() if self._xcheck_queue else 0
                    ),
                    "quarantined": sorted(
                        key
                        for key, snap in self._xcheck_board.snapshot().items()
                        if snap["state"] != CLOSED
                    ),
                    "shard": {
                        "pid": process.pid if process is not None else None,
                        "alive": (
                            process.alive() if process is not None else None
                        ),
                        "restarts": (
                            process.restarts if process is not None else 0
                        ),
                    },
                }
        payload = {
            "cluster": {
                "pid": os.getpid(),
                "role": self.role,
                "draining": self.draining,
                "uptime": round(time.monotonic() - self._started_at, 3),
                "shards": len(shard_rows),
                "healthy": len(members),
                "retired": retired,
            },
            "shards": shard_rows,
            "ring": {"vnodes": self.config.vnodes, "members": members},
            "metrics": self.metrics.to_json(),
        }
        if crosscheck is not None:
            payload["crosscheck"] = crosscheck
        return payload

    def write_discovery(self) -> None:
        """Publish ``cluster.json``: where the router listens, its
        liveness heartbeat (what a standby watches), and which shards
        exist with their pids (what a standby adopts) — ``submit
        --cluster DIR`` reads the router endpoints."""
        self._hb_seq += 1
        with self._lock:
            shard_map = {
                shard.id: {
                    "address": shard.printable_address(),
                    "local": shard.spec.local,
                    "journal": shard.spec.journal_path,
                    "pid": (
                        shard.process.pid if shard.process is not None else None
                    ),
                }
                for shard in self._shards.values()
            }
        payload = {
            "router": {
                "socket": self.config.socket_path,
                "tcp": list(self.tcp_address) if self.tcp_address else None,
                "pid": os.getpid(),
                "role": self.role,
                "heartbeat": {"seq": self._hb_seq, "time": time.time()},
            },
            "shards": shard_map,
        }
        try:
            atomic_write_json(os.path.join(self.config.dir, "cluster.json"), payload)
        except OSError:
            pass  # discovery is advisory; routing must not die for it

    # -- drain & shutdown ----------------------------------------------

    def _drain_cluster(self) -> None:
        """The SIGTERM path: stop accepting, wait for in-flight
        forwards, then propagate the drain to every local shard."""
        self._draining = True
        trace_event(
            "cluster.drain",
            inflight=sum(len(s.inflight) for s in self._shards.values()),
        )
        self._close_listeners()
        deadline = time.monotonic() + self.config.drain_grace
        while time.monotonic() < deadline:
            with self._lock:
                if not any(s.inflight for s in self._shards.values()):
                    break
            time.sleep(self.config.tick)
        # The cross-check worker stops accepting new samples; whatever
        # is still queued is abandoned (a drain is not the moment to
        # start fresh recomputations).
        if self._xcheck_queue is not None:
            self._xcheck_queue.put(None)
        # Propagate: each shard runs its own graceful drain (finishes or
        # kills in-flight work, flushes its journal) and exits 0.
        fleet = list(self._shards.values())
        if self._xcheck is not None:
            fleet.append(self._xcheck)
        for shard in fleet:
            if shard.process is not None:
                shard.process.terminate()
        grace = self.config.shard_drain_grace + 5.0
        for shard in fleet:
            process = shard.process
            if process is None:
                continue
            if process.wait(grace) is None:
                process.kill()
                process.wait(5.0)
            trace_event(
                "cluster.shard_drained", shard=shard.id, status=process.exit_code
            )

    def _close_listeners(self) -> None:
        for listener in self._listeners:
            try:
                self._selector.unregister(listener)
            except (KeyError, ValueError, OSError):
                pass
            try:
                listener.close()
            except OSError:
                pass
        self._listeners.clear()
        if self._bound and self.config.socket_path is not None:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    def _shutdown(self) -> None:
        self._draining = True
        self._close_listeners()
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for shard in list(self._shards.values()) + list(self._retired.values()):
            if shard.proxy is not None:
                shard.proxy.stop()
        if self._xcheck_queue is not None:
            self._xcheck_queue.put(None)
        if self._aborted:
            # Simulated router death: the shards are deliberately left
            # running (and discovery untouched) for a standby to adopt.
            self._selector.close()
            return
        fleet = list(self._shards.values())
        if self._xcheck is not None:
            fleet.append(self._xcheck)
        for shard in fleet:
            if shard.process is not None:
                if shard.process.alive():
                    shard.process.kill()
                    shard.process.wait(5.0)
                shard.process.close()
        self._selector.close()
        self.write_discovery()
        ambient = current_metrics()
        if ambient is not None:
            ambient.absorb(self.metrics)


def read_discovery(cluster_dir: str) -> Optional[dict]:
    """Parse ``cluster.json`` under ``cluster_dir``; ``None`` when
    missing or damaged (discovery is advisory)."""
    try:
        with open(os.path.join(cluster_dir, "cluster.json"), encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class Standby:
    """A warm spare router (``repro-spi cluster --standby``).

    It holds no listeners and spawns nothing while the primary lives:
    it watches the primary's heartbeat in ``cluster.json`` and, once
    the heartbeat goes stale for ``takeover_after`` seconds, confirms
    death with pings against the primary's own endpoint (a wedged
    heartbeat writer that still answers pings is *alive* — taking over
    under it would split the brain).  Only when both signals agree does
    it promote:

    1. rebuild the topology from discovery, **adopting** the orphaned
       shard processes by pid (they run in their own sessions, so a
       router ``kill -9`` leaves them computing; respawning them would
       double that work);
    2. warm every shard's ``JournalIndex`` — the union of the journals
       is the completed-work picture, and the router-level dedupe plus
       the shards' own ``--dedupe`` coalescing make re-driven in-flight
       work exactly-once;
    3. bind its *own* listeners and atomically rewrite discovery, so
       clients whose retry loop re-reads ``cluster.json``
       (``ServiceClient(refresh=...)``) land on the new primary without
       restarting.
    """

    def __init__(self, config: RouterConfig) -> None:
        if config.socket_path is None and config.port is None:
            raise ClusterError("standby needs its own socket path and/or TCP port")
        self.config = config
        self.router: Optional[Router] = None
        self.promoted = threading.Event()
        self._drain = threading.Event()
        self._lock = threading.Lock()

    def request_drain(self) -> None:
        self._drain.set()
        with self._lock:
            router = self.router
        if router is not None:
            router.request_drain()

    def _standby_path(self) -> str:
        return os.path.join(self.config.dir, "standby.json")

    def _write_standby_marker(self) -> None:
        from repro.runtime.atomic import atomic_write_json as _write

        try:
            _write(
                self._standby_path(),
                {
                    "pid": os.getpid(),
                    "role": "standby",
                    "socket": self.config.socket_path,
                    "since": time.time(),
                },
            )
        except OSError:
            pass

    def _primary_addresses(self, disco: dict) -> list:
        router = disco.get("router") or {}
        addresses = []
        if router.get("socket"):
            addresses.append(("unix", router["socket"]))
        if router.get("tcp"):
            host, port = router["tcp"]
            addresses.append(("tcp", (host, int(port))))
        return addresses

    def _primary_answers(self, disco: dict) -> bool:
        for address in self._primary_addresses(disco):
            try:
                reply = ServiceClient(
                    address, timeout=self.config.health_timeout, retries=0
                ).ping()
            except (ServiceUnavailable, OSError, FramingError):
                continue
            if reply.get("status") == "pong":
                return True
        return False

    def watch(self) -> Optional[dict]:
        """Block until the primary is conclusively dead (returns the
        last discovery snapshot to adopt) or drain is requested
        (returns ``None``)."""
        cfg = self.config
        poll = max(0.05, min(cfg.heartbeat_interval / 2.0, 1.0))
        last_seq: Optional[int] = None
        last_seen = time.monotonic()
        ping_strikes = 0
        snapshot: Optional[dict] = None
        while not self._drain.is_set():
            time.sleep(poll)
            disco = read_discovery(cfg.dir)
            now = time.monotonic()
            if disco is None:
                # Nothing to adopt (yet): a standby without a primary
                # just keeps waiting.
                continue
            snapshot = disco
            heartbeat = (disco.get("router") or {}).get("heartbeat") or {}
            seq = heartbeat.get("seq")
            if seq != last_seq:
                last_seq = seq
                last_seen = now
                ping_strikes = 0
                continue
            if now - last_seen < cfg.takeover_after:
                continue
            # Heartbeat stale: believe it only once pings agree.
            if self._primary_answers(disco):
                last_seen = now
                ping_strikes = 0
                continue
            ping_strikes += 1
            trace_event(
                "cluster.standby_strike", strikes=ping_strikes,
                stale=round(now - last_seen, 3),
            )
            if ping_strikes >= 2:
                return snapshot
        return None

    def takeover(self, disco: dict) -> Router:
        """Build and bind the promoted router (does not serve yet)."""
        adopt = disco.get("shards") or {}
        router = Router(self.config, adopt=adopt)
        router.bind()
        # Point discovery at the promoted listeners *before* announcing
        # the takeover: bound sockets already queue connections in the
        # backlog, and a client re-reading discovery between retries
        # must find the living router, not the corpse's address.
        router.write_discovery()
        with self._lock:
            self.router = router
        self.promoted.set()
        trace_event(
            "cluster.takeover",
            shards=sorted(adopt),
            adopted=[s for s, i in adopt.items() if i.get("pid")],
        )
        return router

    def run(self) -> int:
        """Watch; on primary death, promote and serve until drained."""
        self._write_standby_marker()
        try:
            disco = self.watch()
            if disco is None:
                return 0  # drained while still a spare
            router = self.takeover(disco)
        finally:
            try:
                os.unlink(self._standby_path())
            except OSError:
                pass
        if self._drain.is_set():
            router.request_drain()
        return router.serve_forever()


def run_cluster(config: RouterConfig) -> int:
    """Blocking entry point used by the CLI: bind, install
    drain-on-SIGINT/SIGTERM handlers (plus resize-on-SIGHUP), route
    until drained.  Returns the exit status (``0`` after a clean
    drain)."""
    import signal as _signal

    from repro.runtime.lifecycle import drain_signals

    router = Router(config)
    router.bind()
    with drain_signals(on_signal=lambda signum: router.request_drain()) as drain:
        if drain.is_set():
            router.request_drain()

        def _watch_drain() -> None:
            drain.wait()
            router.request_drain()

        watcher = threading.Thread(target=_watch_drain, daemon=True)
        watcher.start()
        try:
            _signal.signal(_signal.SIGHUP, lambda *_: router.signal_resize())
        except (ValueError, OSError, AttributeError):
            pass  # not the main thread, or no SIGHUP on this platform
        return router.serve_forever()


def run_standby(config: RouterConfig) -> int:
    """Blocking entry point for ``repro-spi cluster --standby``."""
    from repro.runtime.lifecycle import drain_signals

    standby = Standby(config)
    with drain_signals(on_signal=lambda signum: standby.request_drain()) as drain:
        if drain.is_set():
            standby.request_drain()

        def _watch_drain() -> None:
            drain.wait()
            standby.request_drain()

        watcher = threading.Thread(target=_watch_drain, daemon=True)
        watcher.start()
        return standby.run()
