"""Length-prefixed JSON framing over stream sockets.

The verification service speaks the simplest protocol that is still
unambiguous under partial reads: every message is one frame —

* a 4-byte big-endian unsigned length ``n``,
* followed by exactly ``n`` bytes of UTF-8 JSON encoding one object.

Newline-delimited JSON was rejected because request payloads may embed
inline process source (``{"source": "..."}``) and nobody should have to
reason about escaping; a binary length prefix makes message boundaries
a property of the transport, not the payload.

Two consumption styles, one format:

* **blocking** — :func:`send_frame` / :func:`recv_frame` for clients
  and tests talking over an ordinary blocking socket (honouring its
  timeout);
* **incremental** — :class:`FrameDecoder` for the server's non-blocking
  event loop: feed it whatever ``recv`` returned, get back every
  complete message, keep the remainder buffered.

Frames above :data:`MAX_FRAME` are refused in both directions: on the
read side a hostile or corrupt length prefix must not become an
unbounded allocation, and on the write side a response that large is a
bug upstream.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro.core.errors import ReproError

#: Hard cap on one frame's payload (bytes).  Requests are small;
#: responses carry at most a status snapshot with metrics.
MAX_FRAME = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FramingError(ReproError):
    """A frame was malformed: oversized, truncated, or not one JSON
    object."""


def encode_frame(message: dict) -> bytes:
    """One message as wire bytes (header + JSON payload)."""
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise FramingError(
            f"refusing to send a {len(payload)}-byte frame (cap {MAX_FRAME})"
        )
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise FramingError(f"frame payload is not JSON: {err}")
    if not isinstance(message, dict):
        raise FramingError(
            f"frame payload is {type(message).__name__}, not an object"
        )
    return message


def send_frame(sock: socket.socket, message: dict) -> None:
    """Send one message on a blocking socket."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    """Read exactly ``size`` bytes; ``None`` on EOF *before any byte*,
    :class:`FramingError` on EOF mid-read (a torn frame)."""
    chunks: list[bytes] = []
    got = 0
    while got < size:
        chunk = sock.recv(size - got)
        if not chunk:
            if got == 0:
                return None
            raise FramingError(f"connection closed mid-frame ({got}/{size} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, max_frame: int = MAX_FRAME
) -> Optional[dict]:
    """Receive one message from a blocking socket.

    Returns ``None`` on a clean EOF at a frame boundary (the peer hung
    up between messages).  A timeout set on the socket applies to each
    underlying ``recv``.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FramingError(f"peer announced a {length}-byte frame (cap {max_frame})")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise FramingError("connection closed between header and payload")
    return _decode_payload(payload)


class FrameDecoder:
    """Incremental decoder for the server's non-blocking reads.

    Feed raw bytes as they arrive; complete messages come back in
    order, partial frames stay buffered.  The buffer is bounded by the
    announced frame length (itself capped), so a slow-lorised or
    garbage-spewing client costs at most ``max_frame`` bytes.
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._failed: Optional[str] = None

    def feed(self, data: bytes) -> list[dict]:
        """Absorb ``data``; return every message it completed.

        An oversize declared length is rejected the moment the 4-byte
        header is complete — *before* any payload byte is accepted, so
        a hostile length prefix costs 4 bytes of buffer, not
        ``max_frame``.  After any :class:`FramingError` the decoder is
        poisoned: the stream has lost frame alignment and every further
        ``feed`` re-raises rather than mis-parsing payload bytes as
        headers.
        """
        if self._failed is not None:
            raise FramingError(self._failed)
        self._buffer.extend(data)
        messages: list[dict] = []
        try:
            while True:
                if len(self._buffer) < _HEADER.size:
                    break
                (length,) = _HEADER.unpack(self._buffer[: _HEADER.size])
                if length > self.max_frame:
                    raise FramingError(
                        f"peer announced a {length}-byte frame (cap {self.max_frame})"
                    )
                end = _HEADER.size + length
                if len(self._buffer) < end:
                    break
                payload = bytes(self._buffer[_HEADER.size:end])
                del self._buffer[:end]
                messages.append(_decode_payload(payload))
        except FramingError as err:
            self._failed = str(err)
            self._buffer.clear()
            raise
        return messages

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)
