"""Deterministic network fault injection for the cluster's socket hops.

The engine-level harness (:mod:`repro.runtime.faults`) proves that a
failing *primitive* degrades a verdict instead of corrupting it.  This
module is the same instrument one layer down: the cluster's resilience
claims — exactly-once verdicts, journal-keyed failover, standby
takeover — are only worth anything against an adversarial *network*,
so the chaos suite runs every socket hop through a
:class:`ChaosProxy` executing a seeded :class:`NetFaultPlan`:

* **connection refusal** — the hop accepts and immediately hangs up
  (the client sees EOF — or a reset, on TCP with the request still
  unread — before any reply byte: a dead endpoint);
* **connection reset** — the request is delivered, the reply dropped
  (exercises the dedupe half of failover: the shard journaled, the
  router must serve the journaled verdict, never recompute);
* **frame truncation** — only a prefix of the reply is relayed
  (``FramingError: connection closed mid-frame``);
* **byte corruption** — one reply byte is flipped (the decoder must
  poison, the router must fail over);
* **latency** — seconds injected ahead of the reply (exercises
  timeouts and deadline propagation);
* **blackhole partitions** — ordinal windows during which connections
  are accepted but nothing is ever relayed in either direction (the
  shard never sees the request; the caller rides its timeout).

The plan API deliberately mirrors :class:`~repro.runtime.faults
.FaultPlan` — ``*_at`` ordinals for deterministic schedules, ``*_rate``
probabilities on a seeded PRNG, JSON round-trips rejecting unknown
keys — so engine-level and network-level chaos compose in one schedule
(:class:`ChaosPlan`): one seed reproduces one storm.

Determinism model: fault decisions are a pure function of
``(plan, connection ordinal)`` — each connection draws from its own
``Random(f"{seed}:{ordinal}")`` so thread scheduling cannot reorder
draws.  Under concurrent load the *assignment* of ordinals to requests
still depends on accept order; reproducing a failure therefore means
re-running with the printed seed, not replaying a byte-exact trace
(see ``docs/chaos.md``).
"""

from __future__ import annotations

import hashlib
import random
import socket
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

from repro.core.errors import ReproError
from repro.runtime.faults import FaultPlan

#: Fault decisions, in priority order (one fault per connection).
BLACKHOLE = "blackhole"
REFUSE = "refuse"
RESET = "reset"
TRUNCATE = "truncate"
CORRUPT = "corrupt"

_DECISIONS = (BLACKHOLE, REFUSE, RESET, TRUNCATE, CORRUPT)


class ChaosError(ReproError):
    """A chaos plan or proxy was misconfigured."""


def _ordinals(value: Any, field_name: str) -> tuple[int, ...]:
    try:
        ordinals = tuple(int(n) for n in value)
    except (TypeError, ValueError):
        raise ChaosError(f"{field_name} must be a sequence of integers")
    if any(n < 1 for n in ordinals):
        raise ChaosError(f"{field_name} ordinals are 1-based, got {ordinals}")
    return ordinals


@dataclass(frozen=True, slots=True)
class NetFaultPlan:
    """What one socket hop does to its connections, and when.

    Ordinals are 1-based *connection* counts through the hop (the
    network analogue of :class:`FaultPlan`'s call ordinals); rates are
    per-connection probabilities drawn from a PRNG derived from
    ``seed`` and the ordinal, so a given plan misbehaves reproducibly.

    Attributes:
        refuse_at / refuse_rate: hang up before relaying anything.
        reset_at / reset_rate: deliver the request, drop the reply.
        truncate_at / truncate_rate: relay only ``truncate_bytes``
            bytes of the reply, then hang up (a torn frame).
        corrupt_at / corrupt_rate: flip the reply byte at
            ``corrupt_offset`` (default 4: the first payload byte after
            the length header, so the frame stays aligned but its JSON
            does not parse).
        latency: seconds slept ahead of the first reply byte.
        blackhole: inclusive ``(start, end)`` ordinal windows during
            which the hop is a partition: connections are accepted and
            swallowed, nothing crosses in either direction.
        seed: PRNG seed for the ``*_rate`` draws.
    """

    refuse_at: tuple[int, ...] = ()
    refuse_rate: float = 0.0
    reset_at: tuple[int, ...] = ()
    reset_rate: float = 0.0
    truncate_at: tuple[int, ...] = ()
    truncate_rate: float = 0.0
    truncate_bytes: int = 6
    corrupt_at: tuple[int, ...] = ()
    corrupt_rate: float = 0.0
    corrupt_offset: int = 4
    latency: float = 0.0
    blackhole: tuple[tuple[int, int], ...] = ()
    seed: int = 0

    def decide(self, ordinal: int) -> Optional[str]:
        """The fault (if any) connection ``ordinal`` suffers.

        Pure in ``(self, ordinal)``: every rate draw comes from a PRNG
        seeded by both, in a fixed order, so concurrent connections
        cannot perturb each other's decisions.
        """
        for start, end in self.blackhole:
            if start <= ordinal <= end:
                return BLACKHOLE
        rng = random.Random(f"{self.seed}:{ordinal}")
        for decision, at, rate in (
            (REFUSE, self.refuse_at, self.refuse_rate),
            (RESET, self.reset_at, self.reset_rate),
            (TRUNCATE, self.truncate_at, self.truncate_rate),
            (CORRUPT, self.corrupt_at, self.corrupt_rate),
        ):
            # Draw unconditionally: the PRNG stream must not depend on
            # which ordinals appear in the *_at schedules.
            draw = rng.random()
            if ordinal in at or (rate > 0.0 and draw < rate):
                return decision
        return None

    def to_json(self) -> dict:
        return {
            "refuse_at": list(self.refuse_at),
            "refuse_rate": self.refuse_rate,
            "reset_at": list(self.reset_at),
            "reset_rate": self.reset_rate,
            "truncate_at": list(self.truncate_at),
            "truncate_rate": self.truncate_rate,
            "truncate_bytes": self.truncate_bytes,
            "corrupt_at": list(self.corrupt_at),
            "corrupt_rate": self.corrupt_rate,
            "corrupt_offset": self.corrupt_offset,
            "latency": self.latency,
            "blackhole": [list(window) for window in self.blackhole],
            "seed": self.seed,
        }

    @staticmethod
    def from_json(data: Mapping) -> "NetFaultPlan":
        known = {
            "refuse_at", "refuse_rate", "reset_at", "reset_rate",
            "truncate_at", "truncate_rate", "truncate_bytes",
            "corrupt_at", "corrupt_rate", "corrupt_offset",
            "latency", "blackhole", "seed",
        }
        unknown = set(data) - known
        if unknown:
            raise ChaosError(f"unknown NetFaultPlan fields: {sorted(unknown)}")
        blackhole = []
        for window in data.get("blackhole", ()):
            try:
                start, end = (int(window[0]), int(window[1]))
            except (TypeError, ValueError, IndexError):
                raise ChaosError(f"bad blackhole window {window!r} (want [start, end])")
            blackhole.append((start, end))
        return NetFaultPlan(
            refuse_at=_ordinals(data.get("refuse_at", ()), "refuse_at"),
            refuse_rate=float(data.get("refuse_rate", 0.0)),
            reset_at=_ordinals(data.get("reset_at", ()), "reset_at"),
            reset_rate=float(data.get("reset_rate", 0.0)),
            truncate_at=_ordinals(data.get("truncate_at", ()), "truncate_at"),
            truncate_rate=float(data.get("truncate_rate", 0.0)),
            truncate_bytes=int(data.get("truncate_bytes", 6)),
            corrupt_at=_ordinals(data.get("corrupt_at", ()), "corrupt_at"),
            corrupt_rate=float(data.get("corrupt_rate", 0.0)),
            corrupt_offset=int(data.get("corrupt_offset", 4)),
            latency=float(data.get("latency", 0.0)),
            blackhole=tuple(blackhole),
            seed=int(data.get("seed", 0)),
        )


def _derive_seed(seed: int, label: str) -> int:
    """A stable per-hop seed (sha256-based, like the hash ring — never
    Python's salted ``hash``)."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class ChaosPlan:
    """One schedule for a whole cluster: per-hop network plans plus an
    optional engine-level :class:`FaultPlan` — so a single seed drives
    dropped connections *and* failing successor computations.

    ``hops`` keys are shard ids; ``"*"`` matches every shard without an
    exact entry.  A hop plan whose ``seed`` is 0 gets a per-shard seed
    derived from the schedule seed, so every hop misbehaves differently
    but the whole storm reproduces from one number.
    """

    hops: tuple[tuple[str, NetFaultPlan], ...] = ()
    engine: Optional[FaultPlan] = None
    seed: int = 0

    def plan_for(self, shard_id: str) -> Optional[NetFaultPlan]:
        chosen = None
        for key, plan in self.hops:
            if key == shard_id:
                chosen = plan
                break
            if key == "*" and chosen is None:
                chosen = plan
        if chosen is None:
            return None
        if chosen.seed == 0:
            chosen = replace(chosen, seed=_derive_seed(self.seed, shard_id))
        return chosen

    def to_json(self) -> dict:
        payload: dict = {
            "seed": self.seed,
            "hops": {key: plan.to_json() for key, plan in self.hops},
        }
        if self.engine is not None:
            payload["engine"] = self.engine.to_json()
        return payload

    @staticmethod
    def from_json(data: Mapping) -> "ChaosPlan":
        unknown = set(data) - {"hops", "engine", "seed"}
        if unknown:
            raise ChaosError(f"unknown ChaosPlan fields: {sorted(unknown)}")
        hops_data = data.get("hops", {})
        if not isinstance(hops_data, Mapping):
            raise ChaosError("ChaosPlan 'hops' must map hop names to plans")
        hops = tuple(
            (str(key), NetFaultPlan.from_json(value))
            for key, value in hops_data.items()
        )
        engine = data.get("engine")
        return ChaosPlan(
            hops=hops,
            engine=FaultPlan.from_json(engine) if engine is not None else None,
            seed=int(data.get("seed", 0)),
        )


def load_chaos_plan(path: str) -> ChaosPlan:
    """Read a :class:`ChaosPlan` from a JSON file (``--chaos-plan``)."""
    import json

    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as err:
        raise ChaosError(f"cannot read chaos plan {path}: {err}")
    if not isinstance(data, Mapping):
        raise ChaosError(f"{path}: a chaos plan is a JSON object")
    return ChaosPlan.from_json(data)


class ChaosProxy:
    """A fault-injecting relay on one socket hop.

    Listens on its own endpoint (Unix path or ephemeral TCP) and
    forwards byte streams to ``upstream``, subjecting each connection
    to its :class:`NetFaultPlan` decision.  The request direction is
    relayed verbatim (except under refusal/blackhole, where nothing is
    relayed at all); faults that need a *computed-but-undelivered*
    verdict (reset, truncation, corruption) act on the reply direction,
    which is exactly the adversarial window the cluster's journal-keyed
    dedupe exists for.

    Thread-per-connection, like the router it impersonates: requests
    are rare and heavy, and blocking relays with short poll timeouts
    keep :meth:`stop` prompt.
    """

    def __init__(
        self,
        upstream: Any,
        plan: NetFaultPlan,
        listen_path: Optional[str] = None,
        listen_host: str = "127.0.0.1",
        name: str = "hop",
        connect_timeout: float = 10.0,
    ) -> None:
        from repro.service.client import parse_address

        self.upstream = (
            parse_address(upstream) if isinstance(upstream, str) else upstream
        )
        self.plan = plan
        self.name = name
        self.connect_timeout = connect_timeout
        self._listen_path = listen_path
        self._listen_host = listen_host
        self._listener: Optional[socket.socket] = None
        self._address: Optional[tuple[str, Any]] = None
        self._stopping = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._ordinal = 0
        self._open: set[socket.socket] = set()
        self.counters: dict[str, int] = {"connections": 0, "relayed": 0}
        for decision in _DECISIONS:
            self.counters[decision] = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> tuple[str, Any]:
        """Where peers should connect (valid after :meth:`start`)."""
        if self._address is None:
            raise ChaosError("proxy not started")
        return self._address

    def start(self) -> "ChaosProxy":
        if self._listener is not None:
            return self
        if self._listen_path is not None:
            import os

            if os.path.exists(self._listen_path):
                os.unlink(self._listen_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self._listen_path)
            self._address = ("unix", self._listen_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._listen_host, 0))
            self._address = ("tcp", listener.getsockname()[:2])
        listener.listen(64)
        listener.settimeout(0.25)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"chaos-{self.name}", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            open_socks = list(self._open)
        for sock in open_socks:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._listen_path is not None:
            import os

            try:
                os.unlink(self._listen_path)
            except OSError:
                pass

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self.counters)

    def _count(self, what: str) -> None:
        with self._lock:
            self.counters[what] = self.counters.get(what, 0) + 1

    # -- the relay -----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self._ordinal += 1
                ordinal = self._ordinal
                self.counters["connections"] += 1
                self._open.add(conn)
            thread = threading.Thread(
                target=self._serve, args=(conn, ordinal), daemon=True
            )
            thread.start()

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._open.add(sock)

    def _untrack(self, sock: socket.socket) -> None:
        with self._lock:
            self._open.discard(sock)
        try:
            sock.close()
        except OSError:
            pass

    def _serve(self, conn: socket.socket, ordinal: int) -> None:
        decision = self.plan.decide(ordinal)
        try:
            if decision == REFUSE:
                self._count(REFUSE)
                return
            if decision == BLACKHOLE:
                self._count(BLACKHOLE)
                self._swallow(conn)
                return
            self._relay(conn, decision)
        finally:
            self._untrack(conn)

    def _swallow(self, conn: socket.socket) -> None:
        """A partitioned connection: read and discard until the peer
        gives up or the proxy stops.  Nothing ever crosses."""
        conn.settimeout(0.25)
        while not self._stopping.is_set():
            try:
                if not conn.recv(65536):
                    return
            except socket.timeout:
                continue
            except OSError:
                return

    def _connect_upstream(self) -> Optional[socket.socket]:
        family, target = self.upstream
        sock = socket.socket(
            socket.AF_UNIX if family == "unix" else socket.AF_INET,
            socket.SOCK_STREAM,
        )
        sock.settimeout(self.connect_timeout)
        try:
            sock.connect(target)
        except OSError:
            sock.close()
            return None
        return sock

    def _relay(self, conn: socket.socket, decision: Optional[str]) -> None:
        upstream = self._connect_upstream()
        if upstream is None:
            return  # the hop is honest about a dead upstream: EOF
        self._track(upstream)
        try:
            pump = threading.Thread(
                target=self._pump_request, args=(conn, upstream), daemon=True
            )
            pump.start()
            self._pump_reply(upstream, conn, decision)
            # The reply side is done (EOF or an injected fault): hang up
            # on the client *now* — a reset must look like a reset, not
            # like a stall until the request pump gives up.
            self._untrack(conn)
            pump.join(timeout=5.0)
        finally:
            self._untrack(upstream)

    def _pump_request(self, conn: socket.socket, upstream: socket.socket) -> None:
        """client -> upstream, verbatim; half-close on client EOF so the
        upstream sees a complete request."""
        conn.settimeout(0.25)
        while not self._stopping.is_set():
            try:
                data = conn.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            if not data:
                try:
                    upstream.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                return
            try:
                upstream.sendall(data)
            except OSError:
                return

    def _pump_reply(
        self, upstream: socket.socket, conn: socket.socket, decision: Optional[str]
    ) -> None:
        """upstream -> client, with the reply-direction faults applied."""
        plan = self.plan
        upstream.settimeout(0.25)
        first = True
        sent = 0
        while not self._stopping.is_set():
            try:
                data = upstream.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            if not data:
                try:
                    conn.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                return
            if first:
                first = False
                if plan.latency > 0.0:
                    time.sleep(plan.latency)
                if decision == RESET:
                    # The upstream answered; the network ate it.
                    self._count(RESET)
                    return
                if decision == CORRUPT:
                    self._count(CORRUPT)
                    index = min(plan.corrupt_offset, len(data) - 1)
                    mangled = bytearray(data)
                    mangled[index] ^= 0xFF
                    data = bytes(mangled)
            if decision == TRUNCATE:
                keep = max(0, plan.truncate_bytes - sent)
                if keep < len(data):
                    self._count(TRUNCATE)
                    try:
                        conn.sendall(data[:keep])
                    except OSError:
                        pass
                    return
            try:
                conn.sendall(data)
            except OSError:
                return
            sent += len(data)
            self._count("relayed")


__all__ = [
    "BLACKHOLE",
    "CORRUPT",
    "ChaosError",
    "ChaosPlan",
    "ChaosProxy",
    "NetFaultPlan",
    "REFUSE",
    "RESET",
    "TRUNCATE",
    "load_chaos_plan",
]
