"""Verification-as-a-service: ``repro-spi serve`` and its client.

The batch runner (:func:`repro.runtime.supervisor.run_suite`) answers
"verify this list of jobs once"; this package answers "keep a warm
worker pool around and verify whatever shows up", with the robustness
furniture a long-running process needs — bounded admission with load
shedding, per-request deadlines, per-protocol circuit breakers, and a
graceful SIGTERM drain that leaves a resumable journal behind.

Layers, bottom up:

* :mod:`repro.service.framing` — length-prefixed JSON frames;
* :mod:`repro.service.protocol` — the request/response schema;
* :mod:`repro.service.admission` — the bounded shed-on-full queue;
* :mod:`repro.service.breaker` — per-protocol circuit breakers;
* :mod:`repro.service.server` — the selectors event loop on top of the
  supervised :class:`~repro.runtime.supervisor.WorkerPool`;
* :mod:`repro.service.client` — blocking client with retry, backoff,
  jitter, and deadline propagation;
* :mod:`repro.service.store` — the persistent cross-run verdict store
  (``--verdict-store``): crash-safe sharded JSONL segments serving
  whole verdicts cache-aside across restarts (see ``docs/store.md``);
* :mod:`repro.service.shards` / :mod:`repro.service.health` /
  :mod:`repro.service.router` — the ``repro-spi cluster`` layer: a
  consistent-hash ring over supervised shard processes, breaker-backed
  active health checks, and a router with journal-keyed exactly-once
  failover (see ``docs/cluster.md``).
"""

from repro.service.admission import AdmissionQueue
from repro.service.breaker import BreakerBoard, CircuitBreaker
from repro.service.client import ServiceClient, ServiceUnavailable, parse_address
from repro.service.framing import (
    MAX_FRAME,
    FrameDecoder,
    FramingError,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    parse_request,
)
from repro.service.health import HealthMonitor
from repro.service.router import ClusterError, Router, RouterConfig, run_cluster
from repro.service.server import Server, ServerConfig, ServiceError, serve
from repro.service.shards import HashRing, LocalShard, ShardSpec
from repro.service.store import (
    StoreError,
    VerdictStore,
    storable_result,
    store_key,
)

__all__ = [
    "AdmissionQueue",
    "BreakerBoard",
    "CircuitBreaker",
    "ClusterError",
    "FrameDecoder",
    "FramingError",
    "HashRing",
    "HealthMonitor",
    "LocalShard",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Router",
    "RouterConfig",
    "Server",
    "ServerConfig",
    "ShardSpec",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "StoreError",
    "VerdictStore",
    "storable_result",
    "store_key",
    "encode_frame",
    "parse_address",
    "parse_request",
    "recv_frame",
    "run_cluster",
    "send_frame",
    "serve",
]
