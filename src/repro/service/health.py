"""Active shard health checking for the cluster router.

Liveness of a shard *process* (did it exit?) is necessary but not
sufficient: a shard can be alive and useless — wedged event loop,
unreachable socket, or politely draining after someone SIGTERMed it.
The router therefore probes every shard with the cheapest request the
protocol has, ``ping``, on a fixed interval, and feeds the outcomes
into one :class:`~repro.service.breaker.CircuitBreaker` per shard:

* ``threshold`` consecutive probe failures **eject** the shard — its
  breaker opens, the router drops it from the hash ring, and its arc
  remaps to the surviving shards (in-flight requests are re-driven
  through the journal-dedupe path, see :mod:`repro.service.router`);
* an ejected shard is re-probed after the breaker ``cooldown`` (the
  half-open probe); one good pong **recovers** it into the ring;
* transport failures observed by the *forwarding* path (a connect
  refused, a mid-request reset) are reported here too via
  :meth:`HealthMonitor.note_failure` — real traffic is better health
  evidence than the next scheduled probe, and counting it makes
  ejection latency one failed request, not ``threshold × interval``.

A pong that says ``draining: true`` counts as a *failure*: the shard
answers, but routing new work to a closing door only manufactures
``draining`` refusals.

Probing is synchronous and injectable (``pinger``/``clock``), so unit
tests drive ejection and recovery without sockets or sleeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.service.breaker import CLOSED, CircuitBreaker


def ping_shard(address: Any, timeout: float = 2.0) -> dict:
    """One blocking ping against ``address``; raises on any failure,
    returns the pong payload."""
    from repro.service.client import ServiceClient, ServiceUnavailable

    reply = ServiceClient(address, timeout=timeout, retries=0).call({"kind": "ping"})
    if reply.get("status") != "pong":
        raise ServiceUnavailable(f"expected pong, got {reply.get('status')!r}")
    return reply


@dataclass(eq=False)
class ShardHealth:
    """One shard's probe history."""

    breaker: CircuitBreaker
    address: Any
    last_checked: float = 0.0
    next_check: float = 0.0
    last_pong: Optional[dict] = None
    last_error: Optional[str] = None
    checks: int = 0
    failures: int = 0

    @property
    def healthy(self) -> bool:
        return self.breaker.state == CLOSED

    def snapshot(self) -> dict:
        return {
            "healthy": self.healthy,
            "breaker": self.breaker.snapshot(),
            "checks": self.checks,
            "failures": self.failures,
            "last_error": self.last_error,
            "last_pong": self.last_pong,
        }


class HealthMonitor:
    """Periodic ping probes with breaker-backed ejection/recovery.

    ``sweep(now)`` is the router-loop entry point: it probes every
    shard that is due and returns the membership *transitions* —
    ``[(shard_id, "ejected" | "recovered"), ...]`` — so the caller can
    rebuild its hash ring exactly when membership changed and not
    otherwise.
    """

    def __init__(
        self,
        interval: float = 1.0,
        timeout: float = 2.0,
        threshold: int = 2,
        cooldown: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        pinger: Callable[[Any, float], dict] = ping_shard,
        jitter: Optional[Callable[[], float]] = None,
    ) -> None:
        self.interval = interval
        self.timeout = timeout
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.pinger = pinger
        #: Optional ``random()``-style source spreading each shard's
        #: next probe over ``[0.5, 1.5) × interval``.  Without it probes
        #: stay exactly interval-paced (what the injected-clock tests
        #: pin down); with it a fleet that was ejected together does not
        #: re-probe (and re-recover, and re-stampede) in lockstep.
        self.jitter = jitter
        self._shards: dict[str, ShardHealth] = {}

    def _next_gap(self) -> float:
        if self.jitter is None:
            return self.interval
        return self.interval * (0.5 + self.jitter())

    # -- membership ----------------------------------------------------

    def watch(self, shard_id: str, address: Any) -> ShardHealth:
        """Start (or keep) watching a shard; new shards begin healthy —
        the supervisor spawned them on purpose and the first probes will
        say otherwise quickly enough."""
        health = self._shards.get(shard_id)
        if health is None:
            health = ShardHealth(
                breaker=CircuitBreaker(
                    threshold=self.threshold,
                    cooldown=self.cooldown,
                    clock=self.clock,
                ),
                address=address,
            )
            self._shards[shard_id] = health
        health.address = address
        return health

    def forget(self, shard_id: str) -> None:
        self._shards.pop(shard_id, None)

    def healthy(self, shard_id: str) -> bool:
        health = self._shards.get(shard_id)
        return health is not None and health.healthy

    def healthy_ids(self) -> frozenset[str]:
        return frozenset(sid for sid, h in self._shards.items() if h.healthy)

    # -- evidence ------------------------------------------------------

    def note_failure(self, shard_id: str, detail: str) -> bool:
        """Record out-of-band failure evidence (a forwarding error).

        Returns ``True`` when this report *ejected* the shard (healthy
        -> unhealthy transition), so the caller can rebuild its ring.
        """
        health = self._shards.get(shard_id)
        if health is None:
            return False
        was = health.healthy
        health.failures += 1
        health.last_error = detail
        health.breaker.record_fault(detail)
        return was and not health.healthy

    def eject(self, shard_id: str, detail: str) -> bool:
        """Eject a shard on conclusive evidence (its process exited):
        force the breaker open now rather than waiting for ``threshold``
        probes to confirm what the supervisor already knows.  Returns
        ``True`` when this call made the transition.
        """
        health = self._shards.get(shard_id)
        if health is None:
            return False
        was = health.healthy
        health.last_error = detail
        if was:
            health.failures += 1
        while health.breaker.state == CLOSED:
            health.breaker.record_fault(detail)
        return was

    def note_success(self, shard_id: str) -> bool:
        """Record out-of-band success evidence; ``True`` on recovery."""
        health = self._shards.get(shard_id)
        if health is None:
            return False
        was = health.healthy
        health.breaker.record_success()
        return not was and health.healthy

    # -- probing -------------------------------------------------------

    def check(self, shard_id: str) -> bool:
        """Probe one shard right now; returns its post-probe health."""
        health = self._shards.get(shard_id)
        if health is None:
            return False
        health.checks += 1
        health.last_checked = self.clock()
        try:
            pong = self.pinger(health.address, self.timeout)
            if pong.get("draining"):
                raise RuntimeError("shard is draining")
        except Exception as err:  # transport, protocol, or draining
            health.failures += 1
            health.last_error = f"{type(err).__name__}: {err}"
            health.breaker.record_fault(health.last_error)
            return False
        health.last_pong = pong
        health.last_error = None
        health.breaker.record_success()
        return True

    def sweep(self, now: Optional[float] = None) -> list[tuple[str, str]]:
        """Probe every shard that is due; return membership transitions.

        Healthy shards are probed every ``interval``.  Ejected shards
        are probed when their breaker grants the half-open slot (the
        breaker's ``cooldown``, not the sweep ``interval``, paces
        re-probes — recovering a shard too eagerly re-creates the
        flapping the breaker exists to damp).
        """
        now = self.clock() if now is None else now
        transitions: list[tuple[str, str]] = []
        for shard_id, health in list(self._shards.items()):
            if health.healthy:
                if now < health.next_check:
                    continue
                health.next_check = now + self._next_gap()
                if not self.check(shard_id) and not health.healthy:
                    transitions.append((shard_id, "ejected"))
            else:
                if not health.breaker.allow():
                    continue
                if self.check(shard_id):
                    transitions.append((shard_id, "recovered"))
        return transitions

    def snapshot(self) -> dict:
        return {sid: h.snapshot() for sid, h in sorted(self._shards.items())}


__all__ = ["HealthMonitor", "ShardHealth", "ping_shard"]
