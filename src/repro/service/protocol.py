"""Request/response schema of the verification service.

One frame (see :mod:`repro.service.framing`) carries one request or one
response, both flat JSON objects.

Requests::

    {"v": 1, "id": "...", "kind": "secrecy" | "authentication" |
     "freshness" | "explore" | "check" | "may-preorder" | "ping" |
     "status",
     "target": {...},              # absent for ping/status
     "max_states": 4000, "max_depth": 40,
     "secret": "KAB", "sender": "A",          # kind-specific options
     "deadline": 5.0,                         # seconds of budget left
     "fault_plan": {...}, "fault_attempts": [1]}   # test-only

``kind`` and ``target`` mirror :class:`repro.runtime.worker.Job` — a
request *is* a job description plus service envelope, so a verdict
obtained through the service is byte-comparable with the same job run
by batch ``check``/``suite`` (the differential-parity tests rely on
this).  ``may-preorder`` is an alias for ``check``: Definition 4's
"securely implements" is verified through the may-testing preorder.

Responses carry the request ``id`` and a ``status``:

===========  =========================================================
status       meaning
===========  =========================================================
ok           ``result`` holds the verdict (possibly qualified)
degraded     no fresh verdict — ``result`` holds an
             ``Exhaustion(reason="fault")``-qualified stub; sent when a
             circuit is open or retries were exhausted by worker
             crashes
expired      the request's deadline lapsed while it sat in the
             admission queue; it was shed un-run (distinct from
             ``overloaded``: retrying is pointless, the budget is gone)
overloaded   shed at admission: the bounded queue was full; retry
             after ``retry_after`` seconds
draining     the server is shutting down and took nothing on
error        the request was malformed or named an unknown system
pong         answer to ``ping``
status       answer to ``status`` (queue/breaker/worker/metrics view)
===========  =========================================================

``ping`` doubles as the cluster's health probe, so a pong carries a
lightweight load snapshot besides liveness: ``draining`` (a draining
shard must be ejected from the routing ring even though it still
answers), ``queue_depth``, ``busy``, and ``breakers_open``.  Responses
relayed through the ``repro-spi cluster`` router additionally carry the
``shard`` that produced them, and ``cached: true`` when the verdict was
served from a dead shard's journal instead of being recomputed (see
:mod:`repro.service.router`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.core.errors import ReproError
from repro.runtime.worker import KINDS, Job, JobError

#: Protocol version; bumped on incompatible schema changes.
PROTOCOL_VERSION = 1

#: Requests answered inline by the server, no worker involved.
CONTROL_KINDS = frozenset({"ping", "status"})

#: Accepted spellings -> canonical job kind.
KIND_ALIASES = {"may-preorder": "check"}

# Response statuses.
OK = "ok"
DEGRADED = "degraded"
EXPIRED = "expired"
OVERLOADED = "overloaded"
DRAINING = "draining"
ERROR = "error"
PONG = "pong"
STATUS = "status"

#: Statuses that carry a (possibly qualified) verdict in ``result``.
VERDICT_STATUSES = frozenset({OK, DEGRADED})


class ProtocolError(ReproError):
    """A request frame does not follow the service schema."""


@dataclass(frozen=True)
class Request:
    """One parsed verification request (already validated).

    ``job()`` lowers it to the exact :class:`Job` a batch run would
    execute.  ``fault_plan``/``fault_attempts`` are test instrumentation —
    the server refuses them unless started with fault injection
    explicitly allowed.
    """

    id: str
    kind: str
    target: Mapping[str, str]
    max_states: int = 4000
    max_depth: int = 40
    secret: Optional[str] = None
    sender: Optional[str] = None
    deadline: Optional[float] = None
    checkpoint_every: Optional[int] = 400
    fault_plan: Optional[dict] = None
    fault_attempts: Sequence[int] = (1,)

    def job(self) -> Job:
        return Job(
            id=self.id,
            kind=self.kind,
            target=dict(self.target),
            max_states=self.max_states,
            max_depth=self.max_depth,
            secret=self.secret,
            sender=self.sender,
            checkpoint_every=self.checkpoint_every,
        )


def default_id(kind: str, target: Mapping[str, str]) -> str:
    """The deterministic id a target gets when the client names none.

    Deterministic on purpose: it keys the service journal, so a
    re-submitted request lands on the same journal slot and a batch
    ``suite --resume`` over the journal can complete shed work.
    """
    for key in ("zoo", "sysfile", "spi"):
        if key in target:
            return f"{kind}:{key}:{target[key]}"
    if {"impl", "spec"} <= set(target):
        return f"{kind}:{target['impl']}:{target['spec']}"
    if "source" in target:
        digest = hashlib.sha256(target["source"].encode("utf-8")).hexdigest()[:12]
        return f"{kind}:source:{digest}"
    return f"{kind}:{sorted(target.items())!r}"


def protocol_key(target: Mapping[str, str]) -> str:
    """The circuit-breaker key: one breaker per verified *system*, so a
    protocol whose exploration keeps killing workers is isolated without
    taking unrelated protocols down with it."""
    for key in ("zoo", "sysfile", "spi"):
        if key in target:
            return f"{key}:{target[key]}"
    if {"impl", "spec"} <= set(target):
        return f"check:{target['impl']}:{target['spec']}"
    if "source" in target:
        digest = hashlib.sha256(target["source"].encode("utf-8")).hexdigest()[:12]
        return f"source:{digest}"
    return repr(sorted(target.items()))


def parse_request(data: Mapping[str, Any]) -> Request:
    """Validate one request frame (raises :class:`ProtocolError`)."""
    if not isinstance(data, Mapping):
        raise ProtocolError("request frame must be a JSON object")
    version = data.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} not supported (speaking {PROTOCOL_VERSION})"
        )
    kind = data.get("kind")
    if not isinstance(kind, str):
        raise ProtocolError("request needs a string 'kind'")
    kind = KIND_ALIASES.get(kind, kind)
    if kind in CONTROL_KINDS:
        return Request(id=str(data.get("id") or kind), kind=kind, target={})
    if kind not in KINDS:
        raise ProtocolError(
            f"unknown request kind {kind!r} (one of "
            f"{sorted(KINDS | CONTROL_KINDS | set(KIND_ALIASES))})"
        )
    target = data.get("target")
    if not isinstance(target, Mapping) or not target:
        raise ProtocolError(f"a {kind!r} request needs a non-empty 'target' object")
    deadline = data.get("deadline")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise ProtocolError(f"bad deadline {deadline!r}")
        if deadline <= 0:
            raise ProtocolError(f"bad deadline {deadline!r} (must be positive)")
    fault_attempts = data.get("fault_attempts", (1,))
    try:
        request = Request(
            id=str(data.get("id") or default_id(kind, target)),
            kind=kind,
            target={str(k): str(v) for k, v in target.items()},
            max_states=int(data.get("max_states", 4000)),
            max_depth=int(data.get("max_depth", 40)),
            secret=data.get("secret"),
            sender=data.get("sender"),
            deadline=deadline,
            checkpoint_every=data.get("checkpoint_every", 400),
            fault_plan=data.get("fault_plan"),
            fault_attempts=tuple(int(n) for n in fault_attempts),
        )
        request.job()  # validates kind/target the same way the worker will
    except (JobError, TypeError, ValueError) as err:
        raise ProtocolError(f"malformed request: {err}")
    return request


def response(rid: Optional[str], status: str, **fields: Any) -> dict:
    """Assemble one response frame."""
    reply = {"v": PROTOCOL_VERSION, "id": rid, "status": status}
    reply.update(fields)
    return reply
