"""Client for the verification service (``repro-spi submit``).

A thin blocking client over the framed-JSON protocol with the retry
discipline a robust caller wants baked in:

* **connection errors and ``overloaded`` responses are retried** with
  exponential backoff plus full jitter (the server sheds bursts fast on
  purpose; clients that all retry on the same schedule would just
  re-form the burst);
* **deadline propagation** — give :meth:`ServiceClient.call` a
  :class:`~repro.runtime.deadline.Deadline` and every attempt sends the
  *remaining* budget in the request (the clamped ``remaining()``, so an
  expired deadline is 0, never a negative socket timeout) and stops
  retrying once the budget is spent;
* **``draining`` is not retried** — the server is going away; the
  caller should fail over or fall back to a batch run, not hammer a
  closing door;
* **``expired`` is not retried** — the server has already declared the
  queued deadline dead; backing off and re-submitting the same doomed
  request would burn the whole retry budget to learn the same thing
  (``repro-spi submit`` maps it straight to exit 3);
* **backoff never outlives the deadline** — every sleep (backoff jitter
  and server ``retry_after`` hints alike) is capped at the remaining
  budget, and a sleep that *would* consume the entire remainder is not
  taken at all: the client fails fast instead of waking up expired;
* **address failover** — constructed with a *list* of addresses (a
  router and its standby, say) the client rotates to the next endpoint
  after a connection-level failure, so one dead listener costs a
  rotation, not the whole retry budget.

One connection per call: requests are rare and heavy (seconds of
verification), so connection reuse buys nothing and per-call sockets
make retry-after-crash trivial.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Callable, Optional

from repro.core.errors import ReproError
from repro.runtime.deadline import Deadline
from repro.service.framing import FramingError, recv_frame, send_frame
from repro.service.protocol import PROTOCOL_VERSION

#: Errors that mean "this attempt died, another might not".
_RETRIABLE = (ConnectionError, TimeoutError, socket.timeout, OSError, FramingError)


class ServiceUnavailable(ReproError):
    """The service could not be reached / kept shedding within the retry
    budget."""


def parse_address(spec: str) -> tuple[str, Any]:
    """``host:port`` -> a TCP address, anything else -> a Unix socket
    path.  (A bare port is written ``127.0.0.1:PORT``; paths containing
    a colon are not supported — name the socket somewhere else.)"""
    if ":" in spec:
        host, _, port = spec.rpartition(":")
        try:
            return ("tcp", (host or "127.0.0.1", int(port)))
        except ValueError:
            pass
    return ("unix", spec)


def cluster_addresses(cluster_dir: str) -> list[tuple[str, Any]]:
    """The router endpoints currently advertised by a cluster
    directory's ``cluster.json`` — Unix socket first, TCP second.

    Returns ``[]`` when the file is missing, partial, or unreadable
    (discovery is advisory: the caller keeps its last-known list).
    Suitable directly as a :class:`ServiceClient` ``refresh`` source:
    ``ServiceClient(addrs, refresh=lambda: cluster_addresses(dir))``.
    """
    import json
    import os

    path = os.path.join(cluster_dir, "cluster.json")
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return []
    router = data.get("router") or {}
    addresses: list[tuple[str, Any]] = []
    if router.get("socket"):
        addresses.append(("unix", router["socket"]))
    if router.get("tcp"):
        host, port = router["tcp"]
        addresses.append(("tcp", (host, int(port))))
    return addresses


class ServiceClient:
    """Blocking client with retry/backoff/jitter.

    Args:
        address: a ``parse_address`` result or its string form — or a
            *list* of either, tried in rotation: a connection-level
            failure advances to the next address for the following
            attempt (replies, including ``overloaded``, keep the
            current one).
        timeout: per-attempt socket timeout (connect and each read).
        retries: extra attempts after the first.
        jitter: uniform-[0,1) source, injectable for deterministic
            tests.
    """

    def __init__(
        self,
        address: Any,
        timeout: float = 60.0,
        retries: int = 3,
        backoff_base: float = 0.2,
        backoff_cap: float = 2.0,
        jitter: Optional[Callable[[], float]] = None,
        sleep: Callable[[float], None] = time.sleep,
        refresh: Optional[Callable[[], Any]] = None,
    ) -> None:
        specs = address if isinstance(address, list) else [address]
        if not specs:
            raise ValueError("ServiceClient needs at least one address")
        self.addresses = [
            parse_address(spec) if isinstance(spec, str) else spec for spec in specs
        ]
        self._cursor = 0
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter if jitter is not None else random.random
        self.sleep = sleep
        #: Optional discovery source re-consulted after connection-level
        #: failures: a callable returning the *current* address list (or
        #: ``None``/empty to keep the present one).  With a static list
        #: the client can only rotate among the endpoints it was born
        #: with — after a standby-router takeover rewrites
        #: ``cluster.json``, that list points exclusively at the dead
        #: primary.  ``refresh`` is how a running client follows the
        #: topology instead of restarting (see
        #: :func:`cluster_addresses`).
        self.refresh = refresh

    # -- transport -----------------------------------------------------

    @property
    def address(self) -> Any:
        """The endpoint the next attempt will use."""
        return self.addresses[self._cursor]

    def _rotate(self) -> None:
        self._cursor = (self._cursor + 1) % len(self.addresses)

    def _refresh_or_rotate(self) -> None:
        """After a connection-level failure: re-read discovery if we
        can; fall back to plain rotation when discovery is unavailable,
        unreadable, or unchanged."""
        if self.refresh is not None:
            try:
                specs = self.refresh()
            except Exception:
                specs = None
            if specs:
                if not isinstance(specs, list):
                    specs = [specs]
                fresh = [
                    parse_address(spec) if isinstance(spec, str) else spec
                    for spec in specs
                ]
                if fresh and fresh != self.addresses:
                    self.addresses = fresh
                    self._cursor = 0
                    return
        self._rotate()

    def _connect(self, timeout: float) -> socket.socket:
        family, target = self.address
        if family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(target)
        except OSError:
            sock.close()
            raise
        return sock

    def _attempt(self, message: dict, timeout: float) -> dict:
        sock = self._connect(timeout)
        try:
            send_frame(sock, message)
            reply = recv_frame(sock)
        finally:
            sock.close()
        if reply is None:
            raise ServiceUnavailable("server closed the connection without replying")
        return reply

    # -- the retry loop ------------------------------------------------

    def call(self, message: dict, deadline: Optional[Deadline] = None) -> dict:
        """Send one request; return the first non-``overloaded`` reply.

        Retries connection failures and ``overloaded`` sheds with
        jittered exponential backoff, bounded by ``retries`` and (when
        given) ``deadline``.  Raises :class:`ServiceUnavailable` when
        the budget runs out.
        """
        message = dict(message)
        message.setdefault("v", PROTOCOL_VERSION)
        last_error = "no attempt made"
        for attempt in range(self.retries + 1):
            hinted: Optional[float] = None
            remaining = deadline.remaining() if deadline is not None else None
            if remaining is not None:
                if remaining <= 0:
                    raise ServiceUnavailable(
                        f"deadline expired before attempt {attempt + 1} ({last_error})"
                    )
                message["deadline"] = round(remaining, 3)
            timeout = (
                min(self.timeout, remaining) if remaining is not None else self.timeout
            )
            try:
                reply = self._attempt(message, timeout)
            except ServiceUnavailable as err:
                last_error = str(err)
                self._refresh_or_rotate()
            except _RETRIABLE as err:
                last_error = f"{type(err).__name__}: {err}"
                self._refresh_or_rotate()
            else:
                if reply.get("status") != "overloaded":
                    # Terminal for this call: only a shed burst is worth
                    # another attempt.  `expired` in particular must fail
                    # fast — the server already declared the queued
                    # deadline dead, and re-submitting the same doomed
                    # request can only waste the retry budget.
                    return reply
                last_error = reply.get("error", "overloaded")
                hinted = reply.get("retry_after")
            if attempt >= self.retries:
                break
            delay = min(self.backoff_cap, self.backoff_base * (2**attempt))
            delay *= 0.5 + 0.5 * self.jitter()  # full-ish jitter, never zero
            if hinted is not None:
                delay = max(delay, float(hinted) * (0.5 + 0.5 * self.jitter()))
            if deadline is not None:
                # Cap every sleep — backoff and retry_after hint alike —
                # at the remaining budget, and refuse a sleep that would
                # consume all of it: waking up expired helps nobody.
                left = deadline.remaining()
                if delay >= left:
                    raise ServiceUnavailable(
                        f"deadline expired backing off before attempt "
                        f"{attempt + 2} ({last_error})"
                    )
                delay = min(delay, left)
            if delay > 0:
                self.sleep(delay)
        raise ServiceUnavailable(
            f"request failed after {self.retries + 1} attempt(s): {last_error}"
        )

    # -- conveniences --------------------------------------------------

    def ping(self) -> dict:
        return self.call({"kind": "ping"})

    def status(self) -> dict:
        return self.call({"kind": "status"})

    def submit(
        self,
        kind: str,
        target: dict,
        deadline: Optional[Deadline] = None,
        **options: Any,
    ) -> dict:
        """Submit one verification request (see
        :mod:`repro.service.protocol` for the fields)."""
        message = {"kind": kind, "target": target}
        message.update({k: v for k, v in options.items() if v is not None})
        return self.call(message, deadline=deadline)
