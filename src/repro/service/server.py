"""The verification server behind ``repro-spi serve``.

A long-running process that accepts framed JSON verification requests
(see :mod:`repro.service.protocol`) on a Unix socket and/or a TCP
listener and dispatches them onto the same supervised
:class:`~repro.runtime.supervisor.WorkerPool` the batch runner uses.
One event loop (``selectors``), no per-connection threads: client
sockets are non-blocking, worker pipes are swept with
``WorkerPool.poll(0)`` every tick.

What makes it a *service* rather than a socket wrapper around
``run_suite`` is the failure policy:

* **admission control** — a bounded queue
  (:class:`~repro.service.admission.AdmissionQueue`); when it is full
  new requests get a fast ``overloaded`` response instead of an
  unbounded backlog;
* **per-request deadlines** — a queued request whose budget expires is
  answered ``degraded`` without wasting a worker; a dispatched one gets
  the remaining budget as its cooperative deadline plus a scaled
  hard-kill backstop;
* **circuit breakers** — repeated worker crashes on one protocol open
  that protocol's breaker (:mod:`repro.service.breaker`); requests for
  it are answered immediately with a cached degraded
  ``Exhaustion(reason="fault")`` verdict while other protocols keep
  verifying normally;
* **supervised workers** — crashed/hung/OOM-killed workers are replaced
  by the pool with no lifetime spawn cap (a service replaces workers
  forever; the breaker, not a spawn budget, is what stops crash loops);
* **graceful drain** — on SIGTERM/SIGINT (or
  :meth:`Server.request_drain`): listeners close, queued requests are
  shed with ``draining`` responses, in-flight jobs get ``drain_grace``
  seconds to finish (then are killed and answered ``degraded``), the
  journal is flushed, and :meth:`Server.serve_forever` returns ``0``.

Every verdict, shed, and degrade is journaled (when a journal is
configured) in the suite-journal schema, so a batch run can finish what
the service could not::

    repro-spi suite --suite-file jobs.json --journal service.jsonl \\
        --resume [--retry-faults]

— shed requests (``type: "shed"``) and in-worker errors (``type:
"error"``) are invisible to resume filtering and simply re-run;
degraded fault verdicts (``status: "fault"``) re-run under
``--retry-faults``.
"""

from __future__ import annotations

import os
import random
import selectors
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.errors import ReproError
from repro.obs.metrics import Metrics, current_metrics
from repro.obs.trace import trace_event
from repro.runtime.exhaustion import Exhaustion
from repro.runtime.journal import Journal
from repro.runtime.supervisor import (
    WorkerPool,
    checkpointed_states,
    job_checkpoint_path,
)
from repro.service import protocol
from repro.service.admission import AdmissionQueue
from repro.service.breaker import CLOSED, BreakerBoard
from repro.service.framing import FrameDecoder, FramingError, encode_frame
from repro.service.protocol import ProtocolError, Request, parse_request


class ServiceError(ReproError):
    """The server was misconfigured (no listener, bad limits...)."""


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro-spi serve`` can tune.

    ``job_deadline`` is the *default* per-request budget; a request's
    own ``deadline`` field overrides it.  ``retries`` is deliberately
    lower than the batch default — an interactive client is better
    served by a fast degraded answer than a long retry ladder (and can
    resubmit; the breaker remembers).
    """

    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: Optional[int] = None
    workers: int = 2
    queue_limit: int = 64
    retries: int = 1
    job_deadline: Optional[float] = None
    max_rss_mb: Optional[float] = None
    journal_path: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: LRU bound on distinct per-protocol breakers (None = unbounded);
    #: only CLOSED, idle breakers are ever evicted.
    breaker_max: Optional[int] = 1024
    #: Replay the existing journal's verdict history into the breaker
    #: board at startup, so a respawned shard does not relearn a crash
    #: loop from scratch (see :meth:`BreakerBoard.rebuild`).
    rebuild_breakers: bool = False
    drain_grace: float = 10.0
    heartbeat_interval: float = 0.25
    heartbeat_grace: float = 15.0
    hang_grace: float = 5.0
    backoff_base: float = 0.25
    backoff_cap: float = 8.0
    #: Event-loop tick (selector timeout) in seconds.
    tick: float = 0.05
    #: Accept ``fault_plan`` fields in requests (crash-injection tests
    #: only; a production server refuses them).
    allow_fault_injection: bool = False
    #: Treat the request id as an idempotency key (``serve --dedupe``):
    #: a request whose id already has an ``ok`` verdict in this server's
    #: journal is answered from the journal (``cached: true``), and a
    #: request whose id is currently queued or running is *coalesced*
    #: onto the in-flight ticket instead of computed twice.  Cluster
    #: shards run with this on — it is the shard-side backstop that
    #: keeps verdicts exactly-once when a promoted standby re-drives
    #: work the dead primary already delivered here.
    dedupe: bool = False
    #: Directory of a persistent cross-run
    #: :class:`~repro.service.store.VerdictStore` (``serve
    #: --verdict-store``).  Admission checks it cache-aside — a hit
    #: short-circuits before the worker pool with ``cached: true`` and
    #: a ``store.hit`` metric, and is *not* journaled (the verdict was
    #: never computed here; journaling it again would double-journal
    #: warm restarts) — and completions write budget-pure ``ok``
    #: verdicts through.  Degraded fault verdicts are never written:
    #: they are retryable by design.
    verdict_store: Optional[str] = None


@dataclass(eq=False)
class _Client:
    """One connected peer: its socket, read decoder, and write buffer."""

    sock: socket.socket
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    outbuf: bytearray = field(default_factory=bytearray)
    closed: bool = False


@dataclass(eq=False)
class _Ticket:
    """One admitted request travelling through queue -> worker -> reply.

    ``ready_at``/``deadline_at`` are the attributes
    :class:`AdmissionQueue` keys on; ``probe`` marks the single request
    allowed through a half-open breaker.
    """

    request: Request
    client: Optional[_Client]
    key: str
    admitted_at: float
    deadline_at: Optional[float] = None
    attempt: int = 1
    ready_at: float = 0.0
    started_first: Optional[float] = None
    probe: bool = False
    #: Verdict-store key computed at admission (``--verdict-store``);
    #: ``None`` when there is no store, the job cannot be keyed, or the
    #: request carries test instrumentation (fault plans must run).
    store_key: Optional[str] = None
    events: list[str] = field(default_factory=list)
    #: Duplicate submitters coalesced onto this ticket (``--dedupe``);
    #: they receive the same final answer as the original client.
    extra_clients: list = field(default_factory=list)


class Server:
    """See the module docstring; constructed from a :class:`ServerConfig`,
    driven by :meth:`serve_forever`."""

    def __init__(self, config: ServerConfig) -> None:
        if config.socket_path is None and config.port is None:
            raise ServiceError("serve needs a unix socket path and/or a TCP port")
        if config.workers < 1:
            raise ServiceError("need at least one worker")
        self.config = config
        self.queue: AdmissionQueue[_Ticket] = AdmissionQueue(config.queue_limit)
        self.breakers = BreakerBoard(
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
            max_size=config.breaker_max,
        )
        if config.rebuild_breakers and config.journal_path is not None:
            from repro.runtime.journal import read_journal

            try:
                self.breakers.rebuild(read_journal(config.journal_path))
            except ReproError:
                pass  # a damaged journal must not block the restart
        self.metrics = Metrics()
        self.pool = WorkerPool(
            config.workers,
            heartbeat_interval=config.heartbeat_interval,
            heartbeat_grace=config.heartbeat_grace,
            max_rss_mb=config.max_rss_mb,
            max_spawns=None,  # services replace workers forever
            name="repro-serve-worker",
        )
        self.journal = (
            Journal(config.journal_path, fresh=False)
            if config.journal_path is not None
            else None
        )
        if config.dedupe and config.journal_path is not None:
            from repro.runtime.journal import JournalIndex

            self._journal_index: Optional[JournalIndex] = JournalIndex(
                config.journal_path
            )
        else:
            self._journal_index = None
        if config.verdict_store is not None:
            from repro.service.store import VerdictStore

            self.store: Optional[VerdictStore] = VerdictStore(config.verdict_store)
        else:
            self.store = None
        #: request id -> live ticket, for coalescing duplicates.
        self._inflight_ids: dict[str, _Ticket] = {}
        self._selector = selectors.DefaultSelector()
        self._listeners: list[socket.socket] = []
        self._clients: set[_Client] = set()
        self._drain = threading.Event()
        self._draining = False
        self._drain_deadline: Optional[float] = None
        self._started_at = time.monotonic()
        self._bound = False
        #: Where the TCP listener actually landed (port 0 = ephemeral).
        self.tcp_address: Optional[tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------

    def bind(self) -> None:
        """Create and register the listeners (idempotent)."""
        if self._bound:
            return
        cfg = self.config
        if cfg.socket_path is not None:
            if os.path.exists(cfg.socket_path):
                # A stale socket file from a dead server blocks bind();
                # a live server would still hold it open, but two
                # servers on one path is operator error either way.
                os.unlink(cfg.socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(cfg.socket_path)
            self._add_listener(listener)
        if cfg.port is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((cfg.host or "127.0.0.1", cfg.port))
            self.tcp_address = listener.getsockname()[:2]
            self._add_listener(listener)
        self._bound = True

    def _add_listener(self, listener: socket.socket) -> None:
        listener.listen(64)
        listener.setblocking(False)
        self._selector.register(listener, selectors.EVENT_READ, ("listener", None))
        self._listeners.append(listener)

    def request_drain(self) -> None:
        """Ask the serve loop to drain (thread- and signal-safe)."""
        self._drain.set()

    @property
    def draining(self) -> bool:
        return self._draining or self._drain.is_set()

    def serve_forever(self) -> int:
        """Run until drained; returns the process exit status (``0``)."""
        self.bind()
        try:
            while True:
                if self._drain.is_set() and not self._draining:
                    self._begin_drain()
                self._pump_sockets(self.config.tick)
                now = time.monotonic()
                self._handle_pool_events(now)
                self._expire_queued(now)
                if not self._draining:
                    self.pool.ensure()
                    self._dispatch_ready(now)
                else:
                    if self._drain_finished(now):
                        break
                self.metrics.set_gauge("service.queue_depth", self.queue.depth)
                self.metrics.set_gauge("service.inflight", len(self.pool.busy()))
        finally:
            self._shutdown()
        return 0

    # -- socket plumbing -----------------------------------------------

    def _pump_sockets(self, timeout: float) -> None:
        for key, mask in self._selector.select(timeout):
            role, payload = key.data
            if role == "listener":
                self._accept(key.fileobj)
            else:
                client = payload
                if mask & selectors.EVENT_READ:
                    self._read(client)
                if mask & selectors.EVENT_WRITE and not client.closed:
                    self._flush(client)

    def _accept(self, listener: socket.socket) -> None:
        try:
            sock, _ = listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        client = _Client(sock)
        self._clients.add(client)
        self._selector.register(sock, selectors.EVENT_READ, ("client", client))
        self.metrics.inc("service.connections")

    def _read(self, client: _Client) -> None:
        try:
            data = client.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(client)
            return
        if not data:
            self._close(client)
            return
        try:
            frames = client.decoder.feed(data)
        except FramingError as err:
            self._respond(client, protocol.response(None, protocol.ERROR, error=str(err)))
            self._close(client, after_flush=True)
            return
        for frame in frames:
            self._handle_frame(client, frame)

    def _respond(self, client: Optional[_Client], message: dict) -> None:
        """Queue (and opportunistically send) one response frame.

        A vanished client is not an error: its job still completes and
        its verdict is still journaled — the resume path is the client's
        second chance.
        """
        if client is None or client.closed:
            return
        try:
            client.outbuf.extend(encode_frame(message))
        except FramingError:
            client.outbuf.extend(
                encode_frame(
                    protocol.response(
                        message.get("id"), protocol.ERROR, error="response too large"
                    )
                )
            )
        self._flush(client)

    def _flush(self, client: _Client) -> None:
        while client.outbuf:
            try:
                sent = client.sock.send(client.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close(client)
                return
            del client.outbuf[:sent]
        self._set_write_interest(client, bool(client.outbuf))

    def _set_write_interest(self, client: _Client, wanted: bool) -> None:
        if client.closed:
            return
        mask = selectors.EVENT_READ | (selectors.EVENT_WRITE if wanted else 0)
        try:
            self._selector.modify(client.sock, mask, ("client", client))
        except (KeyError, ValueError, OSError):
            pass

    def _close(self, client: _Client, after_flush: bool = False) -> None:
        if client.closed:
            return
        if after_flush and client.outbuf:
            # Best effort: push what we can before hanging up.
            try:
                client.sock.setblocking(True)
                client.sock.settimeout(1.0)
                client.sock.sendall(bytes(client.outbuf))
            except OSError:
                pass
        client.closed = True
        self._clients.discard(client)
        try:
            self._selector.unregister(client.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            client.sock.close()
        except OSError:
            pass

    # -- request handling ----------------------------------------------

    def _handle_frame(self, client: _Client, frame: dict) -> None:
        self.metrics.inc("service.requests")
        try:
            request = parse_request(frame)
        except ProtocolError as err:
            self.metrics.inc("service.errors")
            rid = frame.get("id") if isinstance(frame, dict) else None
            self._respond(client, protocol.response(rid, protocol.ERROR, error=str(err)))
            return
        if request.kind in protocol.CONTROL_KINDS:
            self._handle_control(client, request)
            return
        if request.fault_plan is not None and not self.config.allow_fault_injection:
            self.metrics.inc("service.errors")
            self._respond(
                client,
                protocol.response(
                    request.id,
                    protocol.ERROR,
                    error="fault injection is disabled on this server",
                ),
            )
            return
        if self._draining:
            self._respond(
                client,
                protocol.response(
                    request.id, protocol.DRAINING, error="server is draining"
                ),
            )
            return
        if self.config.dedupe:
            if self._serve_cached(client, request):
                return
            existing = self._inflight_ids.get(request.id)
            if existing is not None and existing.request.kind == request.kind:
                # Same idempotency key, already queued or running: both
                # submitters get the one verdict.  This is what makes a
                # re-driven request from a second router a no-op instead
                # of a duplicate computation.
                existing.extra_clients.append(client)
                self.metrics.inc("service.coalesced")
                trace_event("service.coalesce", job=request.id)
                return
        hit, store_key = self._check_store(client, request)
        if hit:
            return
        now = time.monotonic()
        key = protocol.protocol_key(request.target)
        breaker = self.breakers.get(key)
        if not breaker.allow():
            self._degrade_fast(client, request, breaker.last_fault or "circuit open")
            return
        ticket = _Ticket(
            request=request,
            client=client,
            key=key,
            admitted_at=now,
            probe=breaker.state != CLOSED,
            store_key=store_key,
        )
        budget = request.deadline or self.config.job_deadline
        if budget is not None:
            ticket.deadline_at = now + budget
        if not self.queue.offer(ticket):
            if ticket.probe:
                breaker.abandon_probe()
            self.metrics.inc("service.shed")
            self._journal({
                "type": "shed", "job": request.id, "protocol": key,
                "reason": "overloaded",
            })
            self._respond(
                client,
                protocol.response(
                    request.id,
                    protocol.OVERLOADED,
                    error=f"admission queue full ({self.queue.limit})",
                    retry_after=round(self.config.backoff_base * 4, 3),
                ),
            )
            return
        if self.config.dedupe:
            self._inflight_ids[request.id] = ticket
            # Claim the idempotency key durably *before* any verdict
            # exists.  A router promoted mid-compute sees no result for
            # a re-driven id, but it does see this claim — and pins the
            # retry back to this shard, where the in-flight coalescer
            # above turns it into the one verdict instead of a second
            # computation on a different shard.  Wall-clock (not
            # monotonic) time: claim recency is compared across shard
            # processes.
            self._journal({
                "type": "claim", "job": request.id, "protocol": key,
                "time": time.time(), "pid": os.getpid(),
            })
        trace_event("service.admit", job=request.id, depth=self.queue.depth)

    def _serve_cached(self, client: Optional[_Client], request: Request) -> bool:
        """Answer from this shard's own journal when the id already has
        an ``ok`` verdict.  Only ``ok`` records dedupe here: serving a
        cached *fault* verdict would freeze a transient degradation into
        a permanent answer (and break parity with a fault-free run) —
        those keep their recompute-on-resubmit semantics."""
        if self._journal_index is None:
            return False
        record = self._journal_index.result(request.id)
        if record is None or record.get("status") != "ok":
            return False
        self.metrics.inc("service.deduped")
        trace_event("service.dedupe", job=request.id)
        self._respond(
            client,
            protocol.response(
                request.id, protocol.OK, result=record["result"], cached=True
            ),
        )
        return True

    def _check_store(
        self, client: Optional[_Client], request: Request
    ) -> tuple[bool, Optional[str]]:
        """Cache-aside verdict-store check at admission.

        Returns ``(answered, store_key)``: on a hit the client already
        got the stored verdict (``cached: true``, ``store.hit`` metric)
        and nothing is journaled — the verdict was computed by some
        earlier process incarnation, and re-journaling it here would
        make a warm restart double-journal.  On a miss the computed key
        rides the ticket so the completion path can write through.
        Fault-injected requests bypass the store entirely: test
        instrumentation must actually run (and must never persist).
        """
        if self.store is None or request.fault_plan is not None:
            return False, None
        from repro.service.store import store_key

        key = store_key(request.job())
        if key is None:
            return False, None
        result = self.store.lookup(key)
        if result is None:
            self.metrics.inc("store.miss")
            return False, key
        self.metrics.inc("store.hit")
        trace_event("service.store_hit", job=request.id)
        self._respond(
            client,
            protocol.response(request.id, protocol.OK, result=result, cached=True),
        )
        return True, key

    def _answer(self, ticket: _Ticket, message: dict) -> None:
        """Deliver a ticket's final answer to its client *and* every
        coalesced duplicate, retiring its idempotency-key entry."""
        if self._inflight_ids.get(ticket.request.id) is ticket:
            del self._inflight_ids[ticket.request.id]
        self._respond(ticket.client, message)
        for client in ticket.extra_clients:
            self._respond(client, message)

    def _handle_control(self, client: _Client, request: Request) -> None:
        if request.kind == "ping":
            # The pong doubles as the cluster health probe: liveness
            # plus the load signals a router ejects/weighs shards on.
            self._respond(
                client,
                protocol.response(
                    request.id,
                    protocol.PONG,
                    server="repro-spi",
                    pid=os.getpid(),
                    draining=self.draining,
                    queue_depth=self.queue.depth,
                    busy=len(self.pool.busy()),
                    breakers_open=self.breakers.open_count,
                ),
            )
        else:
            self._respond(
                client,
                protocol.response(request.id, protocol.STATUS, **self.status()),
            )

    def status(self) -> dict:
        """The ``status`` payload (also what the CLI writes as an
        artifact)."""
        return {
            "server": {
                "pid": os.getpid(),
                "draining": self.draining,
                "uptime": round(time.monotonic() - self._started_at, 3),
            },
            "pool": {
                "size": self.config.workers,
                "alive": self.pool.alive_count(),
                "busy": len(self.pool.busy()),
                "spawned": self.pool.spawned,
            },
            "queue": self.queue.snapshot(),
            "breakers": self.breakers.snapshot(),
            "metrics": self.metrics.to_json(),
        }

    # -- verdict paths -------------------------------------------------

    def _journal(self, record: dict) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _degrade_fast(self, client: Optional[_Client], request: Request, detail: str) -> None:
        """Breaker-open fast path: cached fault verdict, no queue time."""
        exhaustion = Exhaustion.single("fault", detail=detail)
        result = exhaustion.verdict(request.kind)
        self.metrics.inc("service.degraded")
        self._journal({
            "type": "result",
            "job": request.id,
            "protocol": protocol.protocol_key(request.target),
            "status": "fault",
            "attempts": 0,
            "elapsed": 0.0,
            "result": result,
            "error": detail,
            "events": ["degraded without dispatch: circuit open"],
        })
        self._respond(
            client,
            protocol.response(
                request.id, protocol.DEGRADED, result=result, error=detail
            ),
        )

    def _degrade(self, ticket: _Ticket, detail: str, reason: str = "fault") -> None:
        """Retry budget (or drain grace, or deadline) exhausted."""
        now = time.monotonic()
        job = ticket.request.job()
        exhaustion = Exhaustion.single(
            reason,
            states=checkpointed_states(job, self.config.checkpoint_dir),
            elapsed=(now - ticket.started_first) if ticket.started_first else None,
            detail=detail,
        )
        result = exhaustion.verdict(ticket.request.kind)
        self.metrics.inc("service.degraded")
        self._journal({
            "type": "result",
            "job": ticket.request.id,
            "protocol": ticket.key,
            "status": "fault",
            "attempts": ticket.attempt,
            "elapsed": round(now - ticket.admitted_at, 4),
            "result": result,
            "error": detail,
            "events": list(ticket.events),
        })
        self._answer(
            ticket,
            protocol.response(
                ticket.request.id, protocol.DEGRADED, result=result, error=detail
            ),
        )

    def _complete(self, ticket: _Ticket, result: dict) -> None:
        now = time.monotonic()
        elapsed = now - ticket.admitted_at
        self.metrics.inc("service.completed")
        self.metrics.observe("service.latency", elapsed)
        if self.store is not None and ticket.store_key is not None:
            # Write-through, only here: `_degrade`/`_degrade_fast`
            # verdicts are retryable fault stubs and must never be
            # persisted.  `put` additionally refuses deadline-qualified
            # results (not budget-pure).  Store trouble costs the cache,
            # never the response.
            try:
                if self.store.put(
                    ticket.store_key,
                    result,
                    kind=ticket.request.kind,
                    protocol=ticket.key,
                ):
                    self.metrics.inc("store.write")
            except OSError:
                self.metrics.inc("store.error")
        self._journal({
            "type": "result",
            "job": ticket.request.id,
            "protocol": ticket.key,
            "status": "ok",
            "attempts": ticket.attempt,
            "elapsed": round(elapsed, 4),
            "result": result,
            "error": None,
            "events": list(ticket.events),
        })
        self._answer(
            ticket,
            protocol.response(ticket.request.id, protocol.OK, result=result),
        )

    def _shed(self, ticket: _Ticket, status: str, reason: str, error: str) -> None:
        """Bounce an already-queued ticket back to its client un-run."""
        if ticket.probe:
            self.breakers.get(ticket.key).abandon_probe()
        self.metrics.inc("service.shed")
        self._journal({
            "type": "shed",
            "job": ticket.request.id,
            "protocol": ticket.key,
            "reason": reason,
        })
        self._answer(
            ticket,
            protocol.response(ticket.request.id, status, error=error),
        )

    # -- scheduling ----------------------------------------------------

    def _expire_queued(self, now: float) -> None:
        # Expiry is its own status, not ``overloaded`` (a retry cannot
        # help: the budget is gone) and not ``degraded`` (nothing ran,
        # there is no verdict stub to qualify).  The journal keeps the
        # same distinction, so a batch resume re-runs expired work.
        for ticket in self.queue.expire(now):
            self._shed(
                ticket,
                protocol.EXPIRED,
                reason="expired",
                error="deadline expired before a worker was free",
            )

    def _dispatch_ready(self, now: float) -> None:
        for worker in self.pool.idle():
            ticket = self.queue.take(now)
            if ticket is None:
                break
            breaker = self.breakers.get(ticket.key)
            if breaker.state != CLOSED and not ticket.probe:
                # The breaker opened while this ticket queued (another
                # request for the same protocol crashed its workers).
                if breaker.allow():
                    ticket.probe = True
                else:
                    self._degrade(ticket, breaker.last_fault or "circuit open")
                    continue
            deadline = None
            if ticket.deadline_at is not None:
                deadline = max(0.0, ticket.deadline_at - now)
            hard = (
                deadline * 1.5 + self.config.hang_grace
                if deadline is not None
                else None
            )
            job = ticket.request.job()
            plan = None
            if (
                self.config.allow_fault_injection
                and ticket.request.fault_plan is not None
                and ticket.attempt in ticket.request.fault_attempts
            ):
                plan = ticket.request.fault_plan
            if ticket.started_first is None:
                ticket.started_first = now
            sent = self.pool.dispatch(
                worker,
                {
                    "type": "job",
                    "job": job.to_json(),
                    "attempt": ticket.attempt,
                    "deadline": deadline,
                    "checkpoint": job_checkpoint_path(job, self.config.checkpoint_dir),
                    "fault_plan": plan,
                },
                current=ticket,
                hard_deadline=hard,
            )
            if sent:
                trace_event(
                    "service.dispatch",
                    job=ticket.request.id,
                    worker=worker.index,
                    attempt=ticket.attempt,
                )
            else:
                self.queue.requeue(ticket)  # dead pipe; the reaper respawns

    def _handle_pool_events(self, now: float) -> None:
        for event in self.pool.poll(timeout=0):
            if event.kind == "exit":
                ticket = event.current
                if ticket is not None:
                    self._worker_died(ticket, event.description or "worker lost", now)
            elif event.message is not None:
                self._worker_message(event.worker, event.message)

    def _worker_died(self, ticket: _Ticket, description: str, now: float) -> None:
        self.metrics.inc("service.crashes")
        ticket.events.append(f"attempt {ticket.attempt}: {description}")
        breaker = self.breakers.get(ticket.key)
        breaker.record_fault(f"{ticket.request.id}: {description}")
        ticket.probe = False
        trace_event(
            "service.crash", job=ticket.request.id, detail=description,
            breaker=breaker.state,
        )
        if self._draining or ticket.attempt > self.config.retries:
            self._degrade(ticket, description)
            return
        delay = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2 ** (ticket.attempt - 1)),
        )
        # Half-to-full jitter: a whole fleet of shards whose workers
        # were OOM-killed by the same machine-wide event must not all
        # re-dispatch on the same exponential schedule.
        delay *= 0.5 + 0.5 * random.random()
        ticket.attempt += 1
        ticket.ready_at = now + delay
        self.queue.requeue(ticket)

    def _worker_message(self, worker, message: dict) -> None:
        kind = message.get("type")
        ticket = worker.current
        if (
            kind == "started"
            or ticket is None
            or message.get("job") != ticket.request.id
        ):
            return
        if kind == "result":
            self.pool.release(worker)
            self.breakers.get(ticket.key).record_success()
            if isinstance(message.get("result"), dict) and message["result"].get(
                "certified"
            ):
                self.metrics.inc("witness.replayed")
            self._complete(ticket, message["result"])
        elif kind == "error":
            # Deterministic in-worker failure: the request's fault, not
            # the protocol's — report it, leave the breaker alone (the
            # worker demonstrably survived).
            self.pool.release(worker)
            self.breakers.get(ticket.key).record_success()
            error = message.get("error", "worker error")
            if error.startswith("CertificationError"):
                # A violation whose witness would not replay must never
                # surface as a clean answer *or* a plain error: retry it
                # like a crash, degrading to a retryable fault verdict
                # when the budget runs out.
                self.metrics.inc("witness.failed")
                ticket.events.append(f"attempt {ticket.attempt}: {error}")
                if self._draining or ticket.attempt > self.config.retries:
                    self._degrade(ticket, error)
                else:
                    delay = min(
                        self.config.backoff_cap,
                        self.config.backoff_base * (2 ** (ticket.attempt - 1)),
                    ) * (0.5 + 0.5 * random.random())
                    ticket.attempt += 1
                    ticket.ready_at = time.monotonic() + delay
                    self.queue.requeue(ticket)
                return
            self.metrics.inc("service.errors")
            self._journal({
                "type": "error", "job": ticket.request.id,
                "protocol": ticket.key, "error": error,
            })
            self._answer(
                ticket,
                protocol.response(ticket.request.id, protocol.ERROR, error=error),
            )

    # -- drain & shutdown ----------------------------------------------

    def _begin_drain(self) -> None:
        self._draining = True
        self._drain_deadline = time.monotonic() + self.config.drain_grace
        trace_event(
            "service.drain",
            queued=self.queue.depth,
            inflight=len(self.pool.busy()),
        )
        for listener in self._listeners:
            try:
                self._selector.unregister(listener)
            except (KeyError, ValueError, OSError):
                pass
            try:
                listener.close()
            except OSError:
                pass
        self._listeners.clear()
        if self.config.socket_path is not None:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
        # Shed everything queued: journaled as "shed" records, which a
        # batch --resume over the same journal re-runs.
        for ticket in self.queue.drain():
            self._shed(
                ticket,
                protocol.DRAINING,
                reason="draining",
                error="server is draining",
            )

    def _drain_finished(self, now: float) -> bool:
        busy = self.pool.busy()
        if not busy:
            return True
        if self._drain_deadline is not None and now > self._drain_deadline:
            for worker in busy:
                self.pool.kill(worker, "drain grace expired")
        return False

    def _shutdown(self) -> None:
        self._draining = True
        self.pool.shutdown()
        if self.journal is not None:
            self.journal.close()
        if self.store is not None:
            self.store.close()
        for client in list(self._clients):
            self._close(client, after_flush=True)
        for listener in self._listeners:
            try:
                listener.close()
            except OSError:
                pass
        self._listeners.clear()
        if self._bound and self.config.socket_path is not None:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
        self._selector.close()
        ambient = current_metrics()
        if ambient is not None:
            ambient.absorb(self.metrics)


def serve(config: ServerConfig) -> int:
    """Blocking entry point used by the CLI: bind, install drain-on-
    SIGINT/SIGTERM handlers, serve until drained.  Returns the exit
    status (``0`` after a clean drain)."""
    from repro.runtime.lifecycle import drain_signals

    server = Server(config)
    server.bind()
    with drain_signals(on_signal=lambda signum: server.request_drain()) as drain:
        if drain.is_set():  # signal raced bind
            server.request_drain()

        # Mirror the externally-installed event into the server so a
        # programmatic set (tests) also drains.
        def _watch_drain() -> None:
            drain.wait()
            server.request_drain()

        watcher = threading.Thread(target=_watch_drain, daemon=True)
        watcher.start()
        return server.serve_forever()
