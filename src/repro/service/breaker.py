"""Per-protocol circuit breakers.

A protocol whose exploration reliably kills workers (a state-space
bomb, a pathological term, an OOM) must not be allowed to consume the
retry budget over and over while other clients queue behind it.  Each
distinct verification target (see
:func:`repro.service.protocol.protocol_key`) gets its own breaker:

* **CLOSED** — healthy; requests flow.  Worker crashes increment a
  consecutive-fault counter; any success resets it.
* **OPEN** — ``threshold`` consecutive crashes tripped it.  Requests
  for this protocol are answered *immediately* with a degraded
  ``Exhaustion(reason="fault")`` verdict (the cached detail of the last
  crash) instead of being queued.  Other protocols are unaffected.
* **HALF_OPEN** — after ``cooldown`` seconds, exactly one probe request
  is let through.  Success closes the breaker; another crash reopens it
  and restarts the cooldown.  While the probe is in flight every other
  request for the protocol still gets the degraded fast-path.

Only *worker crashes* (process death: signal, hard exit, watchdog kill)
count as faults.  Deterministic in-worker errors — a parse error, an
unknown zoo name — are the request's fault, not the protocol's, and are
reported to the client without touching the breaker.

The clock is injectable so tests can step through cooldowns without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One protocol's crash-isolation state machine."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.state = CLOSED
        #: Consecutive faults while CLOSED (reset by any success).
        self.faults = 0
        #: Lifetime totals, for ``status``.
        self.total_faults = 0
        self.total_opens = 0
        #: When the current OPEN period ends (monotonic clock).
        self.opened_until: Optional[float] = None
        #: Detail string of the crash that (last) tripped the breaker;
        #: echoed in degraded verdicts so clients see *why*.
        self.last_fault: Optional[str] = None
        self._probe_inflight = False

    def allow(self) -> bool:
        """May a request for this protocol proceed right now?

        In OPEN state this is where the cooldown expiry is noticed:
        the first ``allow`` after ``opened_until`` flips to HALF_OPEN
        and claims the single probe slot.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.opened_until is not None and self.clock() >= self.opened_until:
                self.state = HALF_OPEN
                self._probe_inflight = True
                return True
            return False
        # HALF_OPEN: one probe at a time.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        """A request for this protocol completed without a crash."""
        self.state = CLOSED
        self.faults = 0
        self.opened_until = None
        self._probe_inflight = False

    def record_fault(self, detail: Optional[str] = None) -> None:
        """A worker died running this protocol."""
        self.total_faults += 1
        if detail:
            self.last_fault = detail
        if self.state == HALF_OPEN:
            # The probe crashed too: straight back to OPEN.
            self._open()
            return
        self.faults += 1
        if self.faults >= self.threshold:
            self._open()

    def abandon_probe(self) -> None:
        """The half-open probe was shed/expired before running; free the
        slot so the next request can probe instead."""
        if self.state == HALF_OPEN:
            self._probe_inflight = False

    def _open(self) -> None:
        self.state = OPEN
        self.total_opens += 1
        self.faults = 0
        self._probe_inflight = False
        self.opened_until = self.clock() + self.cooldown

    def snapshot(self) -> dict:
        remaining = None
        if self.state == OPEN and self.opened_until is not None:
            remaining = max(0.0, self.opened_until - self.clock())
        return {
            "state": self.state,
            "faults": self.faults,
            "threshold": self.threshold,
            "total_faults": self.total_faults,
            "total_opens": self.total_opens,
            "cooldown_remaining": remaining,
            "last_fault": self.last_fault,
        }


class BreakerBoard:
    """The breakers of every protocol this server has seen.

    A long-lived server meets an unbounded stream of distinct protocol
    keys (inline ``source`` targets hash to fresh keys every time), so
    the board is LRU-bounded: when ``max_size`` is set and exceeded, the
    least-recently-touched breaker that is CLOSED *and idle* (no probe
    in flight) is evicted.  OPEN and HALF_OPEN breakers are never
    evicted — forgetting that a protocol is poisonous is exactly the
    memory the board exists to keep — so the board can transiently
    exceed ``max_size`` while many breakers are tripped.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        max_size: Optional[int] = None,
    ) -> None:
        if max_size is not None and max_size < 1:
            raise ValueError(f"breaker board max_size must be >= 1, got {max_size}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.max_size = max_size
        #: Total CLOSED/idle breakers dropped to honour ``max_size``.
        self.evicted = 0
        # dict preserves insertion order; ``get`` re-inserts on access,
        # so iteration order is least-recently-used first.
        self._breakers: dict[str, CircuitBreaker] = {}

    def __len__(self) -> int:
        return len(self._breakers)

    def __contains__(self, key: str) -> bool:
        return key in self._breakers

    def get(self, key: str) -> CircuitBreaker:
        breaker = self._breakers.pop(key, None)
        if breaker is None:
            breaker = CircuitBreaker(self.threshold, self.cooldown, self.clock)
        self._breakers[key] = breaker  # (re-)insert at the MRU end
        self._evict()
        return breaker

    def _evict(self) -> None:
        if self.max_size is None or len(self._breakers) <= self.max_size:
            return
        excess = len(self._breakers) - self.max_size
        # The newest (just-touched) breaker is exempt: evicting the
        # entry ``get`` is about to hand out would silently discard
        # every fault recorded on it — a protocol arriving while the
        # board is full of OPEN breakers could then never trip its own.
        keys = list(self._breakers)
        newest = keys[-1]
        for key in keys:
            if excess <= 0:
                break
            if key == newest or self._breakers[key].state != CLOSED:
                continue
            del self._breakers[key]
            self.evicted += 1
            excess -= 1

    def snapshot(self) -> dict:
        """Non-trivial breakers only (CLOSED with zero history is the
        uninteresting default and would bloat ``status``)."""
        return {
            key: breaker.snapshot()
            for key, breaker in sorted(self._breakers.items())
            if breaker.state != CLOSED or breaker.total_faults
        }

    @property
    def open_count(self) -> int:
        return sum(
            1 for b in self._breakers.values() if b.state != CLOSED
        )

    def rebuild(self, records) -> int:
        """Replay journaled verdict history into this board.

        A crashed-and-respawned shard must not greet a poisonous
        protocol with a fresh CLOSED breaker and relearn the crash loop
        from scratch: the supervisor restarts it against the *same*
        journal, and this replay reconstructs the breaker state the old
        process died with.  Journal ``result`` records carry the
        ``protocol`` key they verdicted (see
        :mod:`repro.service.server`); ``ok`` records replay as
        successes, ``fault`` records as faults, in journal order — so a
        trailing crash streak at or past ``threshold`` leaves the
        breaker OPEN (with the cooldown restarted at rebuild time,
        monotonic clocks not being comparable across processes).

        Returns the number of records replayed.  Records without a
        ``protocol`` field (pre-cluster journals) are skipped.
        """
        replayed = 0
        for record in records:
            key = record.get("protocol")
            if record.get("type") != "result" or not isinstance(key, str):
                continue
            status = record.get("status")
            if status == "ok":
                self.get(key).record_success()
            elif status == "fault":
                self.get(key).record_fault(
                    record.get("error") or "journaled fault (rebuilt)"
                )
            else:
                continue
            replayed += 1
        return replayed
