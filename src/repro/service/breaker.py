"""Per-protocol circuit breakers.

A protocol whose exploration reliably kills workers (a state-space
bomb, a pathological term, an OOM) must not be allowed to consume the
retry budget over and over while other clients queue behind it.  Each
distinct verification target (see
:func:`repro.service.protocol.protocol_key`) gets its own breaker:

* **CLOSED** — healthy; requests flow.  Worker crashes increment a
  consecutive-fault counter; any success resets it.
* **OPEN** — ``threshold`` consecutive crashes tripped it.  Requests
  for this protocol are answered *immediately* with a degraded
  ``Exhaustion(reason="fault")`` verdict (the cached detail of the last
  crash) instead of being queued.  Other protocols are unaffected.
* **HALF_OPEN** — after ``cooldown`` seconds, exactly one probe request
  is let through.  Success closes the breaker; another crash reopens it
  and restarts the cooldown.  While the probe is in flight every other
  request for the protocol still gets the degraded fast-path.

Only *worker crashes* (process death: signal, hard exit, watchdog kill)
count as faults.  Deterministic in-worker errors — a parse error, an
unknown zoo name — are the request's fault, not the protocol's, and are
reported to the client without touching the breaker.

The clock is injectable so tests can step through cooldowns without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One protocol's crash-isolation state machine."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.state = CLOSED
        #: Consecutive faults while CLOSED (reset by any success).
        self.faults = 0
        #: Lifetime totals, for ``status``.
        self.total_faults = 0
        self.total_opens = 0
        #: When the current OPEN period ends (monotonic clock).
        self.opened_until: Optional[float] = None
        #: Detail string of the crash that (last) tripped the breaker;
        #: echoed in degraded verdicts so clients see *why*.
        self.last_fault: Optional[str] = None
        self._probe_inflight = False

    def allow(self) -> bool:
        """May a request for this protocol proceed right now?

        In OPEN state this is where the cooldown expiry is noticed:
        the first ``allow`` after ``opened_until`` flips to HALF_OPEN
        and claims the single probe slot.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.opened_until is not None and self.clock() >= self.opened_until:
                self.state = HALF_OPEN
                self._probe_inflight = True
                return True
            return False
        # HALF_OPEN: one probe at a time.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        """A request for this protocol completed without a crash."""
        self.state = CLOSED
        self.faults = 0
        self.opened_until = None
        self._probe_inflight = False

    def record_fault(self, detail: Optional[str] = None) -> None:
        """A worker died running this protocol."""
        self.total_faults += 1
        if detail:
            self.last_fault = detail
        if self.state == HALF_OPEN:
            # The probe crashed too: straight back to OPEN.
            self._open()
            return
        self.faults += 1
        if self.faults >= self.threshold:
            self._open()

    def abandon_probe(self) -> None:
        """The half-open probe was shed/expired before running; free the
        slot so the next request can probe instead."""
        if self.state == HALF_OPEN:
            self._probe_inflight = False

    def _open(self) -> None:
        self.state = OPEN
        self.total_opens += 1
        self.faults = 0
        self._probe_inflight = False
        self.opened_until = self.clock() + self.cooldown

    def snapshot(self) -> dict:
        remaining = None
        if self.state == OPEN and self.opened_until is not None:
            remaining = max(0.0, self.opened_until - self.clock())
        return {
            "state": self.state,
            "faults": self.faults,
            "threshold": self.threshold,
            "total_faults": self.total_faults,
            "total_opens": self.total_opens,
            "cooldown_remaining": remaining,
            "last_fault": self.last_fault,
        }


class BreakerBoard:
    """The breakers of every protocol this server has seen."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, key: str) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.threshold, self.cooldown, self.clock)
            self._breakers[key] = breaker
        return breaker

    def snapshot(self) -> dict:
        """Non-trivial breakers only (CLOSED with zero history is the
        uninteresting default and would bloat ``status``)."""
        return {
            key: breaker.snapshot()
            for key, breaker in sorted(self._breakers.items())
            if breaker.state != CLOSED or breaker.total_faults
        }

    @property
    def open_count(self) -> int:
        return sum(
            1 for b in self._breakers.values() if b.state != CLOSED
        )
