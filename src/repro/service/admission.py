"""Bounded admission queue with load shedding.

The service never lets backlog grow without bound: a request either
gets one of the ``limit`` queue slots or is *shed* immediately with an
``overloaded`` response telling the client when to retry.  Fast
rejection beats slow acceptance — a client that waits thirty seconds to
learn the server is busy has lost thirty seconds; one told within a
millisecond can back off, retry elsewhere, or surface the pressure.

Three queue operations matter:

* :meth:`AdmissionQueue.offer` — admit or shed (``False``), FIFO among
  admitted items;
* :meth:`AdmissionQueue.requeue` — put a once-admitted item *back*
  (crash retry with backoff, breaker probe deferral); bypasses the
  limit, because shedding work the server already accepted would turn
  a transient worker fault into a client-visible rejection;
* :meth:`AdmissionQueue.take` — next runnable item whose backoff delay
  (``ready_at``) has passed, skipping over items still cooling down.

:meth:`AdmissionQueue.expire` sweeps out items whose client-supplied
deadline passed while they waited — running them would waste a worker
on an answer nobody is still listening for.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class AdmissionQueue(Generic[T]):
    """FIFO queue of at most ``limit`` externally-admitted items."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self._items: deque[T] = deque()
        #: Total offers rejected because the queue was full.
        self.shed = 0
        #: Total offers accepted.
        self.admitted = 0
        #: Largest depth ever observed (sizing telemetry).
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def offer(self, item: T) -> bool:
        """Admit ``item`` if a slot is free; ``False`` means *shed*."""
        if len(self._items) >= self.limit:
            self.shed += 1
            return False
        self._items.append(item)
        self.admitted += 1
        self.high_water = max(self.high_water, len(self._items))
        return True

    def requeue(self, item: T) -> None:
        """Re-admit an item the server already accepted once.

        Deliberately ignores ``limit``: the admission decision was made
        at :meth:`offer` time and is not revisited on retry.
        """
        self._items.append(item)
        self.high_water = max(self.high_water, len(self._items))

    def take(self, now: float) -> Optional[T]:
        """Pop the oldest item that is ready to run at ``now``.

        Items may carry a ``ready_at`` attribute (retry backoff); items
        without one are always ready.  Not-yet-ready items keep their
        queue position.
        """
        for index, item in enumerate(self._items):
            ready_at = getattr(item, "ready_at", 0.0) or 0.0
            if ready_at <= now:
                del self._items[index]
                return item
        return None

    def expire(self, now: float) -> list[T]:
        """Remove and return every item whose ``deadline_at`` passed."""
        expired: list[T] = []
        kept: deque[T] = deque()
        for item in self._items:
            deadline_at = getattr(item, "deadline_at", None)
            if deadline_at is not None and deadline_at <= now:
                expired.append(item)
            else:
                kept.append(item)
        self._items = kept
        return expired

    def drain(self) -> list[T]:
        """Remove and return everything (shutdown path)."""
        items = list(self._items)
        self._items.clear()
        return items

    def snapshot(self) -> dict:
        """Queue counters for ``status`` responses and metrics."""
        return {
            "depth": self.depth,
            "limit": self.limit,
            "admitted": self.admitted,
            "shed": self.shed,
            "high_water": self.high_water,
        }
