"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517`` on environments whose
setuptools lacks the ``wheel`` package (editable installs then go
through ``setup.py develop`` instead of building a wheel).  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
